"""Ensure ``src/`` is importable even without an editable install.

The offline environment lacks the ``wheel`` package that ``pip install -e .``
needs; ``python setup.py develop`` works, and this shim makes the test suite
independent of either.
"""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
