"""Ensure ``src/`` is importable even without an editable install.

The offline environment lacks the ``wheel`` package that ``pip install -e .``
needs; ``python setup.py develop`` works, and this shim makes the test suite
independent of either.

Also hosts the session-scoped ``qa_seed`` fixture: every randomized test
draws its ``random.Random`` from one integer, overridable with
``REPRO_QA_SEED=<n> pytest …`` to replay a failing run exactly.
"""

import os
import random
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

DEFAULT_QA_SEED = 1990  # the paper's PODC year; override with REPRO_QA_SEED


def _session_seed() -> int:
    return int(os.environ.get("REPRO_QA_SEED", DEFAULT_QA_SEED))


@pytest.fixture(scope="session")
def qa_seed() -> int:
    """The session's master seed for all randomized qa tests."""
    return _session_seed()


@pytest.fixture()
def qa_rng(qa_seed, request) -> random.Random:
    """A per-test ``random.Random`` derived from the session seed.

    Mixing in the node id keeps tests independent of each other's draw
    order, so adding a test never reshuffles every other test's input.
    """
    return random.Random(f"{qa_seed}:{request.node.nodeid}")


def pytest_report_header(config):
    return f"repro qa seed: {_session_seed()} (set REPRO_QA_SEED to override)"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed and "qa_" in str(item.fixturenames):
        report.sections.append(
            (
                "repro qa seed",
                f"reproduce with: REPRO_QA_SEED={_session_seed()} "
                f"pytest {item.nodeid!r}",
            )
        )
