"""A tour of the four views of the hierarchy (§2-§5) on one running example.

The property "infinitely many b's" = ``(a*b)^ω = R(Σ*b) = □◇b``:

* linguistic   — built by the R operator from the finitary Σ*b;
* topological  — a G_δ set, dense (hence a liveness property), not closed;
* temporal     — the recurrence normal form □◇b;
* automata     — a Büchi automaton whose class the §5.1 procedures decide.

The script ends with the empirical Figure 1: the inclusion diagram derived
by classifying one canonical witness per class.

Run:  python examples/hierarchy_tour.py
"""

from repro import Alphabet, FinitaryLanguage, LassoWord, classify_formula, parse_formula
from repro.core.canonical import figure_1_zoo
from repro.omega import pref_language, r_of, safety_closure
from repro.omega.classify import classify, is_recurrence_shaped
from repro.topology import borel_level, g_delta_approximants, is_dense

AB = Alphabet.from_letters("ab")


def main() -> None:
    phi = FinitaryLanguage.from_regex(".*b", AB)
    automaton = r_of(phi)

    print("=== Linguistic view (§2) ===")
    print(f"  Φ = Σ*b (finite words ending in b), Π = R(Φ) = (a*b)^ω")
    print(f"  (ab)^ω ∈ Π: {automaton.accepts(LassoWord.from_letters('', 'ab'))}")
    print(f"  ba^ω   ∈ Π: {automaton.accepts(LassoWord.from_letters('b', 'a'))}")
    print(f"  Pref(Π) = Σ⁺: {pref_language(automaton) == FinitaryLanguage.everything(AB)}")

    print("\n=== Topological view (§3) ===")
    print(f"  Borel level: {borel_level(automaton)}")
    print(f"  dense (liveness): {is_dense(automaton)}")
    closure = safety_closure(automaton)
    print(f"  cl(Π) = Σ^ω: {closure.is_universal()}  (so Π ≠ cl(Π): not safety)")
    approx = g_delta_approximants(automaton, 3)
    print(f"  G_δ witness: Π ⊆ G₁ ⊇ G₂ ⊇ G₃ with Gₖ = 'at least k b-prefixes'·Σ^ω:"
          f" {all(automaton.is_subset_of(g) for g in approx)}")

    print("\n=== Temporal logic view (§4) ===")
    report = classify_formula(parse_formula("G F b"), AB)
    print(report.summary())

    print("\n=== Automata view (§5) ===")
    print(f"  automaton: {automaton!r}")
    print(f"  recurrence-shaped (Büchi, P = ∅): {is_recurrence_shaped(automaton)}")
    print(f"  §5.1 verdict: {classify(automaton)!r}")

    print("\n=== Figure 1, derived empirically ===")
    print(f"  {'witness':24s} {'class':12s} {'memberships (↑ the hierarchy)'}")
    for example in figure_1_zoo():
        verdict = classify(example.automaton)
        held = [c.value for c in type(example.expected_class) if verdict.membership[c]]
        print(f"  {example.name:24s} {verdict.canonical.value:12s} {', '.join(held)}")
    print("""
          reactivity (Δ₃)
          /            \\
   recurrence (Π₂)  persistence (Σ₂)
          \\            /
          obligation (Δ₂)
          /            \\
     safety (Π₁)   guarantee (Σ₁)
    """)


if __name__ == "__main__":
    main()
