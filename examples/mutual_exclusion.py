"""The paper's §1 story: underspecified mutual exclusion, caught and fixed.

1. A specification containing only ``□¬(C₁ ∧ C₂)`` is *safety-only*: the
   lint reports that a do-nothing system satisfies it.
2. Indeed, the trivial mutex (no entry transitions at all) passes the safety
   check and starves both processes — the model checker produces the
   starvation counterexample.
3. Adding the accessibility (recurrence) properties completes the
   specification; Peterson's algorithm satisfies all of it under weak
   fairness.

Run:  python examples/mutual_exclusion.py
"""

from repro import lint_specification, parse_formula
from repro.systems import check, peterson, trivial_mutex
from repro.systems.mutex import ACCESSIBILITY_1, ACCESSIBILITY_2, MUTUAL_EXCLUSION


def main() -> None:
    print("=== Step 1: lint the one-property specification ===")
    incomplete = lint_specification([MUTUAL_EXCLUSION])
    print(incomplete.table())

    print("\n=== Step 2: the trivial mutex 'implements' it ===")
    trivial = trivial_mutex()
    safety = check(trivial, parse_formula(MUTUAL_EXCLUSION))
    print(f"  {MUTUAL_EXCLUSION}: {'holds' if safety else 'fails'}")
    access = check(trivial, parse_formula(ACCESSIBILITY_1))
    print(f"  {ACCESSIBILITY_1}: {'holds' if access else 'FAILS'}")
    print(f"  {access.describe()}")

    print("\n=== Step 3: the completed specification ===")
    complete = lint_specification([MUTUAL_EXCLUSION, ACCESSIBILITY_1, ACCESSIBILITY_2])
    print(complete.table())

    print("\n=== Step 4: Peterson's algorithm satisfies everything ===")
    system = peterson()
    print(f"  reachable states: {len(system.reachable_states())}")
    for prop in (MUTUAL_EXCLUSION, ACCESSIBILITY_1, ACCESSIBILITY_2):
        verdict = check(system, parse_formula(prop))
        print(f"  {prop:28s}: {'holds' if verdict else 'fails'}")
    precedence = "G (in_c1 -> O in_t1)"
    print(f"  {precedence:28s}: "
          f"{'holds' if check(system, parse_formula(precedence)) else 'fails'} "
          f"(a safety-class precedence property)")


if __name__ == "__main__":
    main()
