"""Quickstart: classify temporal formulas into the safety-progress hierarchy.

Run:  python examples/quickstart.py
"""

from repro import classify_formula, parse_formula

FORMULAS = [
    # the six normal forms
    "G safe",                       # invariance                  -> safety
    "F terminated",                 # termination                 -> guarantee
    "G ready | F started",          # conditional obligation      -> obligation
    "G F heartbeat",                # infinitely often            -> recurrence
    "F G stable",                   # eventual stabilization      -> persistence
    "G F polled | F G idle",        # simple reactivity           -> reactivity
    # derived shapes the paper discusses
    "G (request -> F grant)",       # response                    -> recurrence
    "request -> F grant",           # initial response            -> guarantee
    "G F enabled -> G F taken",     # strong fairness             -> reactivity
    "G (alarm -> O fault)",         # precedence (past operator)  -> safety
]


def main() -> None:
    print("The Manna-Pnueli safety-progress hierarchy, formula by formula\n")
    for text in FORMULAS:
        report = classify_formula(parse_formula(text))
        cls = report.canonical_class
        print(f"  {text:28s} ->  {cls.value:11s} {cls.borel_name:3s} "
              f"[{cls.topological_name}]"
              f"{'  (liveness)' if report.is_liveness else ''}")
    print("\nDetailed report for the response property:")
    print(classify_formula(parse_formula("G (request -> F grant)")).summary())


if __name__ == "__main__":
    main()
