"""Dining philosophers: strong vs weak fairness, with the guarded-command DSL.

The safety property (neighbours never eat together) is fairness-independent;
the liveness property (every hungry philosopher eventually eats) is a
recurrence-class property whose truth depends on *compassion*: with only
weak fairness the two neighbours can take turns eating so that philosopher
0's pickup is enabled infinitely often but never continuously — the model
checker exhibits the starving schedule.

Run:  python examples/dining_philosophers.py
"""

from repro import classify_formula, parse_formula
from repro.systems import check, dining_philosophers

SAFETY = "G !(eating_0 & eating_1)"
LIVENESS = "G (hungry_0 -> F eating_0)"


def main() -> None:
    print("=== Properties, classified ===")
    for text in (SAFETY, LIVENESS):
        report = classify_formula(parse_formula(text))
        print(f"  {text:34s} -> {report.canonical_class.value}")

    print("\n=== Three philosophers, STRONG fairness on fork pickup ===")
    strong = dining_philosophers(3, strong=True)
    print(f"  reachable states: {len(strong.reachable_states())}")
    print(f"  {SAFETY}: {'holds' if check(strong, parse_formula(SAFETY)) else 'fails'}")
    print(f"  {LIVENESS}: {'holds' if check(strong, parse_formula(LIVENESS)) else 'fails'}")

    print("\n=== Same table, WEAK fairness only ===")
    weak = dining_philosophers(3, strong=False)
    print(f"  {SAFETY}: {'holds' if check(weak, parse_formula(SAFETY)) else 'fails'}")
    starving = check(weak, parse_formula(LIVENESS))
    print(f"  {LIVENESS}: {'holds' if starving else 'FAILS'}")
    if not starving:
        loop = starving.counterexample_loop
        print(f"  starving schedule loops through {len(loop)} states, e.g.:")
        for state in loop[:6]:
            print(f"    {state}")


if __name__ == "__main__":
    main()
