"""A specification-pattern cheat sheet, classified by the hierarchy.

The paper's §1 proposes the hierarchy as a *completeness check list* for
specifiers.  This example renders that check list concretely: the standard
specification patterns (absence, existence, universality, precedence,
response, stabilization, fair response) under their usual scopes, each with
the hierarchy class the library measures for it — so a specifier can see at
a glance which kinds of requirements their property list covers.

Run:  python examples/patterns_cheatsheet.py
"""

from repro import classify_formula
from repro.logic.ast import Prop
from repro.logic.patterns import catalog
from repro.words import Alphabet

P, S, Q, R = Prop("p"), Prop("s"), Prop("q"), Prop("r")
ALPHABET = Alphabet.powerset_of_propositions(["p", "s", "q", "r"])


def main() -> None:
    print(f"{'pattern':14s} {'scope':17s} {'class':12s} {'Borel':5s} meaning")
    print("─" * 100)
    for pattern in catalog(P, S, Q, R):
        report = classify_formula(pattern.formula, ALPHABET)
        cls = report.canonical_class
        marker = "" if cls is pattern.expected else "  (!)"
        print(
            f"{pattern.name:14s} {pattern.scope.value:17s} "
            f"{cls.value:12s} {cls.borel_name:5s} {pattern.gloss}{marker}"
        )
    print("\nTakeaways:")
    print("  • scoping with PAST operators keeps requirements low in the hierarchy")
    print("    (precedence and scoped absence stay safety — cheap to verify & monitor);")
    print("  • the same informal 'existence' lands in three different classes")
    print("    depending on its scope — the trade-off §1 asks specifiers to weigh;")
    print("  • only fair response needs the full reactivity class.")


if __name__ == "__main__":
    main()
