"""Runtime monitoring: what the hierarchy says you can observe at runtime.

§2 reads the classes through "good/bad things detectable in finite time".
A prefix monitor makes that operational:

* a *safety* property's violations are always caught after finitely many
  events (the monitor says VIOLATED);
* a *guarantee* property's successes are always caught finitely
  (SATISFIED);
* *recurrence* and *persistence* properties are fundamentally
  non-monitorable: the verdict stays PENDING forever.

The script replays an event log against monitors for one property of each
kind and prints the verdict timeline.

Run:  python examples/runtime_monitor.py
"""

from repro import Alphabet, parse_formula
from repro.core.monitor import PrefixMonitor, Verdict3

ALPHABET = Alphabet.powerset_of_propositions(["request", "grant", "error"])

PROPERTIES = [
    ("safety", "G !error"),
    ("guarantee", "F grant"),
    ("precedence (safety)", "G (grant -> O request)"),
    ("response (recurrence)", "G (request -> F grant)"),
]

# The event log: one set of propositions per step.
LOG = [
    set(),
    {"request"},
    {"grant"},
    {"request"},
    set(),
    {"error"},
    {"grant"},
]


def main() -> None:
    monitors = {
        name: PrefixMonitor.for_formula(parse_formula(text), ALPHABET)
        for name, text in PROPERTIES
    }
    print(f"{'step':>4s} {'event':>12s}" + "".join(f"{name:>24s}" for name, _t in PROPERTIES))
    for step, event in enumerate(LOG):
        symbol = frozenset(event)
        cells = []
        for name, _text in PROPERTIES:
            verdict = monitors[name].step(symbol)
            cells.append(verdict.value)
        label = "+".join(sorted(event)) or "-"
        print(f"{step:>4d} {label:>12s}" + "".join(f"{c:>24s}" for c in cells))

    print("\nWhat the hierarchy predicted:")
    print("  G !error        -> VIOLATED the moment the error occurred (safety)")
    print("  F grant         -> SATISFIED at the first grant (guarantee)")
    print("  precedence      -> SATISFIED once a request occurred: from then on")
    print("                     no grant can ever be spurious (a clopen residual)")
    print("  response        -> PENDING forever: recurrence is not monitorable;")
    print("                     is_monitorable_everywhere() =",
          monitors["response (recurrence)"].is_monitorable_everywhere())


if __name__ == "__main__":
    main()
