"""Weak vs strong fairness and their places in the hierarchy (§4).

The paper expresses weak fairness (justice) as a *recurrence* formula and
strong fairness (compassion) as a *simple reactivity* formula.  This example
classifies both, then shows the operational difference on a semaphore-based
mutual exclusion protocol: with only weak fairness on the acquire
transitions a process can starve; compassion removes the starvation.

Run:  python examples/fairness.py
"""

from repro import classify_formula, parse_formula
from repro.systems import check, semaphore_mutex
from repro.systems.mutex import ACCESSIBILITY_1, MUTUAL_EXCLUSION

WEAK_FAIRNESS = "G F (!enabled | taken)"
STRONG_FAIRNESS = "G F enabled -> G F taken"


def main() -> None:
    print("=== The fairness formulas, classified ===")
    for name, text in (("weak (justice)", WEAK_FAIRNESS), ("strong (compassion)", STRONG_FAIRNESS)):
        report = classify_formula(parse_formula(text))
        print(f"  {name:20s} {text:28s} -> {report.canonical_class.value}"
              f" (Streett index {report.streett_index})")

    print("\n=== Semaphore mutex with STRONG fairness on acquire ===")
    strong = semaphore_mutex(strong=True)
    print(f"  {MUTUAL_EXCLUSION}: {'holds' if check(strong, parse_formula(MUTUAL_EXCLUSION)) else 'fails'}")
    print(f"  {ACCESSIBILITY_1}: {'holds' if check(strong, parse_formula(ACCESSIBILITY_1)) else 'fails'}")

    print("\n=== Same protocol with only WEAK fairness ===")
    weak = semaphore_mutex(strong=False)
    print(f"  {MUTUAL_EXCLUSION}: {'holds' if check(weak, parse_formula(MUTUAL_EXCLUSION)) else 'fails'}")
    starving = check(weak, parse_formula(ACCESSIBILITY_1))
    print(f"  {ACCESSIBILITY_1}: {'holds' if starving else 'FAILS'}")
    if not starving:
        print(f"  {starving.describe()}")
        print("  (process 1 keeps trying while process 2 monopolizes the semaphore:")
        print("   every time the semaphore frees up, process 2 reacquires it first)")


if __name__ == "__main__":
    main()
