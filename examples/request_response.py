"""The responsiveness spectrum (§4's summary), as a specification design aid.

One informal requirement — "the system responds to requests" — admits five
formalizations of strictly increasing logical strength *classes*; picking
the wrong one is exactly the over/under-specification trade-off the paper
discusses.  The script classifies all five and then demonstrates on lasso
traces how they disagree.

Run:  python examples/request_response.py
"""

from repro import Alphabet, classify_formula, parse_formula, satisfies
from repro.words import LassoWord

CATALOG = [
    ("initial response", "p -> F q",
     "if requested initially, respond eventually"),
    ("one-shot obligation", "F p -> F (q & O p)",
     "if ever requested, respond after the first request"),
    ("full response", "G (p -> F q)",
     "every request is eventually answered"),
    ("stabilizing response", "p -> F G q",
     "an initial request leads to permanent q"),
    ("infinite-demand response", "G F p -> G F q",
     "infinitely many requests get infinitely many answers"),
]

ALPHABET = Alphabet.powerset_of_propositions(["p", "q"])


def letter(*props: str) -> frozenset:
    return frozenset(props)


TRACES = {
    # p once, answered once, then silence
    "p answered once": LassoWord((letter("p"), letter("q")), (letter(),)),
    # requests forever, answers forever
    "ping-pong": LassoWord((), (letter("p"), letter("q"))),
    # requests forever, never answered
    "starvation": LassoWord((), (letter("p"),)),
    # one early request, answers only finitely often
    "fading answers": LassoWord((letter("p"), letter("q"), letter("q")), (letter(),)),
}


def main() -> None:
    print("=== The five responsiveness formalizations (§4) ===")
    for name, text, gloss in CATALOG:
        report = classify_formula(parse_formula(text), ALPHABET)
        print(f"  {name:26s} {text:22s} -> {report.canonical_class.value:12s} ({gloss})")

    print("\n=== How they judge concrete behaviours ===")
    header = f"  {'trace':18s}" + "".join(f"{name:>28s}" for name, _t, _g in CATALOG)
    print(header)
    for trace_name, word in TRACES.items():
        cells = []
        for _name, text, _gloss in CATALOG:
            verdict = satisfies(word, parse_formula(text))
            cells.append("yes" if verdict else "NO")
        print(f"  {trace_name:18s}" + "".join(f"{c:>28s}" for c in cells))

    print("\nReading: 'starvation' violates every flavor; 'fading answers'")
    print("satisfies the one-shot and initial flavors but not full response;")
    print("the infinite-demand flavor tolerates finitely many ignored requests.")


if __name__ == "__main__":
    main()
