"""Setup shim so that editable installs work on environments without the
``wheel`` package (offline boxes): ``pip install -e . --no-use-pep517
--no-build-isolation`` falls back to ``setup.py develop`` through this file.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
