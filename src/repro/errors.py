"""Exception types shared across the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AlphabetError(ReproError):
    """A symbol or word does not belong to the expected alphabet."""


class ParseError(ReproError):
    """A regular expression or temporal formula failed to parse.

    ``position`` is always a **character offset** into the parsed text
    (end-of-input errors point one past the last character).  When the
    ``source`` text is provided, the message carries the offending line
    with a caret under the offset.
    """

    def __init__(
        self, message: str, position: int | None = None, *, source: str | None = None
    ) -> None:
        self.position = position
        self.source = source
        if position is not None:
            message = f"{message} (at position {position})"
            if source is not None:
                line_start = source.rfind("\n", 0, position) + 1
                line_end = source.find("\n", position)
                if line_end == -1:
                    line_end = len(source)
                line = source[line_start:line_end]
                caret = " " * (position - line_start) + "^"
                message = f"{message}\n  {line}\n  {caret}"
        super().__init__(message)


class AutomatonError(ReproError):
    """An automaton is structurally malformed for the requested operation."""


class DeterminismError(AutomatonError):
    """An operation requiring a deterministic automaton received one that is not."""


class UnsupportedFragmentError(ReproError):
    """A formula lies outside the fragment a translation supports.

    The only such fragment in this library: future operators nested inside
    past operators (the paper's normal forms never need them).
    """


class ClassificationError(ReproError):
    """A classification query could not be answered."""


class MonitorError(ReproError):
    """A monitor stream is malformed (bad JSONL batch line, bad payload)."""


class CorpusError(ReproError):
    """A ``.ltl`` corpus file is unreadable, empty, or fails to parse.

    For parse failures, ``path`` and ``line`` locate the offending corpus
    line and ``cause`` is the underlying :class:`ParseError` (whose message,
    already embedded here, carries the character offset and caret snippet).
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        line: int | None = None,
        cause: ParseError | None = None,
    ) -> None:
        self.path = path
        self.line = line
        self.cause = cause
        super().__init__(message)
