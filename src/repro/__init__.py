"""repro — *A Hierarchy of Temporal Properties* (Manna & Pnueli, PODC 1990).

The safety–progress hierarchy as a library: temporal logic with past,
ω-automata, the four views of the hierarchy (linguistic, topological,
logical, automata-theoretic), classification decision procedures, and a
fair-transition-system model checker.

Quickstart::

    >>> from repro import classify_formula, parse_formula
    >>> report = classify_formula(parse_formula("G (request -> F grant)"))
    >>> report.canonical_class.value
    'recurrence'
"""

from repro.core import (
    FIGURE_1_EDGES,
    FormulaReport,
    TemporalClass,
    Verdict,
    classify_formula,
    default_alphabet,
    formula_to_automaton,
)
from repro.finitary import FinitaryLanguage
from repro.logic import parse_formula, satisfies
from repro.omega import DetAutomaton, a_of, e_of, p_of, r_of
from repro.systems import check, lint_specification
from repro.words import Alphabet, FiniteWord, LassoWord

__version__ = "1.0.0"

__all__ = [
    "FIGURE_1_EDGES",
    "FormulaReport",
    "TemporalClass",
    "Verdict",
    "classify_formula",
    "default_alphabet",
    "formula_to_automaton",
    "FinitaryLanguage",
    "parse_formula",
    "satisfies",
    "DetAutomaton",
    "a_of",
    "e_of",
    "p_of",
    "r_of",
    "check",
    "lint_specification",
    "Alphabet",
    "FiniteWord",
    "LassoWord",
    "EvaluationEngine",
    "EngineSession",
    "__version__",
]


def __getattr__(name: str):
    # The engine layer depends back on repro.core; load it lazily so plain
    # library imports stay cheap and the import graph stays acyclic.
    if name in {"EvaluationEngine", "EngineSession"}:
        import repro.engine as engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
