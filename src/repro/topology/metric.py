"""The metric space ``(Σ^ω, μ)`` of §3.

``μ(σ, σ') = 2^{-j}`` where ``j`` is the first position where the words
differ; the induced topology is the Cantor topology whose basic open sets
are the *cylinders* ``u·Σ^ω``.  Convergence and balls are provided for
ultimately-periodic words, which is all an ω-regular analysis ever needs.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from fractions import Fraction

from repro.omega.automaton import DetAutomaton
from repro.words.finite import FiniteWord
from repro.words.lasso import LassoWord, distance

__all__ = ["distance", "converges_to", "ball_around", "cylinder"]


def converges_to(
    sequence: Callable[[int], LassoWord] | Sequence[LassoWord],
    limit: LassoWord,
    *,
    witnesses: int = 32,
) -> bool:
    """Does ``σ_k → σ`` hold, certified up to prefix length ``witnesses``?

    Convergence means the shared-prefix length grows without bound; for an
    indexed family this checks that every target length ``L ≤ witnesses`` is
    achieved by some later member and that distances never have to return
    once a prefix is locked (sound for the monotone families the paper
    uses — the general statement is not finitely checkable).
    """
    def member(index: int) -> LassoWord:
        if callable(sequence):
            return sequence(index)
        return sequence[min(index, len(sequence) - 1)]

    horizon = witnesses if callable(sequence) else min(witnesses, len(sequence))
    for target_length in range(1, witnesses + 1):
        achieved = False
        for index in range(horizon + target_length):
            gap = distance(member(index), limit)
            if gap == 0 or gap <= Fraction(1, 2**target_length):
                achieved = True
                break
        if not achieved:
            return False
    return True


def ball_around(center: LassoWord, radius_exponent: int) -> "Callable[[LassoWord], bool]":
    """The open ball ``{σ' : μ(σ, σ') < 2^{-radius_exponent}}`` as a predicate —
    equivalently the cylinder of σ's prefix of length ``radius_exponent + 1``."""
    prefix = center.prefix(radius_exponent + 1)

    def contains(word: LassoWord) -> bool:
        return word.prefix(len(prefix)) == prefix

    return contains


def cylinder(prefix: FiniteWord, alphabet) -> DetAutomaton:
    """``prefix·Σ^ω`` as a deterministic automaton — the basic open (and
    closed!) sets of the topology."""
    from repro.finitary.dfa import DFA
    from repro.omega.linguistic import e_of
    from repro.finitary.language import FinitaryLanguage

    return e_of(FinitaryLanguage(DFA.from_word(alphabet, prefix)))
