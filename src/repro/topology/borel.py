"""Borel-level verdicts and topological operators on ω-regular sets (§3).

The paper's correspondence, made executable:

========== ==================== =========================
class      topology             test used here
========== ==================== =========================
safety     closed (F)           ``Π = cl(Π)``
guarantee  open (G)             complement closed
recurrence ``G_δ``              Wagner condition (§5.1)
persistence``F_σ``              dual Wagner condition
obligation boolean comb. of F   recurrence ∧ persistence
reactivity boolean comb. of G_δ always (ω-regular ⊆ Δ₃)
========== ==================== =========================
"""

from __future__ import annotations

from repro.omega.automaton import DetAutomaton
from repro.omega.classify import is_persistence, is_recurrence
from repro.omega.closure import is_liveness, is_safety_closed, safety_closure
from repro.words.alphabet import Symbol


def closure(aut: DetAutomaton) -> DetAutomaton:
    """Topological closure ``cl(Π) = A(Pref(Π))`` (§3's identity)."""
    return safety_closure(aut)


def interior(aut: DetAutomaton) -> DetAutomaton:
    """``int(Π) = ¬cl(¬Π)`` — the largest open subset."""
    return safety_closure(aut.complement()).complement()


def boundary_is_empty(aut: DetAutomaton) -> bool:
    """Clopen test: the boundary ``cl(Π) − int(Π)`` is empty iff Π is clopen."""
    return closure(aut).is_subset_of(interior(aut))


def boundary(aut: DetAutomaton) -> DetAutomaton:
    """``∂Π = cl(Π) ∩ ¬int(Π)`` (both parts are safety automata, so the
    intersection stays Streett-presentable)."""
    closed = closure(aut)
    not_interior = closure(aut.complement())
    return closed.intersection(not_interior)


def is_closed(aut: DetAutomaton) -> bool:
    return is_safety_closed(aut)


def is_open(aut: DetAutomaton) -> bool:
    return is_safety_closed(aut.complement())


def is_g_delta(aut: DetAutomaton) -> bool:
    return is_recurrence(aut)


def is_f_sigma(aut: DetAutomaton) -> bool:
    return is_persistence(aut)


def is_dense(aut: DetAutomaton) -> bool:
    """Density = the paper's liveness (§3's characterization of [AS85])."""
    return is_liveness(aut)


def borel_level(aut: DetAutomaton) -> str:
    """A human-readable Borel placement of the property."""
    closed, open_ = is_closed(aut), is_open(aut)
    if closed and open_:
        return "clopen"
    if closed:
        return "closed (F)"
    if open_:
        return "open (G)"
    g_delta, f_sigma = is_g_delta(aut), is_f_sigma(aut)
    if g_delta and f_sigma:
        return "BC(F) — boolean combination of closed sets"
    if g_delta:
        return "G_δ"
    if f_sigma:
        return "F_σ"
    return "BC(G_δ) — boolean combination of G_δ sets"


def g_delta_approximants(aut: DetAutomaton, depth: int) -> list[DetAutomaton]:
    """Open supersets ``G₁ ⊇ G₂ ⊇ …`` with ``Π ⊆ ⋂ₖ Gₖ`` (§3's construction).

    The property must be a recurrence (= ``G_δ``) property; it is first
    normalized to a Büchi automaton and ``G_k`` collects the words whose run
    reaches the accepting set at least ``k`` times.  Then ``⋂ₖ Gₖ = Π``
    exactly, reproducing §3's ``(a*b)^ω = ⋂ₖ (Σ*b)^k·Σ^ω``.
    """
    from repro.omega.transform import to_recurrence_automaton

    buchi = to_recurrence_automaton(aut)
    (pair,) = buchi.acceptance.pairs
    accepting_states = pair.left
    results = []
    for k in range(1, depth + 1):

        def successor(state: tuple[int, int], symbol: Symbol, k=k) -> tuple[int, int]:
            q, count = state
            if count >= k:
                return state  # latched: the prefix witness was found
            target = buchi.step(q, symbol)
            return target, min(count + (1 if target in accepting_states else 0), k)

        results.append(
            DetAutomaton.build_buchi(
                buchi.alphabet,
                (buchi.initial, 0),
                successor,
                lambda s, k=k: s[1] >= k,
            )
        )
    return results
