"""The topological view (§3): the Cantor metric on ``Σ^ω`` and the Borel
correspondence — safety = closed (F), guarantee = open (G), recurrence =
``G_δ``, persistence = ``F_σ``, liveness = dense."""

from repro.topology.borel import (
    borel_level,
    boundary,
    closure,
    g_delta_approximants,
    interior,
    is_closed,
    is_dense,
    is_f_sigma,
    is_g_delta,
    is_open,
)
from repro.topology.metric import ball_around, converges_to, distance

__all__ = [
    "borel_level",
    "boundary",
    "closure",
    "g_delta_approximants",
    "interior",
    "is_closed",
    "is_dense",
    "is_f_sigma",
    "is_g_delta",
    "is_open",
    "ball_around",
    "converges_to",
    "distance",
]
