"""Brzozowski derivatives: a second, independent regex → DFA pipeline.

``derivative(r, a)`` denotes ``{w : aw ∈ L(r)}``; iterating over canonical
derivative terms yields a DFA directly, with no NFA in between.  The test
suite cross-validates this construction against the Thompson/subset route,
so a bug in either pipeline is caught by the other.

Canonicalization ("similarity") keeps the derivative space finite: unions
are flattened, sorted and deduplicated; ∅ and ε identities are applied;
nested stars collapse.
"""

from __future__ import annotations

from functools import lru_cache

from repro.finitary.dfa import DFA
from repro.finitary.regex import (
    AnySym,
    Concat,
    EmptySet,
    Epsilon,
    Lit,
    Option,
    Plus,
    Regex,
    Star,
    Union,
)
from repro.words.alphabet import Alphabet, Symbol

EMPTY = EmptySet()
EPSILON = Epsilon()


# ---------------------------------------------------------- smart constructors


def union(parts: tuple[Regex, ...]) -> Regex:
    flattened: list[Regex] = []
    for part in parts:
        for piece in part.parts if isinstance(part, Union) else (part,):
            if isinstance(piece, EmptySet):
                continue
            if piece not in flattened:
                flattened.append(piece)
    if not flattened:
        return EMPTY
    if len(flattened) == 1:
        return flattened[0]
    flattened.sort(key=repr)
    return Union(tuple(flattened))


def concat(parts: tuple[Regex, ...]) -> Regex:
    flattened: list[Regex] = []
    for part in parts:
        if isinstance(part, EmptySet):
            return EMPTY
        if isinstance(part, Epsilon):
            continue
        for piece in part.parts if isinstance(part, Concat) else (part,):
            flattened.append(piece)
    if not flattened:
        return EPSILON
    if len(flattened) == 1:
        return flattened[0]
    return Concat(tuple(flattened))


def star(inner: Regex) -> Regex:
    if isinstance(inner, (EmptySet, Epsilon)):
        return EPSILON
    if isinstance(inner, Star):
        return inner
    if isinstance(inner, Plus):
        return Star(inner.inner)
    return Star(inner)


# ------------------------------------------------------------------ semantics


@lru_cache(maxsize=None)
def nullable(regex: Regex) -> bool:
    """Does the language contain the empty word?"""
    if isinstance(regex, (Epsilon, Star, Option)):
        return True
    if isinstance(regex, (EmptySet, Lit, AnySym)):
        return False
    if isinstance(regex, Plus):
        return nullable(regex.inner)
    if isinstance(regex, Concat):
        return all(nullable(part) for part in regex.parts)
    if isinstance(regex, Union):
        return any(nullable(part) for part in regex.parts)
    raise TypeError(f"unknown regex node {regex!r}")


def derivative(regex: Regex, symbol: Symbol) -> Regex:
    """The Brzozowski derivative ``a⁻¹·L``, canonicalized."""
    if isinstance(regex, (EmptySet, Epsilon)):
        return EMPTY
    if isinstance(regex, Lit):
        return EPSILON if regex.symbol == symbol else EMPTY
    if isinstance(regex, AnySym):
        return EPSILON
    if isinstance(regex, Union):
        return union(tuple(derivative(part, symbol) for part in regex.parts))
    if isinstance(regex, Concat):
        head, tail = regex.parts[0], regex.parts[1:]
        rest = concat(tail) if tail else EPSILON
        first = concat((derivative(head, symbol), rest))
        if nullable(head):
            return union((first, derivative(rest, symbol)))
        return first
    if isinstance(regex, Star):
        return concat((derivative(regex.inner, symbol), star(regex.inner)))
    if isinstance(regex, Plus):
        return concat((derivative(regex.inner, symbol), star(regex.inner)))
    if isinstance(regex, Option):
        return derivative(regex.inner, symbol)
    raise TypeError(f"unknown regex node {regex!r}")


def word_derivative(regex: Regex, word) -> Regex:
    current = regex
    for symbol in word:
        current = derivative(current, symbol)
    return current


def matches(regex: Regex, word) -> bool:
    """Membership by derivation — no automaton at all."""
    return nullable(word_derivative(regex, word))


def derivative_dfa(regex: Regex, alphabet: Alphabet) -> DFA:
    """The deterministic automaton of canonical derivative terms.

    Finite by Brzozowski's theorem (derivatives modulo similarity); states
    are the distinct canonical terms, accepting iff nullable.
    """
    return DFA.build(
        alphabet,
        _canonical(regex),
        lambda term, symbol: derivative(term, symbol),
        nullable,
    )


def _canonical(regex: Regex) -> Regex:
    """Push the input through the smart constructors once."""
    if isinstance(regex, Union):
        return union(tuple(_canonical(part) for part in regex.parts))
    if isinstance(regex, Concat):
        return concat(tuple(_canonical(part) for part in regex.parts))
    if isinstance(regex, Star):
        return star(_canonical(regex.inner))
    if isinstance(regex, Plus):
        inner = _canonical(regex.inner)
        return concat((inner, star(inner)))
    if isinstance(regex, Option):
        return union((_canonical(regex.inner), EPSILON))
    return regex
