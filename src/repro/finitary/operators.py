"""The paper's finitary operators as DFA constructions (§2).

* ``A_f(Φ)`` — words all of whose non-empty prefixes belong to Φ;
* ``E_f(Φ) = Φ·Σ*`` — words with at least one prefix in Φ;
* ``minex(Φ₁, Φ₂)`` — minimal proper Φ₂-extensions of Φ₁-words, the key to
  the closure of the recurrence class under intersection:
  ``R(Φ₁) ∩ R(Φ₂) = R(minex(Φ₁, Φ₂))``;
* ``prefix_extendable`` — the states from which acceptance is reachable,
  used to compute prefix languages.
"""

from __future__ import annotations

from repro.finitary.dfa import DFA
from repro.finitary.language import FinitaryLanguage
from repro.words.alphabet import Symbol


def af(phi: FinitaryLanguage) -> FinitaryLanguage:
    """``A_f(Φ)``.

    Simulate Φ's DFA but fall into a permanent trap the first time a proper
    or full prefix leaves Φ; a word is accepted iff the run never trapped
    and ends accepting — i.e. iff every non-empty prefix is in Φ.
    """
    dfa = phi.dfa
    trap = "af-trap"

    def successor(state: int | str, symbol: Symbol) -> int | str:
        if state == trap:
            return trap
        target = dfa.step(state, symbol)
        return target if target in dfa.accepting else trap

    return FinitaryLanguage(
        DFA.build(dfa.alphabet, dfa.initial, successor, lambda s: s != trap and s in dfa.accepting)
    )


def ef(phi: FinitaryLanguage) -> FinitaryLanguage:
    """``E_f(Φ) = Φ·Σ*``: latch acceptance the first time Φ is entered."""
    dfa = phi.dfa
    sink = "ef-sink"

    def successor(state: int | str, symbol: Symbol) -> int | str:
        if state == sink:
            return sink
        target = dfa.step(state, symbol)
        return sink if target in dfa.accepting else target

    return FinitaryLanguage(DFA.build(dfa.alphabet, dfa.initial, successor, lambda s: s == sink))


def minex(phi1: FinitaryLanguage, phi2: FinitaryLanguage) -> FinitaryLanguage:
    """``minex(Φ₁, Φ₂)`` (§2, closure of the recurrence class).

    ``σ ∈ minex(Φ₁, Φ₂)`` iff ``σ ∈ Φ₂`` and some proper prefix ``σ₁ ∈ Φ₁``
    has no Φ₂-word strictly between ``σ₁`` and ``σ``.

    The product DFA tracks, besides both component states, two booleans:

    * ``fresh``  — after reading ``t`` symbols: some prefix ``σ₁ ⪯`` the
      current word lies in Φ₁ with no Φ₂-prefix strictly after it;
    * ``armed`` — the value ``fresh`` had one symbol ago, which is exactly
      the acceptance condition once the final symbol lands in Φ₂.
    """
    d1, d2 = phi1.dfa, phi2.dfa
    if not d1.alphabet.is_compatible_with(d2.alphabet):
        raise ValueError("minex of languages over different alphabets")

    State = tuple[int, int, bool, bool]
    initial: State = (d1.initial, d2.initial, False, False)

    def successor(state: State, symbol: Symbol) -> State:
        q1, q2, fresh, _armed = state
        n1, n2 = d1.step(q1, symbol), d2.step(q2, symbol)
        new_fresh = (n1 in d1.accepting) or (fresh and n2 not in d2.accepting)
        return (n1, n2, new_fresh, fresh)

    def accepting(state: State) -> bool:
        _q1, q2, _fresh, armed = state
        return q2 in d2.accepting and armed

    return FinitaryLanguage(DFA.build(d1.alphabet, initial, successor, accepting))


def prefix_extendable(dfa: DFA) -> DFA:
    """Same structure, accepting exactly at states that can still reach acceptance.

    Applied to a DFA for Φ this recognizes ``Pref(E_f(Φ))``-style prefix
    languages; applied to the transition core of a deterministic ω-automaton
    (with the residual-nonempty states as targets) it yields ``Pref(Π)``.
    """
    live = dfa.coreachable_states()
    return dfa.map_accepting(lambda state: state in live)
