"""Regular expressions: AST, parser, and Thompson construction.

Syntax (ASCII rendition of the paper's notation):

* single-character symbols: ``a``, ``b``, …  (must belong to the alphabet)
* ``.``  — any symbol (the paper's ``Σ``)
* juxtaposition — concatenation
* ``|``  — union (the paper writes ``+`` between words; here ``+`` is postfix)
* ``*`` / ``+`` / ``?`` — postfix star, plus, option
* ``()`` — grouping, ``0`` — the empty language, ``1`` — the empty word

So the paper's ``a⁺b*`` is written ``a+b*`` and its ``a + b`` is ``a|b``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError
from repro.finitary.dfa import DFA
from repro.finitary.nfa import NFA
from repro.words.alphabet import Alphabet, Symbol


class Regex:
    """Base class of regular-expression AST nodes."""

    __slots__ = ()

    def __or__(self, other: Regex) -> Regex:
        return Union((self, other))

    def __add__(self, other: Regex) -> Regex:
        return Concat((self, other))

    def star(self) -> Regex:
        return Star(self)

    def plus(self) -> Regex:
        return Plus(self)

    def optional(self) -> Regex:
        return Option(self)

    def to_nfa(self, alphabet: Alphabet) -> NFA:
        return regex_to_nfa(self, alphabet)

    def to_dfa(self, alphabet: Alphabet) -> DFA:
        return regex_to_nfa(self, alphabet).determinize().minimized()


@dataclass(frozen=True, slots=True)
class EmptySet(Regex):
    def __repr__(self) -> str:
        return "0"


@dataclass(frozen=True, slots=True)
class Epsilon(Regex):
    def __repr__(self) -> str:
        return "1"


@dataclass(frozen=True, slots=True)
class Lit(Regex):
    symbol: Symbol

    def __repr__(self) -> str:
        return str(self.symbol)


@dataclass(frozen=True, slots=True)
class AnySym(Regex):
    def __repr__(self) -> str:
        return "."


@dataclass(frozen=True, slots=True)
class Concat(Regex):
    parts: tuple[Regex, ...]

    def __repr__(self) -> str:
        return "".join(_wrap(p, for_concat=True) for p in self.parts)


@dataclass(frozen=True, slots=True)
class Union(Regex):
    parts: tuple[Regex, ...]

    def __repr__(self) -> str:
        return "|".join(repr(p) for p in self.parts)


@dataclass(frozen=True, slots=True)
class Star(Regex):
    inner: Regex

    def __repr__(self) -> str:
        return f"{_wrap(self.inner)}*"


@dataclass(frozen=True, slots=True)
class Plus(Regex):
    inner: Regex

    def __repr__(self) -> str:
        return f"{_wrap(self.inner)}+"


@dataclass(frozen=True, slots=True)
class Option(Regex):
    inner: Regex

    def __repr__(self) -> str:
        return f"{_wrap(self.inner)}?"


def _wrap(node: Regex, *, for_concat: bool = False) -> str:
    needs = isinstance(node, Union) or (for_concat and isinstance(node, Concat))
    if isinstance(node, (Concat, Union)) and not for_concat:
        needs = True
    return f"({node!r})" if needs else repr(node)


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def peek(self) -> str | None:
        return self.text[self.pos] if self.pos < len(self.text) else None

    def take(self) -> str:
        char = self.text[self.pos]
        self.pos += 1
        return char

    def parse(self) -> Regex:
        node = self.union()
        if self.pos != len(self.text):
            raise ParseError(f"unexpected {self.peek()!r}", self.pos)
        return node

    def union(self) -> Regex:
        parts = [self.concat()]
        while self.peek() == "|":
            self.take()
            parts.append(self.concat())
        return parts[0] if len(parts) == 1 else Union(tuple(parts))

    def concat(self) -> Regex:
        parts: list[Regex] = []
        while (char := self.peek()) is not None and char not in ")|":
            parts.append(self.postfix())
        if not parts:
            return Epsilon()
        return parts[0] if len(parts) == 1 else Concat(tuple(parts))

    def postfix(self) -> Regex:
        node = self.atom()
        while (char := self.peek()) in ("*", "+", "?"):
            self.take()
            node = {"*": Star, "+": Plus, "?": Option}[char](node)
        return node

    def atom(self) -> Regex:
        char = self.peek()
        if char is None:
            raise ParseError("unexpected end of expression", self.pos)
        if char == "(":
            self.take()
            node = self.union()
            if self.peek() != ")":
                raise ParseError("expected ')'", self.pos)
            self.take()
            return node
        if char in "*+?)":
            raise ParseError(f"misplaced {char!r}", self.pos)
        self.take()
        if char == ".":
            return AnySym()
        if char == "0":
            return EmptySet()
        if char == "1":
            return Epsilon()
        return Lit(char)


def parse_regex(text: str) -> Regex:
    """Parse the ASCII regular-expression syntax described in the module docstring."""
    return _Parser(text.replace(" ", "")).parse()


def regex_to_nfa(regex: Regex, alphabet: Alphabet) -> NFA:
    """Thompson's construction: one fresh (start, end) state pair per node."""
    transitions: dict[tuple[int, Symbol], set[int]] = {}
    epsilon: dict[int, set[int]] = {}
    counter = 0

    def fresh() -> int:
        nonlocal counter
        counter += 1
        return counter - 1

    def eps(src: int, dst: int) -> None:
        epsilon.setdefault(src, set()).add(dst)

    def compile_node(node: Regex) -> tuple[int, int]:
        start, end = fresh(), fresh()
        if isinstance(node, EmptySet):
            pass
        elif isinstance(node, Epsilon):
            eps(start, end)
        elif isinstance(node, Lit):
            alphabet.require(node.symbol)
            transitions.setdefault((start, node.symbol), set()).add(end)
        elif isinstance(node, AnySym):
            for symbol in alphabet:
                transitions.setdefault((start, symbol), set()).add(end)
        elif isinstance(node, Concat):
            previous = start
            for part in node.parts:
                sub_start, sub_end = compile_node(part)
                eps(previous, sub_start)
                previous = sub_end
            eps(previous, end)
        elif isinstance(node, Union):
            for part in node.parts:
                sub_start, sub_end = compile_node(part)
                eps(start, sub_start)
                eps(sub_end, end)
        elif isinstance(node, (Star, Plus, Option)):
            sub_start, sub_end = compile_node(node.inner)
            eps(start, sub_start)
            eps(sub_end, end)
            if isinstance(node, (Star, Plus)):
                eps(sub_end, sub_start)
            if isinstance(node, (Star, Option)):
                eps(start, end)
        else:  # pragma: no cover - exhaustive over the AST
            raise TypeError(f"unknown regex node {node!r}")
        return start, end

    start, end = compile_node(regex)
    return NFA(alphabet, counter, transitions, [start], [end], epsilon)
