"""Nondeterministic finite automata with ε-moves, and the subset construction."""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.errors import AutomatonError
from repro.finitary.dfa import DFA
from repro.words.alphabet import Alphabet, Symbol
from repro.words.finite import FiniteWord


class NFA:
    """An NFA ``(Σ, Q, I, δ, ε, F)`` over integer states ``0..n-1``."""

    __slots__ = ("alphabet", "num_states", "transitions", "epsilon", "initials", "accepting")

    def __init__(
        self,
        alphabet: Alphabet,
        num_states: int,
        transitions: dict[tuple[int, Symbol], set[int]],
        initials: Iterable[int],
        accepting: Iterable[int],
        epsilon: dict[int, set[int]] | None = None,
    ) -> None:
        self.alphabet = alphabet
        self.num_states = num_states
        self.transitions = {key: frozenset(targets) for key, targets in transitions.items()}
        self.epsilon = {state: frozenset(targets) for state, targets in (epsilon or {}).items()}
        self.initials = frozenset(initials)
        self.accepting = frozenset(accepting)
        for (state, symbol), targets in self.transitions.items():
            if not 0 <= state < num_states or any(not 0 <= t < num_states for t in targets):
                raise AutomatonError("NFA transition out of range")
            if symbol not in alphabet:
                raise AutomatonError(f"NFA transition on foreign symbol {symbol!r}")

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        seen = set(states)
        queue = deque(seen)
        while queue:
            state = queue.popleft()
            for target in self.epsilon.get(state, ()):
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return frozenset(seen)

    def successors(self, states: Iterable[int], symbol: Symbol) -> frozenset[int]:
        direct: set[int] = set()
        for state in states:
            direct |= self.transitions.get((state, symbol), frozenset())
        return self.epsilon_closure(direct)

    def accepts(self, word: FiniteWord | Iterable[Symbol]) -> bool:
        current = self.epsilon_closure(self.initials)
        for symbol in word:
            current = self.successors(current, symbol)
        return bool(current & self.accepting)

    def determinize(self) -> DFA:
        """The subset construction; the result is complete (∅ is the trap).

        Large inputs route through the dense bitset kernel
        (:func:`repro.fastpath.subset.determinize_dense`), which returns a
        structurally identical DFA; see ``docs/PERFORMANCE.md``.
        """
        from repro.fastpath.config import kernel_selected

        if kernel_selected("subset", self.num_states * len(self.alphabet)):
            from repro.fastpath.subset import determinize_dense

            return determinize_dense(self)
        initial = self.epsilon_closure(self.initials)
        return DFA.build(
            self.alphabet,
            initial,
            lambda subset, symbol: self.successors(subset, symbol),
            lambda subset: bool(subset & self.accepting),
        )

    def reversed(self) -> NFA:
        """The mirror-image NFA recognizing reversed words (ε-moves flipped too)."""
        transitions: dict[tuple[int, Symbol], set[int]] = {}
        for (state, symbol), targets in self.transitions.items():
            for target in targets:
                transitions.setdefault((target, symbol), set()).add(state)
        epsilon: dict[int, set[int]] = {}
        for state, targets in self.epsilon.items():
            for target in targets:
                epsilon.setdefault(target, set()).add(state)
        return NFA(self.alphabet, self.num_states, transitions, self.accepting, self.initials, epsilon)

    @classmethod
    def from_dfa(cls, dfa: DFA) -> NFA:
        transitions: dict[tuple[int, Symbol], set[int]] = {}
        for state, symbol, target in dfa.transitions():
            transitions.setdefault((state, symbol), set()).add(target)
        return cls(dfa.alphabet, dfa.num_states, transitions, [dfa.initial], dfa.accepting)

    def __repr__(self) -> str:
        return f"NFA(states={self.num_states}, initials={sorted(self.initials)}, accepting={sorted(self.accepting)})"
