"""Finitary properties ``Φ ⊆ Σ⁺`` with set algebra relative to ``Σ⁺``.

The paper's finitary properties never contain the empty word, and their
complement is taken with respect to ``Σ⁺``.  :class:`FinitaryLanguage`
enforces both invariants on top of a minimized complete DFA, so the
linguistic operators and closure laws can be stated exactly as in §2.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.finitary.dfa import DFA
from repro.finitary.regex import parse_regex
from repro.words.alphabet import Alphabet, Symbol
from repro.words.finite import FiniteWord


def _reject_empty_word(dfa: DFA) -> DFA:
    """Same language minus the empty word (fresh initial state if needed)."""
    if dfa.initial not in dfa.accepting:
        return dfa

    def successor(state: int | str, symbol: Symbol) -> int:
        concrete = dfa.initial if state == "fresh-initial" else state
        return dfa.step(concrete, symbol)

    def accepting(state: int | str) -> bool:
        return state != "fresh-initial" and state in dfa.accepting

    return DFA.build(dfa.alphabet, "fresh-initial", successor, accepting)


class FinitaryLanguage:
    """A regular language of non-empty finite words, canonically minimized."""

    __slots__ = ("dfa",)

    def __init__(self, dfa: DFA) -> None:
        self.dfa = _reject_empty_word(dfa).minimized()

    # ----------------------------------------------------------- constructors

    @classmethod
    def from_regex(cls, text: str, alphabet: Alphabet) -> FinitaryLanguage:
        """Parse and compile; the empty word is silently dropped if denoted."""
        return cls(parse_regex(text).to_dfa(alphabet))

    @classmethod
    def from_words(cls, alphabet: Alphabet, words: Iterable[FiniteWord]) -> FinitaryLanguage:
        result = DFA.empty_language(alphabet)
        for word in words:
            result = result.union(DFA.from_word(alphabet, word))
        return cls(result)

    @classmethod
    def everything(cls, alphabet: Alphabet) -> FinitaryLanguage:
        """``Σ⁺``."""
        return cls.from_regex(".+", alphabet)

    @classmethod
    def nothing(cls, alphabet: Alphabet) -> FinitaryLanguage:
        return cls(DFA.empty_language(alphabet))

    # ------------------------------------------------------------- membership

    @property
    def alphabet(self) -> Alphabet:
        return self.dfa.alphabet

    def __contains__(self, word: FiniteWord) -> bool:
        return len(word) > 0 and self.dfa.accepts(word)

    def words(self, max_length: int) -> Iterator[FiniteWord]:
        return self.dfa.accepted_words(max_length)

    def is_empty(self) -> bool:
        return self.dfa.is_empty()

    def is_everything(self) -> bool:
        """True when the language is all of ``Σ⁺``."""
        return self.complement().is_empty()

    # -------------------------------------------------------------- algebra

    def union(self, other: FinitaryLanguage) -> FinitaryLanguage:
        return FinitaryLanguage(self.dfa.union(other.dfa))

    def intersection(self, other: FinitaryLanguage) -> FinitaryLanguage:
        return FinitaryLanguage(self.dfa.intersection(other.dfa))

    def difference(self, other: FinitaryLanguage) -> FinitaryLanguage:
        return FinitaryLanguage(self.dfa.difference(other.dfa))

    def complement(self) -> FinitaryLanguage:
        """``Σ⁺ − Φ`` (the constructor re-rejects the empty word)."""
        return FinitaryLanguage(self.dfa.complement())

    def __or__(self, other: FinitaryLanguage) -> FinitaryLanguage:
        return self.union(other)

    def __and__(self, other: FinitaryLanguage) -> FinitaryLanguage:
        return self.intersection(other)

    def __sub__(self, other: FinitaryLanguage) -> FinitaryLanguage:
        return self.difference(other)

    def __invert__(self) -> FinitaryLanguage:
        return self.complement()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FinitaryLanguage):
            return NotImplemented
        return self.dfa.equivalent_to(other.dfa)

    def __hash__(self) -> int:  # languages are compared, not hashed, in anger
        return hash((self.alphabet, self.dfa.num_states, self.dfa.accepting))

    def __le__(self, other: FinitaryLanguage) -> bool:
        return self.difference(other).is_empty()

    def __lt__(self, other: FinitaryLanguage) -> bool:
        return self <= other and self != other

    def __repr__(self) -> str:
        sample = self.dfa.shortest_accepted()
        return f"FinitaryLanguage(states={self.dfa.num_states}, shortest={sample!r})"

    # ------------------------------------------------- paper's §2 operators

    def af(self) -> FinitaryLanguage:
        """``A_f(Φ)``: finite words all of whose non-empty prefixes are in Φ."""
        from repro.finitary.operators import af

        return af(self)

    def ef(self) -> FinitaryLanguage:
        """``E_f(Φ) = Φ·Σ*``: finite words with some prefix in Φ."""
        from repro.finitary.operators import ef

        return ef(self)

    def minex(self, other: FinitaryLanguage) -> FinitaryLanguage:
        """``minex(Φ, other)``: minimal proper ``other``-extensions of Φ-words."""
        from repro.finitary.operators import minex

        return minex(self, other)
