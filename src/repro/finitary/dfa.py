"""Complete deterministic finite automata over an explicit alphabet.

States are the integers ``0..n-1``; automata are always *complete* (every
state has a successor on every symbol), which keeps complementation and the
paper's prefix-based constructions trivial.  The central construction tool is
:meth:`DFA.build`, which explores an abstract deterministic transition system
breadth-first and freezes it into a concrete DFA — every product, operator
and closure construction in the library is expressed through it.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from collections.abc import Callable, Hashable, Iterable, Iterator, Sequence

from repro.errors import AutomatonError
from repro.words.alphabet import Alphabet, Symbol
from repro.words.finite import FiniteWord

_BUILD_LIMIT = 2_000_000


def explore(
    alphabet: Alphabet,
    initial: Hashable,
    successor: Callable[[Hashable, Symbol], Hashable],
    *,
    state_limit: int = _BUILD_LIMIT,
) -> tuple[list[list[int]], list[Hashable]]:
    """Breadth-first freeze of an abstract deterministic transition system.

    Returns the integer transition table and the list of abstract states in
    discovery order (state ``i`` of the table is ``order[i]``; the initial
    abstract state is state ``0``).  Shared by DFA and ω-automaton builders.
    """
    index: dict[Hashable, int] = {initial: 0}
    order: list[Hashable] = [initial]
    rows: list[list[int]] = []
    queue: deque[Hashable] = deque([initial])
    while queue:
        current = queue.popleft()
        row: list[int] = []
        for symbol in alphabet:
            nxt = successor(current, symbol)
            if nxt not in index:
                if len(index) >= state_limit:
                    raise AutomatonError(f"automaton construction exceeded {state_limit} states")
                index[nxt] = len(order)
                order.append(nxt)
                queue.append(nxt)
            row.append(index[nxt])
        rows.append(row)
    return rows, order


class DFA:
    """A complete DFA ``(Σ, Q, q₀, δ, F)`` recognizing a language of finite words."""

    __slots__ = ("alphabet", "_delta", "initial", "accepting")

    def __init__(
        self,
        alphabet: Alphabet,
        transitions: Sequence[Sequence[int]],
        initial: int,
        accepting: Iterable[int],
    ) -> None:
        self.alphabet = alphabet
        self._delta: tuple[tuple[int, ...], ...] = tuple(tuple(row) for row in transitions)
        self.initial = initial
        self.accepting = frozenset(accepting)
        n = len(self._delta)
        if not 0 <= initial < n:
            raise AutomatonError(f"initial state {initial} out of range for {n} states")
        for state, row in enumerate(self._delta):
            if len(row) != len(alphabet):
                raise AutomatonError(f"state {state} has {len(row)} transitions, expected {len(alphabet)}")
            for target in row:
                if not 0 <= target < n:
                    raise AutomatonError(f"transition target {target} out of range")
        for state in self.accepting:
            if not 0 <= state < n:
                raise AutomatonError(f"accepting state {state} out of range")

    @classmethod
    def trusted(
        cls,
        alphabet: Alphabet,
        transitions: Sequence[Sequence[int]],
        initial: int,
        accepting: Iterable[int],
    ) -> DFA:
        """Construct without re-validating the table.

        For rows produced by in-tree exploration (``explore``, the fastpath
        kernels), which are complete and in-range by construction; skips the
        ``O(n·|Σ|)`` validation pass of ``__init__``.
        """
        dfa = cls.__new__(cls)
        dfa.alphabet = alphabet
        dfa._delta = tuple(map(tuple, transitions))
        dfa.initial = initial
        dfa.accepting = frozenset(accepting)
        return dfa

    # ------------------------------------------------------------------ core

    @property
    def num_states(self) -> int:
        return len(self._delta)

    @property
    def states(self) -> range:
        return range(len(self._delta))

    def step(self, state: int, symbol: Symbol) -> int:
        return self._delta[state][self.alphabet.index(symbol)]

    def step_by_index(self, state: int, symbol_index: int) -> int:
        return self._delta[state][symbol_index]

    def run(self, word: FiniteWord | Iterable[Symbol], start: int | None = None) -> int:
        """The state ``δ(start, word)`` reached after reading the whole word."""
        state = self.initial if start is None else start
        for symbol in word:
            state = self.step(state, symbol)
        return state

    def trace(self, word: FiniteWord | Iterable[Symbol]) -> list[int]:
        """The full state sequence ``q₀, δ(q₀,σ[0]), …`` (length ``|word|+1``)."""
        states = [self.initial]
        for symbol in word:
            states.append(self.step(states[-1], symbol))
        return states

    def accepts(self, word: FiniteWord | Iterable[Symbol]) -> bool:
        return self.run(word) in self.accepting

    def __contains__(self, word: FiniteWord) -> bool:
        return self.accepts(word)

    # --------------------------------------------------------------- builder

    @classmethod
    def build(
        cls,
        alphabet: Alphabet,
        initial: Hashable,
        successor: Callable[[Hashable, Symbol], Hashable],
        is_accepting: Callable[[Hashable], bool],
        *,
        state_limit: int = _BUILD_LIMIT,
    ) -> DFA:
        """Freeze an abstract deterministic transition system into a DFA.

        ``initial`` is any hashable seed state; ``successor`` gives the unique
        next abstract state per symbol; reachable abstract states are numbered
        breadth-first.  Raises if more than ``state_limit`` states appear.
        """
        rows, order = explore(alphabet, initial, successor, state_limit=state_limit)
        accepting = [i for i, s in enumerate(order) if is_accepting(s)]
        return cls(alphabet, rows, 0, accepting)

    # ------------------------------------------------------------ set algebra

    def complement(self) -> DFA:
        return DFA(self.alphabet, self._delta, self.initial, set(self.states) - self.accepting)

    def _product(self, other: DFA, combine: Callable[[bool, bool], bool]) -> DFA:
        if not self.alphabet.is_compatible_with(other.alphabet):
            raise AutomatonError("product of DFAs over different alphabets")
        from repro.fastpath.config import kernel_selected

        if kernel_selected(
            "dfa_product", self.num_states * other.num_states * len(self.alphabet)
        ):
            from repro.fastpath.product import dfa_product_dense

            return dfa_product_dense(self, other, combine)

        def successor(pair: tuple[int, int], symbol: Symbol) -> tuple[int, int]:
            return self.step(pair[0], symbol), other.step(pair[1], symbol)

        def accepting(pair: tuple[int, int]) -> bool:
            return combine(pair[0] in self.accepting, pair[1] in other.accepting)

        return DFA.build(self.alphabet, (self.initial, other.initial), successor, accepting)

    def union(self, other: DFA) -> DFA:
        return self._product(other, lambda a, b: a or b)

    def intersection(self, other: DFA) -> DFA:
        return self._product(other, lambda a, b: a and b)

    def difference(self, other: DFA) -> DFA:
        return self._product(other, lambda a, b: a and not b)

    def symmetric_difference(self, other: DFA) -> DFA:
        return self._product(other, lambda a, b: a != b)

    # ------------------------------------------------------------- inspection

    def reachable_states(self, start: int | None = None) -> frozenset[int]:
        seen = {self.initial if start is None else start}
        queue = deque(seen)
        while queue:
            state = queue.popleft()
            for target in self._delta[state]:
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return frozenset(seen)

    def coreachable_states(self, targets: Iterable[int] | None = None) -> frozenset[int]:
        """States from which some state in ``targets`` (default: accepting) is reachable."""
        goal = set(self.accepting if targets is None else targets)
        predecessors: dict[int, set[int]] = {s: set() for s in self.states}
        for state in self.states:
            for target in self._delta[state]:
                predecessors[target].add(state)
        seen = set(goal)
        queue = deque(goal)
        while queue:
            state = queue.popleft()
            for pred in predecessors[state]:
                if pred not in seen:
                    seen.add(pred)
                    queue.append(pred)
        return frozenset(seen)

    def is_empty(self) -> bool:
        return not (self.reachable_states() & self.accepting)

    def accepts_everything(self) -> bool:
        """True when the language is all of ``Σ*`` (including the empty word)."""
        return self.reachable_states() <= self.accepting

    def shortest_accepted(self) -> FiniteWord | None:
        """A length-lexicographic-minimal accepted word, or ``None`` if empty."""
        if self.initial in self.accepting:
            return FiniteWord.empty()
        parents: dict[int, tuple[int, Symbol]] = {}
        queue: deque[int] = deque([self.initial])
        seen = {self.initial}
        while queue:
            state = queue.popleft()
            for symbol in self.alphabet:
                target = self.step(state, symbol)
                if target in seen:
                    continue
                seen.add(target)
                parents[target] = (state, symbol)
                if target in self.accepting:
                    symbols: list[Symbol] = []
                    node = target
                    while node != self.initial:
                        node_parent, sym = parents[node]
                        symbols.append(sym)
                        node = node_parent
                    return FiniteWord(reversed(symbols))
                queue.append(target)
        return None

    def accepted_words(self, max_length: int, *, include_empty: bool = False) -> Iterator[FiniteWord]:
        """Enumerate accepted words of length ``≤ max_length`` (brute-force oracle)."""
        if include_empty and self.initial in self.accepting:
            yield FiniteWord.empty()
        frontier: list[tuple[int, tuple[Symbol, ...]]] = [(self.initial, ())]
        for _ in range(max_length):
            next_frontier: list[tuple[int, tuple[Symbol, ...]]] = []
            for state, word in frontier:
                for symbol in self.alphabet:
                    target = self.step(state, symbol)
                    extended = word + (symbol,)
                    if target in self.accepting:
                        yield FiniteWord(extended)
                    next_frontier.append((target, extended))
            frontier = next_frontier

    # ------------------------------------------------------------ minimization

    def minimized(self) -> DFA:
        """The canonical minimal complete DFA (Moore partition refinement).

        Unreachable states are dropped; the result is unique up to state
        numbering, which is fixed by breadth-first order from the initial
        state, so equal languages yield structurally identical automata.

        Large inputs route through the array-based Hopcroft kernel
        (:func:`repro.fastpath.minimize.minimized_dense`), which returns
        the same canonical automaton; see ``docs/PERFORMANCE.md``.
        """
        from repro.fastpath.config import kernel_selected

        if kernel_selected("minimize", self.num_states * len(self.alphabet)):
            from repro.fastpath.minimize import minimized_dense

            return minimized_dense(self)
        reachable = sorted(self.reachable_states())
        position = {s: i for i, s in enumerate(reachable)}
        block = [1 if s in self.accepting else 0 for s in reachable]
        while True:
            signatures = {}
            new_block = []
            for s in reachable:
                signature = (
                    block[position[s]],
                    tuple(block[position[self.step_by_index(s, a)]] for a in range(len(self.alphabet))),
                )
                if signature not in signatures:
                    signatures[signature] = len(signatures)
                new_block.append(signatures[signature])
            if new_block == block:
                break
            block = new_block

        def successor(b: int, symbol: Symbol) -> int:
            representative = next(s for s in reachable if block[position[s]] == b)
            return block[position[self.step(representative, symbol)]]

        def accepting(b: int) -> bool:
            representative = next(s for s in reachable if block[position[s]] == b)
            return representative in self.accepting

        return DFA.build(self.alphabet, block[position[self.initial]], successor, accepting)

    def equivalent_to(self, other: DFA) -> bool:
        return self.symmetric_difference(other).is_empty()

    # ------------------------------------------------------------------ misc

    def map_accepting(self, predicate: Callable[[int], bool]) -> DFA:
        """Same structure, new accepting set ``{q : predicate(q)}``."""
        return DFA(self.alphabet, self._delta, self.initial, [s for s in self.states if predicate(s)])

    def transitions(self) -> Iterator[tuple[int, Symbol, int]]:
        for state, row in enumerate(self._delta):
            for symbol, target in zip(self.alphabet, row):
                yield state, symbol, target

    def __repr__(self) -> str:
        return f"DFA(states={self.num_states}, accepting={sorted(self.accepting)}, alphabet={len(self.alphabet)})"

    @classmethod
    def universal(cls, alphabet: Alphabet) -> DFA:
        """The DFA accepting all of ``Σ*``."""
        return cls(alphabet, [[0] * len(alphabet)], 0, [0])

    @classmethod
    def empty_language(cls, alphabet: Alphabet) -> DFA:
        return cls(alphabet, [[0] * len(alphabet)], 0, [])

    @classmethod
    def from_word(cls, alphabet: Alphabet, word: FiniteWord) -> DFA:
        """The singleton language ``{word}``."""
        symbols = tuple(word)
        n = len(symbols)
        trap = n + 1
        rows = []
        for i in range(n):
            rows.append([i + 1 if symbol == symbols[i] else trap for symbol in alphabet])
        rows.append([trap] * len(alphabet))  # state n: the accepting end
        rows.append([trap] * len(alphabet))  # trap
        return cls(alphabet, rows, 0, [n])


def random_dfa(
    alphabet: Alphabet,
    num_states: int,
    rng: random.Random | int | None = None,
    *,
    accepting_probability: float = 0.4,
) -> DFA:
    """A uniformly random complete DFA — fuel for the property-test corpus.

    ``rng`` may be a ``random.Random`` instance, an integer seed, or ``None``
    (seed 0), so every randomized benchmark and test is reproducible by
    construction.
    """
    if not isinstance(rng, random.Random):
        rng = random.Random(0 if rng is None else rng)
    rows = [[rng.randrange(num_states) for _ in alphabet] for _ in range(num_states)]
    accepting = [s for s in range(num_states) if rng.random() < accepting_probability]
    return DFA(alphabet, rows, 0, accepting)


def cross_product_states(*sizes: int) -> Iterator[tuple[int, ...]]:
    """All tuples over the given ranges (helper for explicit product tables)."""
    return itertools.product(*(range(size) for size in sizes))
