"""Finitary properties: regular languages of finite words.

The paper builds every infinitary property from *finitary* ones — sets
``Φ ⊆ Σ⁺`` of non-empty finite words.  This package provides the machinery:
DFAs/NFAs, regular expressions, and the finitary operators ``A_f``, ``E_f``,
``Pref`` and ``minex`` as automaton constructions.
"""

from repro.finitary.dfa import DFA
from repro.finitary.nfa import NFA
from repro.finitary.regex import Regex, parse_regex, regex_to_nfa
from repro.finitary.language import FinitaryLanguage
from repro.finitary.operators import af, ef, minex, prefix_extendable

__all__ = [
    "DFA",
    "NFA",
    "Regex",
    "parse_regex",
    "regex_to_nfa",
    "FinitaryLanguage",
    "af",
    "ef",
    "minex",
    "prefix_extendable",
]
