"""Spec files in, reports out: the CLI face of the evaluation engine.

A *spec file* is a plain-text corpus of evaluation requests, one per line:

* blank lines and ``#`` comments are skipped;
* ``omega <letters>: <expression>`` classifies an ω-regular expression
  over the given letter alphabet (e.g. ``omega ab: .*b(ab)w``);
* ``monitor <stem>|<loop>: <formula>`` monitors the lasso word
  ``stem · loop^ω`` over single-letter propositions (each letter of the
  stem/loop names the proposition that holds at that step; ``.`` means
  "no proposition") against the formula;
* every other line is an LTL+Past formula to classify.

:class:`EngineSession` parses such a corpus, pushes it through an
:class:`~repro.engine.batch.EvaluationEngine`, and renders the combined
report — per-class counts, timings, cache statistics and metrics — that
``python -m repro engine`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.engine.batch import (
    BatchReport,
    ClassifyFormula,
    ClassifyOmega,
    EvaluationEngine,
    Job,
    MonitorLasso,
)
from repro.engine.cache import CACHES, CacheBank
from repro.engine.metrics import METRICS
from repro.obs.spans import span


class SpecSyntaxError(ValueError):
    """A spec line that cannot be turned into a job."""


def _monitor_symbols(text: str) -> tuple:
    """``"ab."`` → one singleton letter-set per step (``.`` = empty set)."""
    return tuple(frozenset() if ch == "." else frozenset(ch) for ch in text)


def parse_spec_line(line: str) -> Job | None:
    """One spec line → one job (or ``None`` for blanks/comments)."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    if stripped.startswith("omega "):
        head, _, expression = stripped.partition(":")
        letters = head[len("omega "):].strip()
        if not letters or not expression.strip():
            raise SpecSyntaxError(f"malformed omega line: {line!r}")
        return ClassifyOmega(expression.strip(), letters)
    if stripped.startswith("monitor "):
        head, _, formula = stripped.partition(":")
        word = head[len("monitor "):].strip()
        stem_text, sep, loop_text = word.partition("|")
        if not sep or not loop_text or not formula.strip():
            raise SpecSyntaxError(f"malformed monitor line: {line!r}")
        return MonitorLasso(
            formula.strip(),
            stem=_monitor_symbols(stem_text),
            loop=_monitor_symbols(loop_text),
        )
    return ClassifyFormula(stripped)


def parse_spec(text: str) -> list[Job]:
    """Parse a whole spec corpus; line numbers are attached to errors."""
    jobs: list[Job] = []
    for number, line in enumerate(text.splitlines(), start=1):
        try:
            job = parse_spec_line(line)
        except SpecSyntaxError as error:
            raise SpecSyntaxError(f"line {number}: {error}") from None
        if job is not None:
            jobs.append(job)
    return jobs


@dataclass
class EngineSession:
    """A stateful wrapper: parse specs, evaluate batches, render reports."""

    engine: EvaluationEngine = field(default_factory=EvaluationEngine)
    bank: CacheBank = field(default_factory=lambda: CACHES)
    history: list[BatchReport] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        *,
        executor: str = "serial",
        max_workers: int | None = None,
        dedupe: bool = True,
    ) -> EngineSession:
        bank = CACHES
        engine = EvaluationEngine(
            executor=executor, max_workers=max_workers, dedupe=dedupe, bank=bank
        )
        return cls(engine=engine, bank=bank)

    # ------------------------------------------------------------------ runs

    def run_jobs(self, jobs: Sequence[Job]) -> BatchReport:
        report = self.engine.run(jobs)
        self.history.append(report)
        return report

    def run_text(self, text: str) -> BatchReport:
        with span("session.run_text", lines=len(text.splitlines())):
            return self.run_jobs(parse_spec(text))

    def run_file(self, path: str | Path) -> BatchReport:
        with span("session.run_file", path=str(path)):
            return self.run_text(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------- rendering

    def render(self, report: BatchReport, *, verbose: bool = False) -> str:
        """The CLI's output: batch summary + (optionally) engine metrics."""
        lines = [report.summary()]
        if verbose:
            lines.append("")
            lines.append("metrics:")
            for metric_line in METRICS.report().splitlines():
                lines.append(f"  {metric_line}")
        return "\n".join(lines)

    def render_results(self, report: BatchReport) -> str:
        """One line per job: verdict/class plus the job's own description."""
        lines = []
        for result in report.results:
            if not result.ok:
                lines.append(f"{'ERROR':14s} {result.job.kind}: {result.error}")
                continue
            value = result.value
            canonical = getattr(value, "canonical_class", None) or getattr(
                value, "canonical", None
            )
            if canonical is not None:
                label = canonical.value
            elif hasattr(value, "verdict"):
                label = value.verdict.value
            elif hasattr(value, "holds"):
                label = "holds" if value.holds else "fails"
            else:
                label = str(value)
            subject = getattr(result.job, "formula", None) or getattr(
                result.job, "expression", None
            )
            flag = " (dedup)" if result.deduped else ""
            lines.append(f"{label:14s} {subject}{flag}")
        return "\n".join(lines)
