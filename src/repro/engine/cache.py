"""Keyed, size-bounded caches for the expensive automaton constructions.

Everything downstream of a formula is a pure function of ``(formula,
alphabet)`` — the GPVW tableau, Safra determinization, the classifier's
decision procedures — and real workloads (specification linting, batch
classification, monitoring fleets) ask for the same handful of properties
over and over.  This module provides the memoization layer:

* :class:`LRUCache` — a thread-safe, size-bounded LRU map with hit/miss/
  eviction statistics and explicit invalidation;
* :class:`CacheBank` — a named collection of such caches with a combined
  stats view, so the CLI can print one table;
* structural key helpers (:func:`formula_key`, :func:`automaton_key`,
  :func:`dfa_key`) — formulas and automata are interned by *value*, so two
  structurally equal requests share one cache line;
* ``cached_*`` wrappers over the library's expensive entry points
  (formula→NBA, formula→DRA, DFA minimization, classification, residual
  non-emptiness), all writing through the global :data:`CACHES` bank.

The wrappers import the algorithm modules lazily so that
``repro.core`` → ``repro.engine.metrics`` → ``repro.engine`` never cycles.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any

from repro.engine.metrics import METRICS
from repro.obs.spans import annotate


@dataclass(frozen=True, slots=True)
class CacheStats:
    """A point-in-time view of one cache's effectiveness."""

    name: str
    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def line(self) -> str:
        return (
            f"{self.name:20s} {self.size:5d}/{self.capacity:<5d}"
            f" hits={self.hits:<7d} misses={self.misses:<7d}"
            f" evictions={self.evictions:<5d} hit_rate={self.hit_rate:6.1%}"
        )


class LRUCache:
    """A thread-safe LRU cache with statistics and explicit invalidation.

    ``get_or_compute`` is the workhorse: it releases the lock while the
    value is being computed (constructions can take seconds), so concurrent
    misses on the same key may compute twice — the results are pure values,
    so the only cost is the duplicated work, never wrong answers.
    """

    def __init__(self, name: str, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.name = name
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ core

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                annotate(f"cache.{self.name}", "hit")
                return self._data[key]
            self._misses += 1
            annotate(f"cache.{self.name}", "miss")
            return default

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                annotate(f"cache.{self.name}", "hit")
                return self._data[key]
            self._misses += 1
        annotate(f"cache.{self.name}", "miss")
        value = compute()
        self.put(key, value)
        return value

    # ----------------------------------------------------------- maintenance

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            if key in self._data:
                del self._data[key]
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> list[Hashable]:
        with self._lock:
            return list(self._data.keys())

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self.name,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                capacity=self.capacity,
            )

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = self._evictions = 0

    def __repr__(self) -> str:
        s = self.stats()
        return f"LRUCache({self.name}, {s.size}/{s.capacity}, hits={s.hits}, misses={s.misses})"


class Interner:
    """Structural interning: one canonical instance per equal value.

    ``intern(x)`` returns the first object equal to ``x`` ever seen, so
    downstream identity-keyed caches and ``is`` comparisons collapse
    structurally equal formulas/automata to one representative.
    """

    def __init__(self) -> None:
        self._canon: dict[Hashable, Any] = {}
        self._lock = threading.Lock()

    def intern(self, value: Hashable) -> Any:
        with self._lock:
            return self._canon.setdefault(value, value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._canon)

    def clear(self) -> None:
        with self._lock:
            self._canon.clear()


class CacheBank:
    """A named collection of :class:`LRUCache` instances."""

    #: Default capacities for the engine's standard caches.
    DEFAULT_CAPACITIES: dict[str, int] = {
        "formula_nba": 512,
        "formula_automaton": 512,
        "classification": 512,
        "dfa_minimal": 256,
        "nonempty": 512,
        "omega_expression": 256,
        "monitor_compiled": 256,
    }

    def __init__(self, capacities: dict[str, int] | None = None) -> None:
        self._lock = threading.Lock()
        self._caches: dict[str, LRUCache] = {}
        self._capacities = dict(self.DEFAULT_CAPACITIES)
        if capacities:
            self._capacities.update(capacities)

    def cache(self, name: str, capacity: int | None = None) -> LRUCache:
        with self._lock:
            if name not in self._caches:
                size = capacity or self._capacities.get(name, 256)
                self._caches[name] = LRUCache(name, size)
            return self._caches[name]

    def stats(self) -> dict[str, CacheStats]:
        with self._lock:
            caches = list(self._caches.values())
        return {cache.name: cache.stats() for cache in caches}

    def total_hits(self) -> int:
        return sum(s.hits for s in self.stats().values())

    def total_misses(self) -> int:
        return sum(s.misses for s in self.stats().values())

    def clear(self) -> None:
        """Invalidate every entry and zero the statistics."""
        with self._lock:
            caches = list(self._caches.values())
        for cache in caches:
            cache.clear()
            cache.reset_stats()

    def report(self) -> str:
        stats = self.stats()
        if not stats:
            return "(no caches active)"
        return "\n".join(stats[name].line() for name in sorted(stats))


#: The process-wide default cache bank used by the ``cached_*`` wrappers.
CACHES = CacheBank()


# ---------------------------------------------------------------------------
# Structural keys
# ---------------------------------------------------------------------------


def alphabet_key(alphabet) -> tuple:
    """A value key for an :class:`repro.words.Alphabet` (symbol order matters)."""
    return tuple(alphabet.symbols)


def formula_key(formula, alphabet) -> tuple:
    """Cache key for anything derived from ``(formula, alphabet)``.

    Formula nodes are immutable and hash structurally, so the pair is a
    complete description of the construction's input.
    """
    return (formula, alphabet_key(alphabet))


def dfa_key(dfa) -> tuple:
    """A structural key for a complete DFA."""
    return (alphabet_key(dfa.alphabet), tuple(dfa._delta), dfa.initial, dfa.accepting)


def automaton_key(automaton) -> tuple:
    """A structural key for a deterministic ω-automaton (table + acceptance)."""
    return (
        alphabet_key(automaton.alphabet),
        automaton._delta,
        automaton.initial,
        automaton.acceptance,
    )


# ---------------------------------------------------------------------------
# Cached wrappers over the expensive constructions
# ---------------------------------------------------------------------------


def cached_formula_to_nba(formula, alphabet, *, bank: CacheBank | None = None):
    """Memoized GPVW translation (``repro.logic.translate.formula_to_nba``)."""
    from repro.logic.translate import formula_to_nba

    cache = (bank or CACHES).cache("formula_nba")
    return cache.get_or_compute(
        formula_key(formula, alphabet), lambda: formula_to_nba(formula, alphabet)
    )


def cached_formula_to_automaton(formula, alphabet=None, *, bank: CacheBank | None = None):
    """Memoized formula → deterministic ω-automaton compilation."""
    from repro.core.classifier import default_alphabet, formula_to_automaton

    alphabet = alphabet or default_alphabet(formula)
    cache = (bank or CACHES).cache("formula_automaton")
    return cache.get_or_compute(
        formula_key(formula, alphabet), lambda: formula_to_automaton(formula, alphabet)
    )


def cached_classify_formula(formula, alphabet=None, *, bank: CacheBank | None = None):
    """Memoized full classification, sharing the automaton cache.

    The report is rebuilt from the *cached* automaton, so a classification
    request warms the automaton cache for later monitor/model-check jobs on
    the same formula (and vice versa).
    """
    from repro.core.classes import TemporalClass  # noqa: F401  (report deps)
    from repro.core.classifier import FormulaReport, default_alphabet
    from repro.errors import ClassificationError
    from repro.logic.classes import analyze_syntax
    from repro.omega.classify import classify as classify_automaton
    from repro.omega.classify import obligation_degree, streett_index
    from repro.omega.closure import is_uniform_liveness

    alphabet = alphabet or default_alphabet(formula)
    bank = bank or CACHES
    cache = bank.cache("classification")

    def compute() -> FormulaReport:
        automaton = cached_formula_to_automaton(formula, alphabet, bank=bank)
        verdict = classify_automaton(automaton)
        try:
            uniform = is_uniform_liveness(automaton) if verdict.is_liveness else False
        except ClassificationError:
            uniform = None
        return FormulaReport(
            formula=formula,
            alphabet=alphabet,
            automaton=automaton,
            semantic=verdict,
            syntactic=analyze_syntax(formula),
            streett_index=streett_index(automaton),
            obligation_degree=obligation_degree(automaton),
            is_uniform_liveness=uniform,
        )

    return cache.get_or_compute(formula_key(formula, alphabet), compute)


def cached_minimized(dfa, *, bank: CacheBank | None = None):
    """Memoized DFA minimization (``DFA.minimized``)."""
    cache = (bank or CACHES).cache("dfa_minimal")
    return cache.get_or_compute(dfa_key(dfa), dfa.minimized)


def cached_nonempty_states(automaton, *, bank: CacheBank | None = None):
    """Memoized residual non-emptiness (the monitor's expensive setup)."""
    from repro.omega.emptiness import nonempty_states

    cache = (bank or CACHES).cache("nonempty")
    return cache.get_or_compute(
        automaton_key(automaton), lambda: nonempty_states(automaton)
    )


def cached_omega_language(expression: str, alphabet, *, bank: CacheBank | None = None):
    """Memoized ω-regular expression compilation (reduced automaton)."""
    from repro.omega.omega_regex import omega_language
    from repro.omega.reduce import quotient_reduce

    cache = (bank or CACHES).cache("omega_expression")
    return cache.get_or_compute(
        (expression, alphabet_key(alphabet)),
        lambda: quotient_reduce(omega_language(expression, alphabet)),
    )


def record_cache_metrics(bank: CacheBank | None = None) -> None:
    """Mirror the bank's stats into the global metrics registry."""
    for name, stats in (bank or CACHES).stats().items():
        counter = METRICS.counter(f"cache.{name}.hits")
        counter.inc(stats.hits - counter.value)
        counter = METRICS.counter(f"cache.{name}.misses")
        counter.inc(stats.misses - counter.value)
