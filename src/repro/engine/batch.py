"""The :class:`EvaluationEngine`: batched, deduplicated, parallel evaluation.

A *job* is a small immutable description of one unit of work:

* :class:`ClassifyFormula` — place an LTL+Past formula in the hierarchy;
* :class:`ClassifyOmega` — classify an ω-regular expression;
* :class:`MonitorLasso` — run the three-valued prefix monitor over an
  ultimately-periodic word until the verdict is final (or provably stuck);
* :class:`ModelCheck` — check a fair transition system against a formula.

``EvaluationEngine.run`` takes a batch of jobs, collapses structurally
equal work (two jobs with the same :meth:`Job.key` are evaluated once),
fans the unique jobs out across a ``concurrent.futures`` thread or process
pool — with an automatic serial fallback when pools are unavailable — and
returns one :class:`JobResult` per input job, in input order.  Evaluation
is write-through on the :mod:`repro.engine.cache` bank, so a warm engine
answers repeat batches from memory.

Jobs are pure and results are values, so serial, threaded and process
execution return identical results; the tests assert this.
"""

from __future__ import annotations

import time
from concurrent import futures
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Hashable, Sequence

from repro.engine.cache import CACHES, CacheBank, CacheStats, cached_classify_formula, cached_omega_language
from repro.engine.metrics import METRICS, MetricsRegistry, snapshot_delta, trace
from repro.logic.ast import Formula
from repro.obs.spans import TRACER, SpanContext

EXECUTORS = ("serial", "thread", "process")


def _parse(formula: Formula | str) -> Formula:
    if isinstance(formula, Formula):
        return formula
    from repro.logic import parse_formula

    return parse_formula(formula)


def _alphabet_for(formula: Formula, props: tuple[str, ...] | None):
    from repro.core.classifier import default_alphabet
    from repro.words import Alphabet

    if props:
        return Alphabet.powerset_of_propositions(props)
    return default_alphabet(formula)


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------


class Job:
    """Base class for engine jobs; subclasses are frozen dataclasses."""

    kind = "job"

    def key(self) -> Hashable:
        """The structural deduplication key; equal keys ⇒ identical results."""
        raise NotImplementedError

    def evaluate(self, bank: CacheBank) -> Any:
        raise NotImplementedError


@dataclass(frozen=True)
class ClassifyFormula(Job):
    """Classify one temporal formula (optionally over an explicit universe)."""

    formula: Formula | str
    props: tuple[str, ...] | None = None

    kind = "classify-formula"

    def key(self) -> Hashable:
        return (self.kind, _parse(self.formula), self.props)

    def evaluate(self, bank: CacheBank):
        formula = _parse(self.formula)
        return cached_classify_formula(formula, _alphabet_for(formula, self.props), bank=bank)


@dataclass(frozen=True)
class ClassifyOmega(Job):
    """Classify an ω-regular expression over a letter alphabet."""

    expression: str
    letters: str = "ab"

    kind = "classify-omega"

    def key(self) -> Hashable:
        return (self.kind, self.expression, self.letters)

    def evaluate(self, bank: CacheBank):
        from repro.omega.classify import classify as classify_automaton
        from repro.words import Alphabet

        alphabet = Alphabet.from_letters(self.letters)
        automaton = cached_omega_language(self.expression, alphabet, bank=bank)
        return classify_automaton(automaton)


@dataclass(frozen=True)
class MonitorLasso(Job):
    """Monitor ``stem · loop^ω`` against a formula until the verdict settles.

    The monitor is fed the stem, then copies of the loop until either the
    verdict leaves PENDING (it is then final) or the automaton state at the
    loop boundary repeats (the verdict is then PENDING forever).
    """

    formula: Formula | str
    stem: tuple = ()
    loop: tuple = ()
    props: tuple[str, ...] | None = None

    kind = "monitor-lasso"

    def key(self) -> Hashable:
        return (self.kind, _parse(self.formula), tuple(self.stem), tuple(self.loop), self.props)

    def evaluate(self, bank: CacheBank):
        from repro.core.monitor import PrefixMonitor, Verdict3
        from repro.engine.cache import cached_formula_to_automaton

        if not self.loop:
            raise ValueError("a lasso job needs a non-empty loop")
        formula = _parse(self.formula)
        automaton = cached_formula_to_automaton(
            formula, _alphabet_for(formula, self.props), bank=bank
        )
        monitor = PrefixMonitor(automaton)
        verdict = monitor.feed(self.stem)
        seen_states = {monitor.state}
        while verdict is Verdict3.PENDING:
            verdict = monitor.feed(self.loop)
            if verdict is not Verdict3.PENDING or monitor.state in seen_states:
                break
            seen_states.add(monitor.state)
        return MonitorOutcome(verdict=verdict, position=monitor.position)


@dataclass(frozen=True)
class MonitorOutcome:
    """Result of a :class:`MonitorLasso` job."""

    verdict: Any
    position: int


@dataclass(frozen=True)
class ModelCheck(Job):
    """Model-check a fair transition system against a formula.

    Systems hash by identity, so two jobs dedupe only when they share the
    *same* system object — structural system equality is out of scope.
    """

    system: Any
    formula: Formula | str

    kind = "model-check"

    def key(self) -> Hashable:
        return (self.kind, self.system, _parse(self.formula))

    def evaluate(self, bank: CacheBank):
        from repro.systems import check

        return check(self.system, _parse(self.formula))


# ---------------------------------------------------------------------------
# Results and reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobResult:
    """One job's outcome: the value or the error, plus provenance."""

    index: int
    job: Job
    ok: bool
    value: Any = None
    error: str | None = None
    seconds: float = 0.0
    deduped: bool = False

    def unwrap(self) -> Any:
        if not self.ok:
            raise RuntimeError(f"job {self.index} ({self.job.kind}) failed: {self.error}")
        return self.value


@dataclass
class BatchReport:
    """Everything ``EvaluationEngine.run`` knows about one batch."""

    results: list[JobResult]
    executor: str
    requested_executor: str
    wall_seconds: float
    unique_jobs: int
    cache_stats: dict[str, CacheStats] = field(default_factory=dict)

    @property
    def total_jobs(self) -> int:
        return len(self.results)

    @property
    def deduplicated(self) -> int:
        return self.total_jobs - self.unique_jobs

    @property
    def failures(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]

    def values(self) -> list[Any]:
        return [r.unwrap() for r in self.results]

    def class_counts(self) -> dict[str, int]:
        """Per-hierarchy-class counts over the classification results."""
        counts: dict[str, int] = {}
        for result in self.results:
            if not result.ok:
                counts["<error>"] = counts.get("<error>", 0) + 1
                continue
            value = result.value
            canonical = getattr(value, "canonical_class", None) or getattr(
                value, "canonical", None
            )
            if canonical is not None:
                name = canonical.value
                counts[name] = counts.get(name, 0) + 1
        return counts

    def summary(self) -> str:
        lines = [
            f"jobs:        {self.total_jobs} ({self.unique_jobs} unique,"
            f" {self.deduplicated} deduplicated)",
            f"executor:    {self.executor}"
            + (f" (requested {self.requested_executor})" if self.executor != self.requested_executor else ""),
            f"wall time:   {self.wall_seconds*1e3:.1f}ms"
            + (
                f" ({self.wall_seconds*1e3/self.total_jobs:.2f}ms/job)"
                if self.total_jobs
                else ""
            ),
        ]
        counts = self.class_counts()
        if counts:
            lines.append("classes:")
            for name in sorted(counts):
                lines.append(f"  {name:14s} {counts[name]}")
        if self.failures:
            lines.append(f"failures:    {len(self.failures)}")
            for result in self.failures[:5]:
                lines.append(f"  job {result.index}: {result.error}")
        if self.cache_stats:
            lines.append("caches:")
            for name in sorted(self.cache_stats):
                lines.append(f"  {self.cache_stats[name].line()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


def _evaluate_unique(job: Job) -> tuple[bool, Any, str | None, float]:
    """Top-level worker (picklable for process pools); uses the process-local
    global cache bank, which is what a worker process has."""
    start = time.perf_counter()
    try:
        value = job.evaluate(CACHES)
        return True, value, None, time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 — batch jobs must not kill the batch
        return False, None, f"{type(exc).__name__}: {exc}", time.perf_counter() - start


def _evaluate_unique_observed(
    job: Job, parent: tuple[str, str] | None
) -> tuple[bool, Any, str | None, float, list[dict] | None, dict | None]:
    """Process-pool worker with observability: evaluate one job under the
    worker-local tracer and return ``(outcome…, span payloads, metrics delta)``.

    The parent process cannot see a worker's contextvars or registry, so the
    worker ships both back as plain data: its spans (rooted at ``None``, to
    be re-stitched under ``parent`` via :meth:`SpanTracer.adopt`) and the
    per-job metrics snapshot delta.  Worker processes are reused within a
    pool, hence the before/after slicing — each call returns only its own
    spans and its own registry contribution.
    """
    if parent is None:
        ok, value, error, seconds = _evaluate_unique(job)
        return ok, value, error, seconds, None, None
    if not TRACER.enabled:
        TRACER.enable()
    mark = len(TRACER)
    before = METRICS.snapshot()
    with TRACER.span("engine.job", kind=job.kind, executor="process") as span:
        ok, value, error, seconds = _evaluate_unique(job)
        if not ok:
            span.set_attribute("error", error)
    payloads = TRACER.export_payloads(since=mark)
    return ok, value, error, seconds, payloads, snapshot_delta(before, METRICS.snapshot())


class EvaluationEngine:
    """Batched, deduplicated, optionally parallel property evaluation.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"thread"`` or ``"process"``.  Threads share
        the cache bank (the constructions release the GIL rarely, but cache
        hits and I/O overlap); processes isolate it.  If a pool cannot be
        created or dies, the engine transparently falls back to serial and
        records the fact in the batch report.
    max_workers:
        Pool size; ``None`` lets ``concurrent.futures`` pick.
    dedupe:
        Collapse structurally equal jobs before evaluation (default on).
    """

    def __init__(
        self,
        *,
        executor: str = "serial",
        max_workers: int | None = None,
        dedupe: bool = True,
        bank: CacheBank | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; pick one of {EXECUTORS}")
        self.executor = executor
        self.max_workers = max_workers
        self.dedupe = dedupe
        self.bank = bank or CACHES
        self.metrics = metrics or METRICS

    # ------------------------------------------------------------------ run

    def run(self, jobs: Sequence[Job]) -> BatchReport:
        """Evaluate a batch; one result per job, in input order."""
        with TRACER.span("engine.batch", executor=self.executor, jobs=len(jobs)) as batch_span:
            return self._run(jobs, batch_span)

    def _run(self, jobs: Sequence[Job], batch_span) -> BatchReport:
        start = time.perf_counter()
        jobs = list(jobs)

        # Deduplicate structurally equal work.  Unkeyable jobs (e.g. a parse
        # error inside key()) stay unique and surface their error on evaluate.
        unique_order: list[Job] = []
        position_of: dict[Hashable, int] = {}
        job_positions: list[int] = []
        for job in jobs:
            try:
                key = job.key() if self.dedupe else None
            except Exception:  # noqa: BLE001
                key = None
            if key is not None and key in position_of:
                job_positions.append(position_of[key])
                continue
            if key is not None:
                position_of[key] = len(unique_order)
            job_positions.append(len(unique_order))
            unique_order.append(job)

        executor_used, outcomes = self._evaluate(unique_order)

        results: list[JobResult] = []
        first_owner: set[int] = set()
        for index, position in enumerate(job_positions):
            ok, value, error, seconds = outcomes[position]
            deduped = position in first_owner
            first_owner.add(position)
            results.append(
                JobResult(
                    index=index,
                    job=jobs[index],
                    ok=ok,
                    value=value,
                    error=error,
                    seconds=seconds,
                    deduped=deduped,
                )
            )

        wall = time.perf_counter() - start
        batch_span.set_attribute("unique", len(unique_order))
        batch_span.set_attribute("executor_used", executor_used)
        self.metrics.timer("engine.batch").observe(wall)
        self.metrics.counter("engine.jobs").inc(len(jobs))
        self.metrics.counter("engine.jobs_deduplicated").inc(len(jobs) - len(unique_order))
        trace(
            "engine.batch",
            jobs=len(jobs),
            unique=len(unique_order),
            executor=executor_used,
            seconds=wall,
        )
        return BatchReport(
            results=results,
            executor=executor_used,
            requested_executor=self.executor,
            wall_seconds=wall,
            unique_jobs=len(unique_order),
            cache_stats=self.bank.stats(),
        )

    # ------------------------------------------------------------ execution

    def _evaluate(self, unique_jobs: list[Job]) -> tuple[str, list[tuple]]:
        # Pool worker threads/processes start with empty contextvars, so the
        # batch span's context is captured here and re-established inside
        # each worker — that is what keeps the span tree hierarchical across
        # the executor boundary.
        parent = TRACER.capture() if TRACER.enabled else None
        if self.executor == "serial" or len(unique_jobs) <= 1:
            return "serial", [self._evaluate_one(job, parent) for job in unique_jobs]
        try:
            if self.executor == "thread":
                with futures.ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                    return "thread", list(
                        pool.map(partial(self._evaluate_one, parent=parent), unique_jobs)
                    )
            parent_tuple = (parent.trace_id, parent.span_id) if parent else None
            with futures.ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                outcomes = list(
                    pool.map(
                        partial(_evaluate_unique_observed, parent=parent_tuple),
                        unique_jobs,
                    )
                )
            return "process", [self._absorb_worker(outcome, parent) for outcome in outcomes]
        except Exception:  # noqa: BLE001 — pool creation/pickling can fail; degrade
            self.metrics.counter("engine.pool_fallbacks").inc()
            return "serial", [self._evaluate_one(job, parent) for job in unique_jobs]

    def _absorb_worker(self, outcome: tuple, parent: SpanContext | None) -> tuple:
        """Re-stitch one process-pool outcome: adopt the worker's spans under
        the batch span and merge its metrics delta into this registry."""
        ok, value, error, seconds, payloads, metrics_delta = outcome
        if payloads:
            TRACER.adopt(payloads, parent)
        if metrics_delta:
            self.metrics.merge_snapshot(metrics_delta)
        return ok, value, error, seconds

    def _evaluate_one(
        self, job: Job, parent: SpanContext | None = None
    ) -> tuple[bool, Any, str | None, float]:
        start = time.perf_counter()
        with TRACER.activate(parent), TRACER.span(
            "engine.job", kind=job.kind, executor=self.executor
        ) as span:
            try:
                value = job.evaluate(self.bank)
                return True, value, None, time.perf_counter() - start
            except Exception as exc:  # noqa: BLE001
                self.metrics.counter("engine.job_errors").inc()
                error = f"{type(exc).__name__}: {exc}"
                span.set_attribute("error", error)
                return False, None, error, time.perf_counter() - start

    # --------------------------------------------------------- conveniences

    def classify_formulas(
        self, formulas: Sequence[Formula | str], props: Sequence[str] | None = None
    ) -> BatchReport:
        props_t = tuple(props) if props else None
        return self.run([ClassifyFormula(formula, props_t) for formula in formulas])

    def classify_expressions(
        self, expressions: Sequence[str], letters: str = "ab"
    ) -> BatchReport:
        return self.run([ClassifyOmega(expression, letters) for expression in expressions])
