"""``repro.engine`` — a cached, batched, parallel property-evaluation engine.

The seed library recomputes every automaton from scratch on each call.
This package adds the serving layer on top of the algorithms:

* :mod:`repro.engine.metrics` — counters/timers/histograms plus the
  ``trace`` hook that instruments the GPVW, Safra, emptiness and
  classifier hot paths;
* :mod:`repro.engine.cache` — size-bounded LRU caches (with statistics
  and explicit invalidation) over the expensive constructions;
* :mod:`repro.engine.batch` — the :class:`EvaluationEngine`: batches of
  jobs, structural deduplication, thread/process fan-out with a serial
  fallback;
* :mod:`repro.engine.session` — spec-file parsing and report rendering
  for ``python -m repro engine`` and ``classify --batch``.

The metrics and cache modules are imported eagerly (the core algorithm
modules depend on them); the batch/session layer — which depends back on
the core — is loaded lazily via module ``__getattr__`` to keep the import
graph acyclic.
"""

from __future__ import annotations

from repro.engine.cache import CACHES, CacheBank, CacheStats, Interner, LRUCache
from repro.engine.metrics import METRICS, MetricsRegistry, TraceEvent, timed, trace

_LAZY = {
    "EvaluationEngine": ("repro.engine.batch", "EvaluationEngine"),
    "BatchReport": ("repro.engine.batch", "BatchReport"),
    "Job": ("repro.engine.batch", "Job"),
    "JobResult": ("repro.engine.batch", "JobResult"),
    "ClassifyFormula": ("repro.engine.batch", "ClassifyFormula"),
    "ClassifyOmega": ("repro.engine.batch", "ClassifyOmega"),
    "MonitorLasso": ("repro.engine.batch", "MonitorLasso"),
    "ModelCheck": ("repro.engine.batch", "ModelCheck"),
    "EngineSession": ("repro.engine.session", "EngineSession"),
    "parse_spec": ("repro.engine.session", "parse_spec"),
}

__all__ = [
    "CACHES",
    "CacheBank",
    "CacheStats",
    "Interner",
    "LRUCache",
    "METRICS",
    "MetricsRegistry",
    "TraceEvent",
    "timed",
    "trace",
    *_LAZY.keys(),
]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module_name, attribute = _LAZY[name]
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
