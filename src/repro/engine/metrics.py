"""Counters, timers, histograms and a trace hook for the hot paths.

The engine layer (``repro.engine``) turns the library into an evaluation
service; this module is its observability substrate.  It is deliberately
dependency-free (stdlib only, no imports from the rest of ``repro``) so the
algorithmic hot paths — GPVW translation, Safra determinization, Streett
emptiness, the classifier — can record what they do without creating import
cycles.

Three primitives, all registered by name in a :class:`MetricsRegistry`:

* :class:`Counter` — a monotone event count;
* :class:`Timer` — accumulated wall-clock with count/total/min/max, used as
  a context manager (``with METRICS.timer("safra.determinize").time(): …``);
* :class:`Histogram` — bucketed value counts (e.g. automaton sizes).

plus :func:`trace`, a structured-event hook: every instrumented call emits
``trace("safra.determinize", nba_states=…, dra_states=…)``.  Events land in
a bounded ring buffer and are fanned out to registered hooks, so tests and
the CLI can observe the pipeline end-to-end without monkeypatching.

Everything is thread-safe; the synchronized sections are tiny so the
overhead on the hot paths is a few microseconds per event.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field


class Counter:
    """A monotone named count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        """Zero the count in place; holders of the instrument keep it."""
        with self._lock:
            self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Timer:
    """Accumulated wall-clock observations for one named operation."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total += seconds
            self.min = min(self.min, seconds)
            self.max = max(self.max, seconds)

    def reset(self) -> None:
        """Zero the accumulators in place; holders keep the instrument."""
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = float("inf")
            self.max = 0.0

    def merge(self, *, count: int, total: float, minimum: float, maximum: float) -> None:
        """Fold another timer's accumulated observations into this one."""
        if count <= 0:
            return
        with self._lock:
            self.count += count
            self.total += total
            self.min = min(self.min, minimum)
            self.max = max(self.max, maximum)

    @contextmanager
    def time(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Timer({self.name}: n={self.count}, total={self.total:.6f}s)"


class Histogram:
    """Bucketed counts of a numeric observable (bucket = inclusive upper bound)."""

    __slots__ = ("name", "bounds", "counts", "overflow", "observations", "total", "_lock")

    DEFAULT_BOUNDS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

    def __init__(self, name: str, bounds: Sequence[float] | None = None) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds if bounds is not None else self.DEFAULT_BOUNDS))
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.observations = 0
        self.total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # Buckets are inclusive upper bounds, so the target is the first
        # bound ≥ value — bisect_left, not a linear scan.
        with self._lock:
            self.observations += 1
            self.total += value
            index = bisect.bisect_left(self.bounds, value)
            if index < len(self.bounds):
                self.counts[index] += 1
            else:
                self.overflow += 1

    def reset(self) -> None:
        """Zero every bucket in place; holders keep the instrument."""
        with self._lock:
            self.counts = [0] * len(self.bounds)
            self.overflow = 0
            self.observations = 0
            self.total = 0.0

    def as_dict(self) -> dict[str, float]:
        """Bucket counts plus the ``sum`` of raw observations (Prometheus
        histograms expose ``_sum`` alongside the cumulative buckets)."""
        with self._lock:
            result: dict[str, float] = {
                f"le_{bound:g}": count for bound, count in zip(self.bounds, self.counts)
            }
            result["overflow"] = self.overflow
            result["sum"] = self.total
            return result

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.observations})"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured event emitted by an instrumented hot path."""

    event: str
    fields: tuple[tuple[str, object], ...]
    timestamp: float

    def get(self, key: str, default: object = None) -> object:
        for name, value in self.fields:
            if name == key:
                return value
        return default


TraceHook = Callable[[TraceEvent], None]


@dataclass
class _TraceBuffer:
    capacity: int = 1024
    events: deque = field(default_factory=deque)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)
        while len(self.events) > self.capacity:
            self.events.popleft()


class MetricsRegistry:
    """A process-local registry of named counters, timers and histograms.

    Instruments are created on first use and live for the life of the
    registry; :meth:`reset` zeroes values but keeps trace hooks installed.
    """

    def __init__(self, *, trace_capacity: int = 1024) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}
        self._trace = _TraceBuffer(capacity=trace_capacity)
        self._hooks: list[TraceHook] = []

    # ---------------------------------------------------------- instruments

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def timer(self, name: str) -> Timer:
        with self._lock:
            if name not in self._timers:
                self._timers[name] = Timer(name)
            return self._timers[name]

    def histogram(self, name: str, bounds: Sequence[float] | None = None) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, bounds)
            return self._histograms[name]

    # --------------------------------------------------------------- traces

    def trace(self, event: str, **fields: object) -> TraceEvent:
        """Record a structured event and fan it out to the installed hooks.

        Hooks are observability plumbing, not part of the instrumented
        computation: a hook that raises must neither propagate into the hot
        path nor starve the hooks after it.  Failures are swallowed and
        counted in ``trace.hook_errors``.
        """
        record = TraceEvent(event, tuple(sorted(fields.items())), time.perf_counter())
        self.counter(f"trace.{event}").inc()
        with self._lock:
            self._trace.append(record)
            hooks = list(self._hooks)
        failures = 0
        for hook in hooks:
            try:
                hook(record)
            except Exception:  # noqa: BLE001 — a hook must never break the hot path
                failures += 1
        if failures:
            self.counter("trace.hook_errors").inc(failures)
        return record

    def add_trace_hook(self, hook: TraceHook) -> None:
        with self._lock:
            self._hooks.append(hook)

    def remove_trace_hook(self, hook: TraceHook) -> None:
        with self._lock:
            if hook in self._hooks:
                self._hooks.remove(hook)

    def recent_events(self, event: str | None = None) -> list[TraceEvent]:
        with self._lock:
            events = list(self._trace.events)
        if event is None:
            return events
        return [e for e in events if e.event == event]

    # ------------------------------------------------------------ reporting

    def snapshot(self) -> dict[str, object]:
        """A plain-data view of every instrument (stable for tests/JSON).

        ``min`` serializes as ``0.0`` for an empty timer — ``inf`` is the
        in-memory sentinel, but JSON has no infinity and an empty timer's
        minimum is morally "nothing observed", not "infinitely slow".
        """
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            timers = {
                name: {
                    "count": t.count,
                    "total": t.total,
                    "mean": t.mean,
                    "min": t.min if t.count else 0.0,
                    "max": t.max,
                }
                for name, t in self._timers.items()
            }
            histograms = {name: h.as_dict() for name, h in self._histograms.items()}
        return {"counters": counters, "timers": timers, "histograms": histograms}

    def reset(self) -> None:
        """Zero every instrument *in place* and drop buffered trace events.

        The instrument objects survive: a hot path that looked up a
        ``Counter``/``Timer`` once and kept the reference must keep
        reporting into this registry after a reset, so the dicts are never
        cleared — doing so would silently disconnect every cached
        reference.
        """
        with self._lock:
            instruments: list = (
                list(self._counters.values())
                + list(self._timers.values())
                + list(self._histograms.values())
            )
            self._trace.events.clear()
        for instrument in instruments:
            instrument.reset()

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        This is how worker-process observability comes home: the engine's
        process executor snapshots the worker-local registry per job and
        merges the deltas here.  Counters and histogram buckets add;
        timers combine count/total and extremes.  Histogram bucket labels
        that do not line up with the local instrument's bounds are counted
        in ``merge.histogram_mismatch`` rather than guessed at.
        """
        for name, value in snapshot.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
        for name, data in snapshot.get("timers", {}).items():
            self.timer(name).merge(
                count=data.get("count", 0),
                total=data.get("total", 0.0),
                minimum=data.get("min", 0.0),
                maximum=data.get("max", 0.0),
            )
        for name, data in snapshot.get("histograms", {}).items():
            bounds = []
            for label in data:
                if label.startswith("le_"):
                    try:
                        bounds.append(float(label[3:]))
                    except ValueError:
                        bounds.append(None)
            histogram = self.histogram(
                name, [b for b in bounds if b is not None] or None
            )
            labels = {f"le_{bound:g}": index for index, bound in enumerate(histogram.bounds)}
            with histogram._lock:
                for label, count in data.items():
                    if not count:
                        continue
                    if label == "sum":
                        histogram.total += count
                    elif label == "overflow":
                        histogram.overflow += count
                        histogram.observations += count
                    elif label in labels:
                        histogram.counts[labels[label]] += count
                        histogram.observations += count
                    else:
                        mismatch = True
                        break
                else:
                    mismatch = False
            if mismatch:
                self.counter("merge.histogram_mismatch").inc()

    def report(self) -> str:
        """A human-readable multi-line summary (the CLI prints this)."""
        snap = self.snapshot()
        lines: list[str] = []
        if snap["timers"]:
            lines.append("timers:")
            for name in sorted(snap["timers"]):
                data = snap["timers"][name]
                lines.append(
                    f"  {name:32s} n={data['count']:<6d} total={data['total']*1e3:9.2f}ms"
                    f" mean={data['mean']*1e3:8.3f}ms"
                )
        counters = {
            name: value
            for name, value in snap["counters"].items()
            if not name.startswith("trace.")
        }
        if counters:
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name:32s} {counters[name]}")
        return "\n".join(lines) if lines else "(no metrics recorded)"


#: The process-wide default registry used by the instrumented hot paths.
METRICS = MetricsRegistry()


def trace(event: str, **fields: object) -> TraceEvent:
    """Shorthand for ``METRICS.trace(event, **fields)``."""
    return METRICS.trace(event, **fields)


@contextmanager
def timed(name: str, registry: MetricsRegistry | None = None):
    """Time a block into ``registry`` (default: the global :data:`METRICS`)."""
    with (registry or METRICS).timer(name).time():
        yield


def observe_sizes(name: str, sizes: Iterable[int], registry: MetricsRegistry | None = None) -> None:
    histogram = (registry or METRICS).histogram(name)
    for size in sizes:
        histogram.observe(size)


def snapshot_delta(before: dict, after: dict) -> dict:
    """``after − before`` for two :meth:`MetricsRegistry.snapshot` values.

    Used on the worker side of a process pool: snapshot around one job and
    ship only that job's contribution, so merging per-job deltas never
    double-counts work from earlier jobs in a reused worker.  Timer ``min``/
    ``max`` cannot be differenced, so the delta keeps ``after``'s extremes —
    an over-approximation that is exact for the common one-job-per-delta
    case and merely widens the envelope otherwise.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    timers = {}
    for name, data in after.get("timers", {}).items():
        prior = before.get("timers", {}).get(name, {})
        count = data["count"] - prior.get("count", 0)
        if count:
            timers[name] = {
                "count": count,
                "total": data["total"] - prior.get("total", 0.0),
                "mean": (data["total"] - prior.get("total", 0.0)) / count,
                "min": data.get("min", 0.0),
                "max": data.get("max", 0.0),
            }
    histograms = {}
    for name, data in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(name, {})
        delta_buckets = {
            label: count - prior.get(label, 0) for label, count in data.items()
        }
        if any(delta_buckets.values()):
            histograms[name] = delta_buckets
    return {"counters": counters, "timers": timers, "histograms": histograms}
