"""Counters, timers, histograms and a trace hook for the hot paths.

The engine layer (``repro.engine``) turns the library into an evaluation
service; this module is its observability substrate.  It is deliberately
dependency-free (stdlib only, no imports from the rest of ``repro``) so the
algorithmic hot paths — GPVW translation, Safra determinization, Streett
emptiness, the classifier — can record what they do without creating import
cycles.

Three primitives, all registered by name in a :class:`MetricsRegistry`:

* :class:`Counter` — a monotone event count;
* :class:`Timer` — accumulated wall-clock with count/total/min/max, used as
  a context manager (``with METRICS.timer("safra.determinize").time(): …``);
* :class:`Histogram` — bucketed value counts (e.g. automaton sizes).

plus :func:`trace`, a structured-event hook: every instrumented call emits
``trace("safra.determinize", nba_states=…, dra_states=…)``.  Events land in
a bounded ring buffer and are fanned out to registered hooks, so tests and
the CLI can observe the pipeline end-to-end without monkeypatching.

Everything is thread-safe; the synchronized sections are tiny so the
overhead on the hot paths is a few microseconds per event.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field


class Counter:
    """A monotone named count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Timer:
    """Accumulated wall-clock observations for one named operation."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total += seconds
            self.min = min(self.min, seconds)
            self.max = max(self.max, seconds)

    @contextmanager
    def time(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Timer({self.name}: n={self.count}, total={self.total:.6f}s)"


class Histogram:
    """Bucketed counts of a numeric observable (bucket = inclusive upper bound)."""

    __slots__ = ("name", "bounds", "counts", "overflow", "observations", "_lock")

    DEFAULT_BOUNDS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

    def __init__(self, name: str, bounds: Sequence[float] | None = None) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds if bounds is not None else self.DEFAULT_BOUNDS))
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.observations = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.observations += 1
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.overflow += 1

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            result = {f"le_{bound:g}": count for bound, count in zip(self.bounds, self.counts)}
            result["overflow"] = self.overflow
            return result

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.observations})"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured event emitted by an instrumented hot path."""

    event: str
    fields: tuple[tuple[str, object], ...]
    timestamp: float

    def get(self, key: str, default: object = None) -> object:
        for name, value in self.fields:
            if name == key:
                return value
        return default


TraceHook = Callable[[TraceEvent], None]


@dataclass
class _TraceBuffer:
    capacity: int = 1024
    events: deque = field(default_factory=deque)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)
        while len(self.events) > self.capacity:
            self.events.popleft()


class MetricsRegistry:
    """A process-local registry of named counters, timers and histograms.

    Instruments are created on first use and live for the life of the
    registry; :meth:`reset` zeroes values but keeps trace hooks installed.
    """

    def __init__(self, *, trace_capacity: int = 1024) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}
        self._trace = _TraceBuffer(capacity=trace_capacity)
        self._hooks: list[TraceHook] = []

    # ---------------------------------------------------------- instruments

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def timer(self, name: str) -> Timer:
        with self._lock:
            if name not in self._timers:
                self._timers[name] = Timer(name)
            return self._timers[name]

    def histogram(self, name: str, bounds: Sequence[float] | None = None) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, bounds)
            return self._histograms[name]

    # --------------------------------------------------------------- traces

    def trace(self, event: str, **fields: object) -> TraceEvent:
        """Record a structured event and fan it out to the installed hooks."""
        record = TraceEvent(event, tuple(sorted(fields.items())), time.perf_counter())
        self.counter(f"trace.{event}").inc()
        with self._lock:
            self._trace.append(record)
            hooks = list(self._hooks)
        for hook in hooks:
            hook(record)
        return record

    def add_trace_hook(self, hook: TraceHook) -> None:
        with self._lock:
            self._hooks.append(hook)

    def remove_trace_hook(self, hook: TraceHook) -> None:
        with self._lock:
            if hook in self._hooks:
                self._hooks.remove(hook)

    def recent_events(self, event: str | None = None) -> list[TraceEvent]:
        with self._lock:
            events = list(self._trace.events)
        if event is None:
            return events
        return [e for e in events if e.event == event]

    # ------------------------------------------------------------ reporting

    def snapshot(self) -> dict[str, object]:
        """A plain-data view of every instrument (stable for tests/JSON)."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            timers = {
                name: {"count": t.count, "total": t.total, "mean": t.mean}
                for name, t in self._timers.items()
            }
            histograms = {name: h.as_dict() for name, h in self._histograms.items()}
        return {"counters": counters, "timers": timers, "histograms": histograms}

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._histograms.clear()
            self._trace.events.clear()

    def report(self) -> str:
        """A human-readable multi-line summary (the CLI prints this)."""
        snap = self.snapshot()
        lines: list[str] = []
        if snap["timers"]:
            lines.append("timers:")
            for name in sorted(snap["timers"]):
                data = snap["timers"][name]
                lines.append(
                    f"  {name:32s} n={data['count']:<6d} total={data['total']*1e3:9.2f}ms"
                    f" mean={data['mean']*1e3:8.3f}ms"
                )
        counters = {
            name: value
            for name, value in snap["counters"].items()
            if not name.startswith("trace.")
        }
        if counters:
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name:32s} {counters[name]}")
        return "\n".join(lines) if lines else "(no metrics recorded)"


#: The process-wide default registry used by the instrumented hot paths.
METRICS = MetricsRegistry()


def trace(event: str, **fields: object) -> TraceEvent:
    """Shorthand for ``METRICS.trace(event, **fields)``."""
    return METRICS.trace(event, **fields)


@contextmanager
def timed(name: str, registry: MetricsRegistry | None = None):
    """Time a block into ``registry`` (default: the global :data:`METRICS`)."""
    with (registry or METRICS).timer(name).time():
        yield


def observe_sizes(name: str, sizes: Iterable[int], registry: MetricsRegistry | None = None) -> None:
    histogram = (registry or METRICS).histogram(name)
    for size in sizes:
        histogram.observe(size)
