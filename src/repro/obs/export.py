"""Exporters: span JSONL, Prometheus text exposition, trees and profiles.

Three consumers, three formats:

* **JSONL** — one JSON object per line; the first line is a ``meta`` record
  carrying the schema tag, every following line one span.  Lines are
  emitted in *deterministic tree order* (parents before children, siblings
  by start time then span id), so identical runs diff cleanly and a
  streaming reader always sees a span's parent first.
  :func:`validate_jsonl_lines` is the schema check the CI ``obs-smoke`` job
  runs against the output.
* **Prometheus text format** — :func:`prometheus_text` renders a
  :class:`~repro.engine.metrics.MetricsRegistry` snapshot as
  ``# TYPE``-annotated exposition lines (counters, timer summaries,
  cumulative histogram buckets), ready for a scrape endpoint or a textfile
  collector.
* **Humans** — :func:`render_span_tree` draws the per-request call tree
  with durations and attributes; :func:`render_top_spans` aggregates spans
  by name into a "where did the time go" profile.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.engine.metrics import MetricsRegistry
from repro.obs.spans import Span

SCHEMA = "repro-obs-spans/1"

#: Required span-line fields and the types the schema check enforces.
_SPAN_FIELDS: dict[str, type | tuple[type, ...]] = {
    "name": str,
    "span_id": str,
    "trace_id": str,
    "start": (int, float),
    "duration": (int, float),
    "status": str,
    "attributes": dict,
}


# ---------------------------------------------------------------------------
# Ordering
# ---------------------------------------------------------------------------


def tree_order(spans: Sequence[Span]) -> list[Span]:
    """Spans in deterministic pre-order: parents first, siblings by
    ``(start, span_id)``; orphans (parent not in the batch) rank as roots."""
    by_id = {span.span_id: span for span in spans}
    children: dict[str | None, list[Span]] = defaultdict(list)
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children[parent].append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s.start, s.span_id))

    ordered: list[Span] = []

    def visit(span: Span) -> None:
        ordered.append(span)
        for child in children.get(span.span_id, ()):
            visit(child)

    for root in children.get(None, ()):
        visit(root)
    return ordered


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def jsonl_lines(spans: Sequence[Span]) -> list[str]:
    """The full JSONL document (meta line + one line per span), unjoined."""
    ordered = tree_order(spans)
    lines = [
        json.dumps(
            {"kind": "meta", "schema": SCHEMA, "spans": len(ordered)},
            sort_keys=True,
        )
    ]
    for span in ordered:
        payload = span.as_payload()
        payload["kind"] = "span"
        lines.append(json.dumps(payload, sort_keys=True))
    return lines


def write_jsonl(spans: Sequence[Span], path: str | Path) -> int:
    """Write the span JSONL to ``path``; returns the number of span lines."""
    lines = jsonl_lines(spans)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines) - 1


def read_jsonl(path: str | Path) -> list[Span]:
    """Load spans back from a JSONL file (skipping the meta line)."""
    spans = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        payload = json.loads(line)
        if payload.get("kind") == "span":
            spans.append(Span.from_payload(payload))
    return spans


def validate_jsonl_lines(lines: Iterable[str]) -> list[str]:
    """Schema-check a span JSONL document; returns human-readable errors.

    An empty list means the document is valid: a correct meta header, every
    span line carrying the required fields with the right types, unique
    span ids, parents defined before their children, scalar attribute
    values and non-negative durations.
    """
    errors: list[str] = []
    seen_ids: set[str] = set()
    span_count = 0
    declared: int | None = None
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: not JSON ({exc})")
            continue
        if number == 1:
            if payload.get("kind") != "meta" or payload.get("schema") != SCHEMA:
                errors.append(
                    f"line 1: expected meta record with schema {SCHEMA!r}, got {payload!r}"
                )
            else:
                declared = payload.get("spans")
            continue
        if payload.get("kind") != "span":
            errors.append(f"line {number}: kind must be 'span', got {payload.get('kind')!r}")
            continue
        span_count += 1
        for fieldname, kinds in _SPAN_FIELDS.items():
            if fieldname not in payload:
                errors.append(f"line {number}: missing field {fieldname!r}")
                continue
            value = payload[fieldname]
            # No span field is legitimately boolean; without this check a
            # bool would satisfy the (int, float) numeric fields.
            if isinstance(value, bool) or not isinstance(value, kinds):
                errors.append(
                    f"line {number}: field {fieldname!r} has type {type(value).__name__}"
                )
        span_id = payload.get("span_id")
        if isinstance(span_id, str):
            if span_id in seen_ids:
                errors.append(f"line {number}: duplicate span_id {span_id!r}")
            seen_ids.add(span_id)
        parent_id = payload.get("parent_id")
        if parent_id is not None and parent_id not in seen_ids:
            errors.append(
                f"line {number}: parent_id {parent_id!r} not defined on an earlier line"
            )
        if isinstance(payload.get("duration"), (int, float)) and payload["duration"] < 0:
            errors.append(f"line {number}: negative duration")
        attributes = payload.get("attributes")
        if isinstance(attributes, dict):
            for key, value in attributes.items():
                if value is not None and not isinstance(value, (bool, int, float, str)):
                    errors.append(
                        f"line {number}: attribute {key!r} is not a JSON scalar"
                    )
    if declared is not None and declared != span_count:
        errors.append(f"meta declares {declared} spans but {span_count} lines follow")
    return errors


def validate_jsonl_file(path: str | Path) -> list[str]:
    return validate_jsonl_lines(
        Path(path).read_text(encoding="utf-8").splitlines()
    )


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _prom_name(name: str) -> str:
    """One registry name → a legal Prometheus metric name (lossy).

    Legal metric-name characters are ``[a-zA-Z0-9_:]``; everything else
    maps to ``_``.  The mapping is many-to-one (``serve.latency-ms`` and
    ``serve.latency_ms`` both clean to the same text), which is why
    :func:`_assign_prom_names` exists — never call this directly when
    rendering a whole snapshot section.
    """
    cleaned = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    return f"repro_{cleaned}"


def _assign_prom_names(names: Iterable[str]) -> dict[str, str]:
    """Collision-free Prometheus names for one snapshot section.

    Names are assigned in sorted order so the output is deterministic: the
    lexicographically first registry name that cleans to a given metric
    name keeps it, and every later collider gets a stable 8-hex-digit
    suffix derived from its *original* name (so the disambiguated name
    never changes between scrapes or depends on which metrics exist).
    """
    import hashlib

    assigned: dict[str, str] = {}
    taken: set[str] = set()
    for name in sorted(names):
        metric = _prom_name(name)
        if metric in taken:
            digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
            metric = f"{metric}_{digest}"
        taken.add(metric)
        assigned[name] = metric
    return assigned


def _escape_label_value(value: object) -> str:
    """Escape one label value per the exposition format: backslash, double
    quote and newline are the only characters that need it."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry snapshot in the Prometheus text exposition format.

    Counters map to ``counter`` samples, timers to a ``summary``-style
    ``_seconds_count``/``_seconds_sum`` pair plus min/max gauges, histograms
    to well-formed histogram families: *cumulative* ``_bucket{le=…}``
    samples ending in the conventional ``+Inf`` bucket, plus ``_sum`` and
    ``_count``.  Registry names that clean to the same metric name are
    disambiguated deterministically (:func:`_assign_prom_names`) and label
    values are escaped, so any registry content yields a parseable page.
    """
    snap = registry.snapshot()
    lines: list[str] = []
    counter_names = _assign_prom_names(snap["counters"])
    for name in sorted(snap["counters"]):
        metric = counter_names[name]
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snap['counters'][name]}")
    timer_names = _assign_prom_names(snap["timers"])
    for name in sorted(snap["timers"]):
        data = snap["timers"][name]
        metric = timer_names[name] + "_seconds"
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {data['count']}")
        lines.append(f"{metric}_sum {data['total']:.9f}")
        lines.append(f"# TYPE {metric}_min gauge")
        lines.append(f"{metric}_min {data['min']:.9f}")
        lines.append(f"# TYPE {metric}_max gauge")
        lines.append(f"{metric}_max {data['max']:.9f}")
    histogram_names = _assign_prom_names(snap["histograms"])
    for name in sorted(snap["histograms"]):
        data = snap["histograms"][name]
        metric = histogram_names[name]
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for label, count in data.items():
            if not label.startswith("le_"):
                continue
            cumulative += count
            bound = _escape_label_value(label[3:])
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += data.get("overflow", 0)
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {data.get('sum', 0.0):.9f}")
        lines.append(f"{metric}_count {cumulative}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Human-readable rendering
# ---------------------------------------------------------------------------


def _attributes_inline(attributes: Mapping[str, Any]) -> str:
    if not attributes:
        return ""
    body = ", ".join(f"{key}={value}" for key, value in sorted(attributes.items()))
    return f"  {{{body}}}"


def render_span_tree(spans: Sequence[Span]) -> str:
    """The per-request call tree, one line per span, durations inline."""
    ordered = tree_order(spans)
    if not ordered:
        return "(no spans recorded)"
    by_id = {span.span_id: span for span in ordered}
    depth: dict[str, int] = {}
    lines = []
    for span in ordered:
        parent = span.parent_id if span.parent_id in by_id else None
        level = 0 if parent is None else depth[parent] + 1
        depth[span.span_id] = level
        marker = "" if level == 0 else "  " * (level - 1) + "└─ "
        flag = " !" if span.status == "error" else ""
        lines.append(
            f"{marker}{span.name}  {span.duration*1e3:.2f}ms{flag}"
            f"{_attributes_inline(span.attributes)}"
        )
    return "\n".join(lines)


def render_top_spans(spans: Sequence[Span], *, limit: int = 10) -> str:
    """Aggregate spans by name: count, total, mean, max — sorted by total."""
    if not spans:
        return "(no spans recorded)"
    totals: dict[str, list[float]] = defaultdict(list)
    for span in spans:
        totals[span.name].append(span.duration)
    rows = sorted(
        ((name, sum(ds), len(ds), max(ds)) for name, ds in totals.items()),
        key=lambda row: -row[1],
    )
    lines = [f"{'span':36s} {'count':>6s} {'total':>10s} {'mean':>9s} {'max':>9s}"]
    for name, total, count, worst in rows[:limit]:
        lines.append(
            f"{name:36s} {count:>6d} {total*1e3:>8.2f}ms {total/count*1e3:>7.3f}ms"
            f" {worst*1e3:>7.3f}ms"
        )
    return "\n".join(lines)
