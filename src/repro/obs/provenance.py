"""Classification provenance: *why* did a property land in its class?

A classification verdict compresses a lot of structure into one word
("recurrence").  Explain mode keeps the evidence attached:

* **the compile route** — which of the four views produced the deciding
  automaton: the Prop 5.3 linguistic testers for κ-normal-form input, the
  single-pair Streett / co-Büchi products for simple reactivity and
  obligation conjunctions, or the general GPVW → Safra pipeline;
* **the deciding view** — whether the verdict is certified syntactically
  (the formula literally *is* a §4 normal form of its canonical class) or
  semantically (the §5.1 decision procedures on the automaton view);
* **the automaton evidence** — acceptance kind, the Streett pairs with
  their recurrent/persistent state sets, reachable size, Wagner's Streett
  index and the obligation degree;
* **a per-class reason** — for each of the six classes, the §5.1 condition
  that witnessed membership or its failure (closure equivalence for
  safety, Wagner's cycle conditions for recurrence/persistence, …).

``classify --explain`` renders this as the "why" report; the explanation
object itself is plain data for programmatic use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.classes import TemporalClass
from repro.logic.ast import And, Formula

#: Stable route identifiers (also used as span attributes by the CLI).
ROUTE_LINGUISTIC = "linguistic-tester"
ROUTE_STREETT_PRODUCT = "streett-pair-product"
ROUTE_COBUCHI_PRODUCT = "cobuchi-product"
ROUTE_SAFRA = "gpvw-safra"
ROUTE_OMEGA_REGEX = "omega-regex"


def compile_route(formula: Formula) -> tuple[str, str]:
    """Replay ``formula_to_automaton``'s dispatch: ``(route id, detail)``.

    The dispatch predicates are pure syntax checks, so re-deriving the
    route here is exact — no runtime recording needed.
    """
    from repro.logic.classes import (
        is_guarantee_formula,
        is_persistence_formula,
        is_recurrence_formula,
        is_safety_formula,
        is_simple_obligation_formula,
        is_simple_reactivity_formula,
    )

    if is_safety_formula(formula):
        return ROUTE_LINGUISTIC, "safety normal form □p → A(esat(p)) tester (Prop 5.3)"
    if is_guarantee_formula(formula):
        return ROUTE_LINGUISTIC, "guarantee normal form ◇p → E(esat(p)) tester (Prop 5.3)"
    if is_recurrence_formula(formula):
        return ROUTE_LINGUISTIC, "recurrence normal form □◇p → R(esat(p)) tester (Prop 5.3)"
    if is_persistence_formula(formula):
        return ROUTE_LINGUISTIC, "persistence normal form ◇□p → P(esat(p)) tester (Prop 5.3)"
    conjuncts = formula.operands if isinstance(formula, And) else (formula,)
    if all(is_simple_reactivity_formula(c) for c in conjuncts):
        return (
            ROUTE_STREETT_PRODUCT,
            f"{len(conjuncts)} simple reactivity conjunct(s) → one Streett pair each"
            " on tester products",
        )
    if all(is_simple_obligation_formula(c) for c in conjuncts):
        return (
            ROUTE_COBUCHI_PRODUCT,
            f"{len(conjuncts)} simple obligation conjunct(s) → sticky-bit co-Büchi"
            " products",
        )
    return ROUTE_SAFRA, "general pipeline: GPVW tableau → NBA → Safra → deterministic Rabin"


# ---------------------------------------------------------------------------
# Per-class reasons on the automaton view (§5.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ClassReason:
    """One class's membership verdict with the §5.1 condition that decided it."""

    temporal_class: TemporalClass
    member: bool
    reason: str


def class_reasons(automaton) -> list[ClassReason]:
    """Run the §5.1 decision procedures and say what each one saw."""
    from repro.omega.classify import (
        is_guarantee,
        is_persistence,
        is_recurrence,
        is_safety,
        streett_index,
    )

    safety = is_safety(automaton)
    guarantee = is_guarantee(automaton)
    recurrence = is_recurrence(automaton)
    persistence = is_persistence(automaton)
    index = streett_index(automaton)
    reasons = [
        ClassReason(
            TemporalClass.SAFETY,
            safety,
            "Π = cl(Π): the automaton is equivalent to its safety closure"
            if safety
            else "Π ≠ cl(Π): the safety closure accepts a word the property rejects",
        ),
        ClassReason(
            TemporalClass.GUARANTEE,
            guarantee,
            "the complement is closed, so the property is open (Σ₁)"
            if guarantee
            else "the complement is not closed, so the property is not open",
        ),
        ClassReason(
            TemporalClass.OBLIGATION,
            recurrence and persistence,
            "member of both recurrence and persistence (obligation = Π₂ ∩ Σ₂)"
            if recurrence and persistence
            else "missing from "
            + (
                "recurrence and persistence"
                if not recurrence and not persistence
                else ("recurrence" if not recurrence else "persistence")
            )
            + ", so not an obligation",
        ),
        ClassReason(
            TemporalClass.RECURRENCE,
            recurrence,
            "Wagner: no accepting cycle sits inside a rejecting super-cycle (G_δ)"
            if recurrence
            else "Wagner violation: an accepting cycle sits inside a rejecting"
            " super-cycle, so the property is not G_δ",
        ),
        ClassReason(
            TemporalClass.PERSISTENCE,
            persistence,
            "Wagner (dual): no rejecting cycle sits inside an accepting super-cycle (F_σ)"
            if persistence
            else "Wagner violation (dual): a rejecting cycle sits inside an accepting"
            " super-cycle, so the property is not F_σ",
        ),
        ClassReason(
            TemporalClass.REACTIVITY,
            True,
            f"every ω-regular property is reactivity; Streett index {index}"
            f" (needs ≥{max(index, 1)} pair(s))",
        ),
    ]
    return reasons


def automaton_evidence(automaton) -> dict[str, Any]:
    """The quantitative evidence attached to a verdict: sizes and pair
    structure (Boker et al.'s point — keep the numbers with the verdict)."""
    acceptance = automaton.acceptance
    pairs = []
    for pair in acceptance.pairs:
        pairs.append(
            {
                "recurrent": sorted(pair.left),
                "persistent": sorted(pair.right),
            }
        )
    return {
        "states": automaton.num_states,
        "reachable": len(automaton.reachable),
        "alphabet": len(automaton.alphabet),
        "acceptance": acceptance.kind.name.lower(),
        "pairs": pairs,
    }


# ---------------------------------------------------------------------------
# The explanation object
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Explanation:
    """Everything explain mode knows about one classified property."""

    subject: str
    canonical: TemporalClass
    deciding_view: str
    route: str
    route_detail: str
    reasons: tuple[ClassReason, ...]
    evidence: dict[str, Any]
    normal_form: TemporalClass | None = None
    fragment_class: TemporalClass | None = None
    streett_index: int | None = None
    obligation_degree: int | None = None
    is_liveness: bool | None = None

    def render(self) -> str:
        lines = [
            f"subject:        {self.subject}",
            f"class:          {self.canonical.value}"
            f" ({self.canonical.borel_name}, {self.canonical.topological_name})",
            f"deciding view:  {self.deciding_view}",
            f"compile route:  {self.route} — {self.route_detail}",
        ]
        if self.normal_form is not None:
            lines.append(
                f"normal form:    {self.normal_form.value}"
                f" (shape {self.normal_form.formula_shape})"
            )
        elif self.fragment_class is not None:
            lines.append(
                f"normal form:    none (syntactic fragment: {self.fragment_class.value})"
            )
        if self.is_liveness is not None:
            lines.append(f"liveness:       {self.is_liveness}")
        evidence = self.evidence
        lines.append(
            f"automaton:      {evidence['states']} states"
            f" ({evidence['reachable']} reachable), {evidence['acceptance']} acceptance,"
            f" {len(evidence['pairs'])} pair(s)"
        )
        for index, pair in enumerate(evidence["pairs"]):
            recurrent, persistent = pair["recurrent"], pair["persistent"]
            lines.append(
                f"  pair {index}:       recurrent {_set_text(recurrent)},"
                f" persistent {_set_text(persistent)}"
            )
        if self.streett_index is not None:
            lines.append(f"streett index:  {self.streett_index}")
        if self.obligation_degree is not None:
            lines.append(f"obl. degree:    {self.obligation_degree}")
        lines.append("membership:")
        for reason in self.reasons:
            mark = "∈" if reason.member else "∉"
            lines.append(f"  {mark} {reason.temporal_class.value:12s} {reason.reason}")
        return "\n".join(lines)


def _set_text(states: list[int], *, limit: int = 12) -> str:
    if not states:
        return "∅"
    if len(states) <= limit:
        return "{" + ", ".join(map(str, states)) + "}"
    head = ", ".join(map(str, states[:limit]))
    return f"{{{head}, … {len(states)} states}}"


def explain_formula(formula, alphabet=None, *, bank=None) -> Explanation:
    """Explain one formula's verdict (memoized through the engine cache)."""
    from repro.engine.cache import cached_classify_formula
    from repro.logic import parse_formula

    if isinstance(formula, str):
        formula = parse_formula(formula)
    report = cached_classify_formula(formula, alphabet, bank=bank)
    route, detail = compile_route(formula)
    canonical = report.canonical_class
    syntactic = report.syntactic
    if syntactic.normal_form is not None and syntactic.normal_form is canonical:
        deciding = (
            f"formula view: the formula is literally the {canonical.value}"
            " normal form (§4), certified syntactically"
        )
    else:
        deciding = (
            "automaton view: §5.1 semantic decision procedures on the"
            " deterministic automaton"
        )
    return Explanation(
        subject=repr(report.formula),
        canonical=canonical,
        deciding_view=deciding,
        route=route,
        route_detail=detail,
        reasons=tuple(class_reasons(report.automaton)),
        evidence=automaton_evidence(report.automaton),
        normal_form=syntactic.normal_form,
        fragment_class=syntactic.fragment_class,
        streett_index=report.streett_index,
        obligation_degree=report.obligation_degree,
        is_liveness=report.is_liveness,
    )


def explain_expression(expression: str, letters: str = "ab", *, bank=None) -> Explanation:
    """Explain an ω-regular expression's verdict (automaton view only)."""
    from repro.engine.cache import cached_omega_language
    from repro.omega.classify import classify as classify_automaton
    from repro.omega.classify import obligation_degree, streett_index
    from repro.omega.closure import is_liveness as liveness_of
    from repro.words import Alphabet

    automaton = cached_omega_language(
        expression, Alphabet.from_letters(letters), bank=bank
    )
    verdict = classify_automaton(automaton)
    return Explanation(
        subject=f"omega {letters}: {expression}",
        canonical=verdict.canonical,
        deciding_view="automaton view: §5.1 semantic decision procedures"
        " (an expression has no formula-normal-form certificate)",
        route=ROUTE_OMEGA_REGEX,
        route_detail="ω-regular expression → Büchi construction → determinization",
        reasons=tuple(class_reasons(automaton)),
        evidence=automaton_evidence(automaton),
        streett_index=streett_index(automaton),
        obligation_degree=obligation_degree(automaton),
        is_liveness=liveness_of(automaton),
    )
