"""Progress heartbeats: is the long-running job alive, and when will it end.

A census over a 100k-formula corpus or a fleet stepping a million streams
gives no sign of life between start and finish.  A :class:`Heartbeat` is
the minimal fix: the worker calls :meth:`Heartbeat.advance` as rows
complete, and anyone — the telemetry sidecar's ``/progress`` route, a
``stats --watch`` dashboard, a test — reads a consistent snapshot with
throughput (rows/s over the whole run), ETA (from the remaining count at
the current rate) and worker liveness.

Heartbeats live in a process-wide :data:`HEARTBEATS` registry keyed by
name, so publishing is one import away from any layer without plumbing an
object through every call signature.  The :func:`heartbeat` context
manager registers on entry and marks the entry finished (but leaves it
readable) on exit, so a poller that arrives late still sees the final
counts.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator


class Heartbeat:
    """One job's progress: counts in, rates and ETA out (thread-safe).

    ``clock`` is the monotonic time source — injectable so rate/ETA
    arithmetic is testable without real sleeps.
    """

    def __init__(
        self,
        name: str,
        *,
        total: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._total = total
        self._done = 0
        self._errors = 0
        self._workers_alive: int | None = None
        self._status = "running"
        self._clock = clock
        self._started_wall = time.time()
        self._started = clock()
        self._updated = self._started
        self._notes: dict[str, Any] = {}

    # -------------------------------------------------------------- writing

    def advance(self, n: int = 1, *, errors: int = 0) -> None:
        with self._lock:
            self._done += n
            self._errors += errors
            self._updated = self._clock()

    def set_total(self, total: int | None) -> None:
        with self._lock:
            self._total = total

    def set_workers(self, alive: int | None) -> None:
        with self._lock:
            self._workers_alive = alive
            self._updated = self._clock()

    def note(self, key: str, value: Any) -> None:
        """Attach one extra scalar (e.g. the current corpus file)."""
        with self._lock:
            self._notes[key] = value

    def finish(self, status: str = "done") -> None:
        with self._lock:
            self._status = status
            self._updated = self._clock()

    # -------------------------------------------------------------- reading

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            now = self._clock()
            elapsed = max(now - self._started, 1e-9)
            rate = self._done / elapsed
            remaining = (
                self._total - self._done
                if self._total is not None and self._total >= self._done
                else None
            )
            eta_s = (
                remaining / rate if remaining is not None and rate > 0 else None
            )
            return {
                "name": self.name,
                "status": self._status,
                "total": self._total,
                "done": self._done,
                "errors": self._errors,
                "rate_per_s": round(rate, 3),
                "eta_s": round(eta_s, 3) if eta_s is not None else None,
                "elapsed_s": round(elapsed, 3),
                "since_update_s": round(now - self._updated, 3),
                "workers_alive": self._workers_alive,
                "started_wall": self._started_wall,
                **{f"note_{key}": value for key, value in self._notes.items()},
            }


class HeartbeatRegistry:
    """Name → heartbeat, readable as one snapshot (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._beats: dict[str, Heartbeat] = {}

    def register(self, beat: Heartbeat) -> Heartbeat:
        with self._lock:
            self._beats[beat.name] = beat
        return beat

    def get(self, name: str) -> Heartbeat | None:
        with self._lock:
            return self._beats.get(name)

    def remove(self, name: str) -> None:
        with self._lock:
            self._beats.pop(name, None)

    def clear(self) -> None:
        with self._lock:
            self._beats.clear()

    def snapshot(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            beats = list(self._beats.values())
        return {beat.name: beat.as_dict() for beat in beats}


#: The process-wide registry the sidecar's ``/progress`` route serves.
HEARTBEATS = HeartbeatRegistry()


@contextmanager
def heartbeat(
    name: str,
    *,
    total: int | None = None,
    registry: HeartbeatRegistry | None = None,
) -> Iterator[Heartbeat]:
    """Register a heartbeat for a block of work.

    On clean exit the heartbeat is marked ``done``; on exception,
    ``failed``.  Either way it *stays* in the registry so late pollers see
    the final state — callers that want it gone use ``registry.remove``.
    """
    target = registry if registry is not None else HEARTBEATS
    beat = target.register(Heartbeat(name, total=total))
    try:
        yield beat
    except BaseException:
        beat.finish("failed")
        raise
    else:
        beat.finish("done")
