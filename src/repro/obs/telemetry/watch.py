"""The live dashboard behind ``repro stats --watch``.

A poll-and-render loop over the service's stats payload.  The payload can
come from either door — the telemetry sidecar's ``/stats`` route
(:func:`http_stats_fetcher`) or the JSON-lines ``stats`` verb — because
both serve the same dict; the dashboard only looks at the shape.

Rates (req/s) are computed *here*, from the delta between consecutive
counter snapshots, so the server stays stateless about its own derivative
metrics.  Rendering is plain text rebuilt per tick and prefixed with an
ANSI home+clear when ``clear=True``; with ``clear=False`` ticks append,
which is what the tests and non-tty pipes want.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Iterable
from urllib.request import urlopen


def http_stats_fetcher(base_url: str, *, timeout: float = 5.0) -> Callable[[], dict]:
    """A fetcher polling ``<base_url>/stats`` on a telemetry sidecar."""
    url = base_url.rstrip("/") + "/stats"

    def fetch() -> dict:
        with urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))

    return fetch


def _fmt_rate(value: float) -> str:
    return f"{value:,.1f}/s"


def _fmt_pct(value: float | None) -> str:
    return "—" if value is None else f"{value * 100:.1f}%"


def _counters(stats: dict[str, Any]) -> dict[str, int]:
    counters = stats.get("counters")
    return counters if isinstance(counters, dict) else {}


def _responses(counters: dict[str, int]) -> int:
    return int(counters.get("serve.responses_ok", 0)) + int(
        counters.get("serve.responses_error", 0)
    )


def render_dashboard(
    stats: dict[str, Any],
    *,
    previous: dict[str, Any] | None = None,
    elapsed_s: float | None = None,
) -> str:
    """One dashboard frame from one stats payload (plus an optional
    previous payload for rates)."""
    lines: list[str] = []
    health = stats.get("health") or {}
    status = health.get("status", "?")
    version = stats.get("version", health.get("version", "?"))
    uptime = stats.get("uptime_s", health.get("uptime_s"))
    uptime_text = f"{uptime:,.0f}s" if isinstance(uptime, (int, float)) else "—"
    lines.append(
        f"repro serve {version} · status={status} · uptime={uptime_text}"
    )

    counters = _counters(stats)
    total = _responses(counters)
    rate_text = "—"
    if previous is not None and elapsed_s and elapsed_s > 0:
        delta = total - _responses(_counters(previous))
        rate_text = _fmt_rate(max(delta, 0) / elapsed_s)
    inflight = health.get("inflight", "?")
    max_inflight = health.get("max_inflight", "?")
    connections = health.get("connections", "?")
    lines.append(
        f"traffic: {rate_text} · responses={total:,}"
        f" · inflight={inflight}/{max_inflight} · connections={connections}"
    )
    rejected = {
        code: int(counters[name])
        for code in ("overloaded", "quota", "draining")
        if (name := f"serve.rejected.{code}") in counters and counters[name]
    }
    if rejected:
        lines.append(
            "rejected: "
            + " · ".join(f"{code}={count:,}" for code, count in rejected.items())
        )

    latency = stats.get("latency_ms")
    if isinstance(latency, dict) and latency:
        lines.append("latency (ms):")
        lines.append(
            f"  {'verb':10s} {'count':>8s} {'p50':>8s} {'p90':>8s} {'p99':>8s} {'max':>8s}"
        )
        for verb in sorted(latency):
            row = latency[verb]
            lines.append(
                f"  {verb:10s} {row.get('count', 0):>8,d}"
                f" {row.get('p50', 0.0):>8.2f} {row.get('p90', 0.0):>8.2f}"
                f" {row.get('p99', 0.0):>8.2f} {row.get('max', 0.0):>8.2f}"
            )

    caches = stats.get("caches")
    if isinstance(caches, dict) and caches:
        hits = sum(int(entry.get("hits", 0)) for entry in caches.values())
        misses = sum(int(entry.get("misses", 0)) for entry in caches.values())
        lookups = hits + misses
        cache_rate = hits / lookups if lookups else None
        lines.append(
            f"caches: hit-rate={_fmt_pct(cache_rate)}"
            f" · lookups={lookups:,} · banks={len(caches)}"
        )
    store = stats.get("store")
    if isinstance(store, dict):
        lines.append(
            f"store:  hit-rate={_fmt_pct(store.get('hit_rate'))}"
            f" · rows={store.get('rows', 0):,} · writes={store.get('writes', 0):,}"
        )

    telemetry = stats.get("telemetry")
    if isinstance(telemetry, dict):
        recorder = telemetry.get("recorder")
        if isinstance(recorder, dict):
            threshold = recorder.get("slow_threshold_ms")
            threshold_text = (
                f"{threshold:.1f}ms" if isinstance(threshold, (int, float)) else "—"
            )
            lines.append(
                f"flight recorder: {recorder.get('buffered', 0)} buffered"
                f" · {recorder.get('notable', 0)} notable"
                f" · slow>{threshold_text}"
            )
        if telemetry.get("trace"):
            lines.append("tracing: on (wire propagation enabled)")
    return "\n".join(lines)


def render_progress(jobs: dict[str, dict[str, Any]]) -> str:
    """A one-line-per-job rendering of a ``/progress`` snapshot."""
    if not jobs:
        return "(no jobs reporting)"
    lines = []
    for name in sorted(jobs):
        job = jobs[name]
        total = job.get("total")
        done = job.get("done", 0)
        position = f"{done:,}/{total:,}" if isinstance(total, int) else f"{done:,}"
        eta = job.get("eta_s")
        eta_text = f" · eta={eta:,.0f}s" if isinstance(eta, (int, float)) else ""
        workers = job.get("workers_alive")
        workers_text = (
            f" · workers={workers}" if isinstance(workers, int) else ""
        )
        lines.append(
            f"{name}: {job.get('status', '?')} {position}"
            f" · {job.get('rate_per_s', 0.0):,.1f} rows/s{eta_text}{workers_text}"
        )
    return "\n".join(lines)


#: ANSI: cursor home + clear-to-end, the classic watch(1) refresh.
_CLEAR = "\x1b[H\x1b[2J"


def watch(
    fetch: Callable[[], dict[str, Any]],
    *,
    interval: float = 2.0,
    iterations: int | None = None,
    out: Callable[[str], object] = print,
    clear: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll ``fetch`` and render until interrupted (or ``iterations`` ticks).

    Returns the number of successful polls.  A failing poll renders the
    error and keeps going — a draining or restarting server should show as
    such, not kill the dashboard.
    """
    ticks = 0
    successes = 0
    previous: dict[str, Any] | None = None
    previous_at: float | None = None
    while iterations is None or ticks < iterations:
        if ticks:
            sleep(interval)
        ticks += 1
        prefix = _CLEAR if clear else ""
        try:
            stats = fetch()
        except Exception as error:  # noqa: BLE001 — keep polling
            out(f"{prefix}stats unavailable: {type(error).__name__}: {error}")
            continue
        now = time.monotonic()
        elapsed = now - previous_at if previous_at is not None else None
        frame = render_dashboard(stats, previous=previous, elapsed_s=elapsed)
        out(prefix + frame)
        previous, previous_at = stats, now
        successes += 1
    return successes
