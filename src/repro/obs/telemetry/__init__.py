"""The live telemetry plane: operating a running service, not post-mortems.

``repro.obs`` (PR 4) made traces and metrics *exportable*; this package
makes them *operational*.  Four pieces, each usable alone:

* :mod:`~repro.obs.telemetry.recorder` — a flight recorder: a bounded ring
  of recently completed request span-trees, with always-capture for slow
  and errored requests, dumpable as schema-valid JSONL.
* :mod:`~repro.obs.telemetry.sidecar` — a stdlib HTTP sidecar serving
  ``/metrics`` (Prometheus), ``/healthz``, ``/readyz``, ``/spans/recent``,
  ``/stats``, ``/progress`` and ``/recorder/dump`` beside the JSON-lines
  service port.
* :mod:`~repro.obs.telemetry.heartbeat` — progress heartbeats (rows/s,
  ETA, worker liveness) for long-running census and fleet work, published
  through the same registry the sidecar reads.
* :mod:`~repro.obs.telemetry.watch` — the ``repro stats --watch`` terminal
  dashboard polling a sidecar (or the ``stats`` verb) in a refresh loop.

Everything here is stdlib-only, as with the rest of ``repro.obs``.
"""

from repro.obs.telemetry.heartbeat import HEARTBEATS, Heartbeat, HeartbeatRegistry, heartbeat
from repro.obs.telemetry.recorder import FlightRecorder, RecordedRequest, quantile
from repro.obs.telemetry.sidecar import TelemetrySidecar
from repro.obs.telemetry.watch import render_dashboard, watch

__all__ = [
    "FlightRecorder",
    "RecordedRequest",
    "quantile",
    "TelemetrySidecar",
    "Heartbeat",
    "HeartbeatRegistry",
    "HEARTBEATS",
    "heartbeat",
    "render_dashboard",
    "watch",
]
