"""The flight recorder: the last N request traces, and every bad one.

A running server records the span tree of each completed request here.
Two bounded buffers:

* **recent** — a plain ring of the last ``capacity`` requests, whatever
  their outcome.  This is what ``/spans/recent`` serves.
* **notable** — errored requests and slow ones (duration above the rolling
  p99 of recent requests) are *also* kept in their own ring, so a burst of
  healthy traffic cannot evict the one trace you need.

Both rings hold finished :class:`~repro.obs.spans.Span` objects, so a dump
reuses ``repro.obs.export`` verbatim: :meth:`FlightRecorder.dump` writes
the same deterministic JSONL (meta line, tree order, unique span ids) that
``validate_jsonl_lines`` checks in CI.  The server wires dumps to
``SIGUSR1`` and to the sidecar's ``/recorder/dump`` route.

The slow threshold is intentionally *rolling*: a fixed cutoff is wrong for
a service whose latency spans three orders of magnitude between a store
hit and a cold Safra run.  Until ``min_samples`` durations have been seen
the threshold is undefined and only errors count as notable.  The quantile
is refreshed every :data:`RECALC_EVERY` records rather than per record —
``record`` sits on the per-request hot path, and sorting a full 1024-entry
window there costs more than the rest of the capture combined.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Sequence

from repro.obs.spans import Span

#: How many records the cached slow threshold may serve before the rolling
#: quantile is recomputed (amortizes the window sort off the hot path).
RECALC_EVERY = 32


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``values`` by linear interpolation.

    Matches ``statistics.quantiles(..., method="inclusive")`` on interior
    points but works for any single ``q`` in ``[0, 1]`` and for ``len < 2``.
    """
    if not values:
        raise ValueError("quantile of empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass(slots=True)
class RecordedRequest:
    """One completed request: its identity, outcome, and span tree."""

    request_id: Any
    verb: str
    duration_s: float
    status: str  #: "ok" or "error"
    wall_time: float  #: time.time() at completion (for humans; not in spans)
    notable: str | None = None  #: None, "error", or "slow"
    spans: list[Span] = field(default_factory=list)

    def summary(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "verb": self.verb,
            "duration_ms": round(self.duration_s * 1e3, 3),
            "status": self.status,
            "wall_time": self.wall_time,
            "notable": self.notable,
            "spans": len(self.spans),
        }

    def as_dict(self) -> dict[str, Any]:
        payload = self.summary()
        payload["spans"] = [span.as_payload() for span in self.spans]
        return payload


class FlightRecorder:
    """Bounded capture of completed request traces (thread-safe)."""

    def __init__(
        self,
        *,
        capacity: int = 256,
        notable_capacity: int = 64,
        quantile_window: int = 1024,
        min_samples: int = 32,
        slow_quantile: float = 0.99,
    ) -> None:
        if capacity < 1 or notable_capacity < 1:
            raise ValueError("recorder capacities must be >= 1")
        self.min_samples = min_samples
        self.slow_quantile = slow_quantile
        self._lock = threading.Lock()
        self._recent: deque[RecordedRequest] = deque(maxlen=capacity)
        self._notable: deque[RecordedRequest] = deque(maxlen=notable_capacity)
        self._durations: deque[float] = deque(maxlen=quantile_window)
        self._recorded = 0
        self._notable_count = 0
        self._threshold: float | None = None
        self._since_recalc = RECALC_EVERY  # force a compute on first use

    # ------------------------------------------------------------- recording

    def _threshold_locked(self) -> float | None:
        """The cached slow cutoff, refreshed every ``RECALC_EVERY`` records.

        Caller holds ``self._lock``.
        """
        if len(self._durations) < self.min_samples:
            return None
        if self._threshold is None or self._since_recalc >= RECALC_EVERY:
            self._threshold = quantile(list(self._durations), self.slow_quantile)
            self._since_recalc = 0
        return self._threshold

    def slow_threshold(self) -> float | None:
        """The current "slow" cutoff in seconds, or ``None`` while warming up."""
        with self._lock:
            return self._threshold_locked()

    def record(
        self,
        *,
        request_id: Any,
        verb: str,
        duration_s: float,
        spans: Sequence[Span] = (),
        error: bool = False,
    ) -> RecordedRequest:
        """Capture one completed request; returns the recorded entry.

        The slow judgement uses the threshold *before* this request's
        duration joins the window, so a lone slow request in a quiet
        stretch is still flagged.
        """
        entry = RecordedRequest(
            request_id=request_id,
            verb=verb,
            duration_s=duration_s,
            status="error" if error else "ok",
            wall_time=time.time(),
            spans=list(spans),
        )
        with self._lock:
            threshold = self._threshold_locked()
            if error:
                entry.notable = "error"
            elif threshold is not None and duration_s > threshold:
                entry.notable = "slow"
            self._recent.append(entry)
            self._durations.append(duration_s)
            self._since_recalc += 1
            self._recorded += 1
            if entry.notable is not None:
                self._notable.append(entry)
                self._notable_count += 1
        return entry

    # --------------------------------------------------------------- reading

    def recent(self, n: int | None = None) -> list[RecordedRequest]:
        """The last ``n`` requests (all buffered ones if ``None``), oldest first."""
        with self._lock:
            entries = list(self._recent)
        return entries if n is None else entries[-n:]

    def notable(self, n: int | None = None) -> list[RecordedRequest]:
        with self._lock:
            entries = list(self._notable)
        return entries if n is None else entries[-n:]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            buffered = len(self._recent)
            notable_buffered = len(self._notable)
            recorded = self._recorded
            notable_count = self._notable_count
        threshold = self.slow_threshold()
        return {
            "recorded": recorded,
            "buffered": buffered,
            "notable": notable_count,
            "notable_buffered": notable_buffered,
            "slow_threshold_ms": (
                round(threshold * 1e3, 3) if threshold is not None else None
            ),
        }

    # --------------------------------------------------------------- dumping

    def _dump_spans(self) -> list[Span]:
        """Every buffered span, deduplicated (an entry can sit in both rings).

        A request root's parent may live outside the recorder entirely — it
        is the *client's* wire-propagated span.  The dump detaches those
        cross-boundary parents so the document stays self-contained (the
        schema requires parents to be defined on an earlier line).
        """
        seen: set[str] = set()
        spans: list[Span] = []
        with self._lock:
            entries = list(self._recent) + list(self._notable)
        for entry in entries:
            for span in entry.spans:
                if span.span_id in seen:
                    continue
                seen.add(span.span_id)
                spans.append(span)
        return [
            replace(span, parent_id=None)
            if span.parent_id is not None and span.parent_id not in seen
            else span
            for span in spans
        ]

    def dump_lines(self) -> list[str]:
        """The buffered traces as a schema-valid JSONL document (see
        ``repro.obs.export.validate_jsonl_lines``)."""
        from repro.obs.export import jsonl_lines

        return jsonl_lines(self._dump_spans())

    def dump(self, path: str | Path) -> int:
        """Write the JSONL document to ``path``; returns the span count."""
        lines = self.dump_lines()
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
        return len(lines) - 1
