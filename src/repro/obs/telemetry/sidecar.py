"""The HTTP telemetry sidecar: scrape, probe, and inspect a live process.

The JSON-lines service port is for clients; this port is for operators.
A :class:`TelemetrySidecar` is a stdlib ``ThreadingHTTPServer`` on its own
daemon thread, wired to whatever the host process gives it:

============== ================================================ ===========
route          body                                             content
============== ================================================ ===========
``/metrics``   Prometheus text (``obs.export.prometheus_text``) text/plain
``/healthz``   liveness: 200 while up, 503 once draining        JSON
``/readyz``    readiness: liveness **and** the store probe      JSON
``/spans/recent`` the flight recorder's last N request traces   JSON
``/recorder/dump`` full recorder contents as span JSONL         text/plain
``/stats``     the same payload as the ``stats`` verb           JSON
``/progress``  every registered heartbeat (census/fleet jobs)   JSON
============== ================================================ ===========

Every hook is optional — a process that only wants ``/metrics`` passes a
registry and nothing else; missing hooks answer 404.  Handler exceptions
answer 500 and never unwind the serving thread.  Binding port 0 picks an
ephemeral port, published as :attr:`TelemetrySidecar.port` (the tests and
the ``serve --telemetry-port 0`` path rely on this).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

from repro.engine.metrics import MetricsRegistry
from repro.obs.telemetry.heartbeat import HEARTBEATS, HeartbeatRegistry
from repro.obs.telemetry.recorder import FlightRecorder

#: The content type Prometheus scrapers expect from a text endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class TelemetrySidecar:
    """An HTTP observer of one process (see module docstring)."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: MetricsRegistry | None = None,
        recorder: FlightRecorder | None = None,
        stats_fn: Callable[[], dict[str, Any]] | None = None,
        healthy_fn: Callable[[], tuple[bool, dict[str, Any]]] | None = None,
        ready_fn: Callable[[], tuple[bool, dict[str, Any]]] | None = None,
        heartbeats: HeartbeatRegistry | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.metrics = metrics
        self.recorder = recorder
        self.stats_fn = stats_fn
        self.healthy_fn = healthy_fn
        self.ready_fn = ready_fn
        self.heartbeats = heartbeats if heartbeats is not None else HEARTBEATS
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        if self._httpd is not None:
            return
        sidecar = self

        class Handler(BaseHTTPRequestHandler):
            # Operator traffic; stay silent on stderr.
            def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
                pass

            def do_GET(self) -> None:  # noqa: N802 — http.server contract
                try:
                    sidecar._route(self)
                except BrokenPipeError:
                    pass
                except Exception as error:  # noqa: BLE001 — keep serving
                    try:
                        sidecar._reply_json(
                            self,
                            500,
                            {"error": f"{type(error).__name__}: {error}"},
                        )
                    except Exception:  # noqa: BLE001
                        pass

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> TelemetrySidecar:
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---------------------------------------------------------------- routes

    def _route(self, handler: BaseHTTPRequestHandler) -> None:
        parts = urlsplit(handler.path)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        if path == "/metrics":
            body = prometheus_page(self.metrics)
            self._reply_text(handler, 200, body, content_type=PROMETHEUS_CONTENT_TYPE)
        elif path == "/healthz":
            ok, payload = self._probe(self.healthy_fn)
            self._reply_json(handler, 200 if ok else 503, payload)
        elif path == "/readyz":
            ok, payload = self._probe(self.ready_fn)
            self._reply_json(handler, 200 if ok else 503, payload)
        elif path == "/spans/recent":
            if self.recorder is None:
                self._reply_json(handler, 404, {"error": "no flight recorder"})
                return
            limit = _int_param(query, "n", default=20)
            entries = self.recorder.recent(limit)
            self._reply_json(
                handler,
                200,
                {
                    "requests": [entry.as_dict() for entry in entries],
                    "recorder": self.recorder.stats(),
                },
            )
        elif path == "/recorder/dump":
            if self.recorder is None:
                self._reply_json(handler, 404, {"error": "no flight recorder"})
                return
            lines = self.recorder.dump_lines()
            self._reply_text(handler, 200, "\n".join(lines) + "\n")
        elif path == "/stats":
            if self.stats_fn is None:
                self._reply_json(handler, 404, {"error": "no stats source"})
                return
            self._reply_json(handler, 200, self.stats_fn())
        elif path == "/progress":
            self._reply_json(handler, 200, {"jobs": self.heartbeats.snapshot()})
        else:
            self._reply_json(handler, 404, {"error": f"unknown route {path!r}"})

    @staticmethod
    def _probe(
        fn: Callable[[], tuple[bool, dict[str, Any]]] | None
    ) -> tuple[bool, dict[str, Any]]:
        """Run a health hook; a missing hook means plain liveness (200)."""
        if fn is None:
            return True, {"status": "ok"}
        ok, payload = fn()
        payload = dict(payload)
        payload.setdefault("status", "ok" if ok else "unavailable")
        return ok, payload

    # --------------------------------------------------------------- replies

    @staticmethod
    def _reply_text(
        handler: BaseHTTPRequestHandler,
        code: int,
        body: str,
        *,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        encoded = body.encode("utf-8")
        handler.send_response(code)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(encoded)))
        handler.end_headers()
        handler.wfile.write(encoded)

    @classmethod
    def _reply_json(
        cls, handler: BaseHTTPRequestHandler, code: int, payload: dict[str, Any]
    ) -> None:
        cls._reply_text(
            handler,
            code,
            json.dumps(payload, sort_keys=True),
            content_type="application/json; charset=utf-8",
        )


def prometheus_page(metrics: MetricsRegistry | None) -> str:
    """The ``/metrics`` body for a registry (empty page when none wired)."""
    if metrics is None:
        return ""
    from repro.obs.export import prometheus_text

    return prometheus_text(metrics)


def _int_param(query: dict[str, list[str]], name: str, *, default: int) -> int:
    values = query.get(name)
    if not values:
        return default
    try:
        return max(1, int(values[-1]))
    except ValueError:
        return default
