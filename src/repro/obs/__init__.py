"""``repro.obs`` — hierarchical tracing, exporters and classification provenance.

Three submodules:

* :mod:`repro.obs.spans` — the contextvar-based span tracer (stdlib-only,
  importable from any layer);
* :mod:`repro.obs.export` — JSONL, Prometheus text format, span trees and
  "top spans" profiles;
* :mod:`repro.obs.provenance` — explain-mode: per-verdict compile route,
  deciding view, automaton evidence and §5.1 reasons.

``provenance`` pulls in the classifier stack, so it is loaded lazily here:
low layers (``fastpath.config``, ``engine.cache``) can import
``repro.obs.spans`` without dragging ``repro.core`` into the import graph.
"""

from repro.obs.spans import (
    NOOP_SPAN,
    Span,
    SpanContext,
    SpanTracer,
    TRACER,
    annotate,
    current_span,
    span,
)

_PROVENANCE_NAMES = {
    "ClassReason",
    "Explanation",
    "class_reasons",
    "compile_route",
    "explain_expression",
    "explain_formula",
}

_EXPORT_NAMES = {
    "jsonl_lines",
    "prometheus_text",
    "read_jsonl",
    "render_span_tree",
    "render_top_spans",
    "tree_order",
    "validate_jsonl_file",
    "validate_jsonl_lines",
    "write_jsonl",
}


def __getattr__(name: str):
    if name in _PROVENANCE_NAMES:
        from repro.obs import provenance

        return getattr(provenance, name)
    if name in _EXPORT_NAMES:
        from repro.obs import export

        return getattr(export, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")


__all__ = [
    "NOOP_SPAN",
    "Span",
    "SpanContext",
    "SpanTracer",
    "TRACER",
    "annotate",
    "current_span",
    "span",
    *sorted(_EXPORT_NAMES),
    *sorted(_PROVENANCE_NAMES),
]
