"""Hierarchical spans: who called what, how long it took, and why.

The metrics registry (:mod:`repro.engine.metrics`) answers *how much* — how
many Safra runs, how many emptiness calls, total milliseconds.  Spans answer
*which request*: one classification fans out into GPVW → Safra → emptiness
calls, and a span tree ties each leaf (with its fastpath route and cache
hit/miss attributes) back to the request that caused it.

Design constraints, in order:

1. **Zero cost when off.**  Tracing is disabled by default; every
   instrumented hot path pays one attribute load and one ``if``.  The
   ``<5%`` overhead gate in ``BENCH_obs.json`` holds even with tracing *on*
   because spans wrap operations (a determinization, a batch job), never
   per-state work.
2. **Parents survive executors.**  The active span lives in a
   :class:`contextvars.ContextVar`.  New threads start with an empty
   context, so the engine captures a :class:`SpanContext` before handing
   work to a ``ThreadPoolExecutor`` and re-activates it in the worker
   (:meth:`SpanTracer.activate`).  Process pools cannot share the tracer at
   all: the worker runs under its own process-local tracer and ships its
   finished spans back as plain dicts, which the parent re-stitches under
   the submitting span (:meth:`SpanTracer.adopt`).
3. **Plain data out.**  A finished span serializes to a JSON-safe dict
   (:meth:`Span.as_payload`); ``repro.obs.export`` turns those into JSONL,
   trees and profiles.

This module is stdlib-only (like ``engine.metrics``) so any layer —
``logic``, ``omega``, ``fastpath``, ``engine``, ``qa`` — can instrument
itself without import cycles.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

#: Attribute values are kept JSON-scalar so export never needs a custom encoder.
Scalar = bool | int | float | str | None


def _scalar(value: object) -> Scalar:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass(frozen=True, slots=True)
class SpanContext:
    """The serializable identity of a span: enough to parent children on,
    small enough to cross a process boundary inside a job tuple."""

    trace_id: str
    span_id: str


@dataclass(slots=True)
class Span:
    """One timed operation.  Mutable while open, inert once finished."""

    name: str
    span_id: str
    trace_id: str
    parent_id: str | None
    start: float
    end: float = 0.0
    attributes: dict[str, Scalar] = field(default_factory=dict)
    status: str = "ok"
    error: str | None = None

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = _scalar(value)

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def as_payload(self) -> dict[str, Any]:
        """A JSON-safe flat dict (the JSONL line body)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> Span:
        span = cls(
            name=payload["name"],
            span_id=payload["span_id"],
            trace_id=payload["trace_id"],
            parent_id=payload.get("parent_id"),
            start=float(payload["start"]),
            end=float(payload["start"]) + float(payload["duration"]),
            status=payload.get("status", "ok"),
            error=payload.get("error"),
        )
        span.attributes.update(payload.get("attributes", {}))
        return span

    def __repr__(self) -> str:
        return f"Span({self.name}, {self.duration*1e3:.3f}ms, {self.attributes})"


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> None:
        pass


NOOP_SPAN = _NoopSpan()

#: The active span (or a bare :class:`SpanContext` re-activated from an
#: executor boundary).  One ContextVar for the whole process: tracers are
#: rare (usually just :data:`TRACER`) and context entries are cheap.
_CURRENT: contextvars.ContextVar[Span | SpanContext | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class SpanTracer:
    """A process-local collector of finished spans.

    ``enabled`` gates everything: while ``False`` (the default),
    :meth:`span` returns a shared no-op context manager and the hot paths
    pay only the flag check.
    """

    def __init__(self, *, capacity: int = 100_000) -> None:
        self.enabled = False
        self.capacity = capacity
        self.dropped = 0
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._seen_ids: set[str] = set()
        self._ids = itertools.count(1)
        self._pid = os.getpid()
        self._nonce = f"{self._pid:x}"

    # ----------------------------------------------------------- lifecycle

    def enable(self, *, capacity: int | None = None) -> None:
        """Start recording (clears previously finished spans)."""
        with self._lock:
            self._finished.clear()
            self._seen_ids.clear()
            self.dropped = 0
            if capacity is not None:
                self.capacity = capacity
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._seen_ids.clear()
            self.dropped = 0

    @contextmanager
    def tracing(self) -> Iterator[SpanTracer]:
        """Enable for a block, restoring the previous state on exit."""
        previous = self.enabled
        self.enable()
        try:
            yield self
        finally:
            self.enabled = previous

    # --------------------------------------------------------------- spans

    def _new_id(self) -> str:
        # Forked pool workers inherit the parent's tracer (nonce and counter
        # included); re-keying on the live pid keeps their ids collision-free.
        pid = os.getpid()
        if pid != self._pid:
            self._pid = pid
            self._nonce = f"{pid:x}"
        return f"{self._nonce}-{next(self._ids):x}"

    @contextmanager
    def span(self, name: str, **attributes: object):
        """Open a child span of the current one for the duration of a block.

        Exceptions mark the span ``status="error"`` (and propagate); the
        span is recorded either way.
        """
        if not self.enabled:
            yield NOOP_SPAN
            return
        parent = _CURRENT.get()
        if isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif isinstance(parent, SpanContext):
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = f"t{self._new_id()}", None
        span = Span(
            name=name,
            span_id=self._new_id(),
            trace_id=trace_id,
            parent_id=parent_id,
            start=time.perf_counter(),
        )
        for key, value in attributes.items():
            span.attributes[key] = _scalar(value)
        token = _CURRENT.set(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.end = time.perf_counter()
            _CURRENT.reset(token)
            self._record(span)

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) >= self.capacity:
                self.dropped += 1
            else:
                self._finished.append(span)
                self._seen_ids.add(span.span_id)

    # ---------------------------------------------------------- manual spans
    #
    # The context-manager form above owns the contextvar stack, which suits
    # nested synchronous work.  Request pipelines (the serve layer) need
    # spans that open in one coroutine/thread and close in another, without
    # ever touching the ambient context: ``start_manual``/``finish_manual``
    # for open-ended operations and ``record_span`` for stages whose
    # boundaries were measured retrospectively with ``perf_counter``.

    def start_manual(
        self,
        name: str,
        *,
        parent: Span | SpanContext | None = None,
        start: float | None = None,
        **attributes: object,
    ) -> Span | None:
        """Open a span without activating it; ``None`` while disabled.

        The caller keeps the span and must hand it to :meth:`finish_manual`.
        ``parent=None`` starts a fresh trace (manual spans never consult the
        contextvar — that is the point of them).
        """
        if not self.enabled:
            return None
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = f"t{self._new_id()}", None
        span = Span(
            name=name,
            span_id=self._new_id(),
            trace_id=trace_id,
            parent_id=parent_id,
            start=time.perf_counter() if start is None else start,
        )
        for key, value in attributes.items():
            span.attributes[key] = _scalar(value)
        return span

    def finish_manual(
        self, span: Span | None, *, status: str = "ok", error: str | None = None
    ) -> None:
        """Close and record a span from :meth:`start_manual` (``None`` ok)."""
        if span is None:
            return
        span.end = time.perf_counter()
        span.status = status
        span.error = error
        self._record(span)

    def record_span(
        self,
        name: str,
        *,
        start: float,
        end: float,
        parent: Span | SpanContext | None = None,
        trace_id: str | None = None,
        status: str = "ok",
        error: str | None = None,
        **attributes: object,
    ) -> Span | None:
        """Record an already-measured interval as a span; ``None`` if off.

        This is how the serve layer turns per-stage ``perf_counter`` marks
        into children of a request span after the fact.
        """
        if not self.enabled:
            return None
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else f"t{self._new_id()}"
        span = Span(
            name=name,
            span_id=self._new_id(),
            trace_id=trace_id,
            parent_id=parent.span_id if parent is not None else None,
            start=start,
            end=end,
            status=status,
            error=error,
        )
        for key, value in attributes.items():
            span.attributes[key] = _scalar(value)
        self._record(span)
        return span

    def record_tree(
        self,
        name: str,
        *,
        start: float,
        end: float,
        parent: Span | SpanContext | None = None,
        status: str = "ok",
        error: str | None = None,
        children: Iterable[tuple[str, float, float]] = (),
        attributes: dict[str, object] | None = None,
    ) -> tuple[Span | None, tuple[Span, ...]]:
        """Record a root and its leaf children as one batch; ``(None, ())`` off.

        The per-request fast path of the serve layer: a root plus a handful
        of ``(name, start, end)`` stage children every few hundred
        microseconds.  Recording them one :meth:`record_span` at a time pays
        the pid check, the kwargs plumbing and the buffer lock once per
        span; this method pays each once per *tree*, which is what keeps
        the end-to-end telemetry overhead inside its ``BENCH_obs.json``
        budget.
        """
        if not self.enabled:
            return None, ()
        pid = os.getpid()
        if pid != self._pid:
            self._pid = pid
            self._nonce = f"{pid:x}"
        nonce, ids = self._nonce, self._ids
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = f"t{nonce}-{next(ids):x}", None
        root = Span(
            name=name,
            span_id=f"{nonce}-{next(ids):x}",
            trace_id=trace_id,
            parent_id=parent_id,
            start=start,
            end=end,
            status=status,
            error=error,
        )
        if attributes:
            for key, value in attributes.items():
                root.attributes[key] = _scalar(value)
        kids = tuple(
            Span(
                name=child_name,
                span_id=f"{nonce}-{next(ids):x}",
                trace_id=trace_id,
                parent_id=root.span_id,
                start=child_start,
                end=child_end,
            )
            for child_name, child_start, child_end in children
        )
        with self._lock:
            finished, seen = self._finished, self._seen_ids
            for span in (root, *kids):
                if len(finished) >= self.capacity:
                    self.dropped += 1
                else:
                    finished.append(span)
                    seen.add(span.span_id)
        return root, kids

    def traced(self, name: str, **attributes: object) -> Callable:
        """Decorator form of :meth:`span`."""

        def decorate(func: Callable) -> Callable:
            import functools

            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                with self.span(name, **attributes):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    # --------------------------------------------- executor-boundary plumbing

    def current(self) -> Span | None:
        """The innermost open span of this context, if it is a real span."""
        active = _CURRENT.get()
        return active if isinstance(active, Span) else None

    def capture(self) -> SpanContext | None:
        """The active span's context, for re-activation in another thread."""
        active = _CURRENT.get()
        if isinstance(active, Span):
            return active.context()
        return active

    @contextmanager
    def activate(self, context: SpanContext | None) -> Iterator[None]:
        """Make ``context`` the parent for spans opened in this block.

        Used on the far side of a thread-pool boundary, where the worker
        thread's context is empty.  ``None`` is a no-op, so call sites can
        pass ``tracer.capture()`` through unconditionally.
        """
        if context is None:
            yield
            return
        token = _CURRENT.set(context)
        try:
            yield
        finally:
            _CURRENT.reset(token)

    def adopt(
        self, payloads: Iterable[dict[str, Any]], parent: SpanContext | None
    ) -> list[Span]:
        """Re-stitch spans shipped back from a worker process.

        Worker-side root spans (``parent_id is None``) become children of
        ``parent``, and every adopted span joins the parent's trace so the
        request renders as one tree.  Span ids carry the worker's pid nonce,
        so they cannot collide with locally issued ids.  A payload whose
        span id was already recorded here is skipped: when client and server
        share one process (tests, the telemetry smoke) the server records
        its spans directly *and* ships them over the wire, and adopting the
        echo must not duplicate them.
        """
        adopted = []
        with self._lock:
            seen = set(self._seen_ids)
        for payload in payloads:
            span = Span.from_payload(payload)
            if span.span_id in seen:
                continue
            if parent is not None:
                if span.parent_id is None:
                    span.parent_id = parent.span_id
                span.trace_id = parent.trace_id
            adopted.append(span)
            self._record(span)
        return adopted

    # ------------------------------------------------------------ reporting

    def finished(self) -> list[Span]:
        """All recorded spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def export_payloads(self, *, since: int = 0) -> list[dict[str, Any]]:
        """Finished spans (from index ``since``) as plain dicts."""
        with self._lock:
            spans = self._finished[since:]
        return [span.as_payload() for span in spans]

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


#: The process-wide tracer the instrumented hot paths report into.
TRACER = SpanTracer()


def span(name: str, **attributes: object):
    """Shorthand for ``TRACER.span(name, **attributes)``."""
    return TRACER.span(name, **attributes)


def current_span() -> Span | _NoopSpan:
    """The active span, or the no-op span — always safe to set attributes on."""
    active = TRACER.current()
    return active if active is not None else NOOP_SPAN


def annotate(key: str, value: object) -> None:
    """Set an attribute on the active span, if tracing is on and one is open.

    The single call instrumented chokepoints use (route selection, cache
    lookups): one flag check when tracing is off.
    """
    if not TRACER.enabled:
        return
    active = TRACER.current()
    if active is not None:
        active.set_attribute(key, value)
