"""Words over finite alphabets: finite words and ultimately-periodic ω-words.

The paper views a computation as an infinite sequence of states drawn from a
set ``Σ``.  Every ω-regular property is determined by its ultimately-periodic
members, so :class:`LassoWord` (``u · v^ω``) is the concrete representation of
infinite words used throughout the library.
"""

from repro.words.alphabet import Alphabet
from repro.words.finite import FiniteWord, all_words, words_up_to
from repro.words.lasso import LassoWord, all_lassos, distance

__all__ = [
    "Alphabet",
    "FiniteWord",
    "LassoWord",
    "all_words",
    "words_up_to",
    "all_lassos",
    "distance",
]
