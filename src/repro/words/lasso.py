"""Ultimately-periodic ω-words (lasso words) ``u · v^ω``.

Two ω-regular languages are equal iff they agree on all ultimately-periodic
words, so lassos are both the concrete carrier of the paper's computations
and the backbone of the library's differential tests.  Every lasso is kept
in a canonical form (primitive loop, minimal stem) so that structural
equality coincides with equality as infinite sequences.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator
from fractions import Fraction

from repro.errors import ReproError
from repro.words.alphabet import Alphabet, Symbol
from repro.words.finite import FiniteWord, all_words


def _primitive_root(word: tuple[Symbol, ...]) -> tuple[Symbol, ...]:
    """The shortest ``r`` with ``word = r^k`` (classic failure-function trick)."""
    n = len(word)
    for period in range(1, n + 1):
        if n % period == 0 and word == word[:period] * (n // period):
            return word[:period]
    raise AssertionError("unreachable: every word is its own root")


class LassoWord:
    """The infinite word ``u · v^ω`` with ``v`` non-empty.

    Instances are immutable and canonical: the loop ``v`` is primitive and
    the stem ``u`` is as short as possible (no symbol of the stem's tail can
    be rotated into the loop).  Equality and hashing therefore agree with
    equality of the denoted infinite sequences.
    """

    __slots__ = ("_stem", "_loop")

    def __init__(self, stem: Iterable[Symbol], loop: Iterable[Symbol]) -> None:
        stem_t = tuple(stem.symbols if isinstance(stem, FiniteWord) else stem)
        loop_t = tuple(loop.symbols if isinstance(loop, FiniteWord) else loop)
        if not loop_t:
            raise ReproError("a lasso word needs a non-empty loop")
        loop_t = _primitive_root(loop_t)
        # Roll stem symbols into the loop while the stem's last symbol equals
        # the loop's last symbol: u·x (y…zx)^ω = u (xy…z)^ω.
        while stem_t and stem_t[-1] == loop_t[-1]:
            stem_t = stem_t[:-1]
            loop_t = (loop_t[-1],) + loop_t[:-1]
        self._stem = stem_t
        self._loop = loop_t

    @classmethod
    def from_letters(cls, stem: str, loop: str) -> LassoWord:
        """``LassoWord.from_letters('a', 'ab')`` denotes ``a(ab)^ω``."""
        return cls(tuple(stem), tuple(loop))

    @classmethod
    def constant(cls, symbol: Symbol) -> LassoWord:
        """The word ``symbol^ω``."""
        return cls((), (symbol,))

    @property
    def stem(self) -> tuple[Symbol, ...]:
        return self._stem

    @property
    def loop(self) -> tuple[Symbol, ...]:
        return self._loop

    def __getitem__(self, position: int) -> Symbol:
        if position < 0:
            raise IndexError("ω-words have no negative positions")
        if position < len(self._stem):
            return self._stem[position]
        return self._loop[(position - len(self._stem)) % len(self._loop)]

    def prefix(self, length: int) -> FiniteWord:
        """The prefix ``σ[0..length-1]`` as a finite word."""
        return FiniteWord(self[i] for i in range(length))

    def prefixes(self, max_length: int) -> Iterator[FiniteWord]:
        """The non-empty prefixes of length ``1..max_length``."""
        for length in range(1, max_length + 1):
            yield self.prefix(length)

    def suffix(self, drop: int) -> LassoWord:
        """The ω-word obtained by deleting the first ``drop`` positions."""
        if drop <= len(self._stem):
            return LassoWord(self._stem[drop:], self._loop)
        extra = (drop - len(self._stem)) % len(self._loop)
        return LassoWord((), self._loop[extra:] + self._loop[:extra])

    def prepend(self, word: FiniteWord | Iterable[Symbol]) -> LassoWord:
        symbols = word.symbols if isinstance(word, FiniteWord) else tuple(word)
        return LassoWord(symbols + self._stem, self._loop)

    def symbols_used(self) -> frozenset[Symbol]:
        return frozenset(self._stem) | frozenset(self._loop)

    def stabilization_bound(self) -> int:
        """A position past which the word is purely periodic: ``|u|``."""
        return len(self._stem)

    def period(self) -> int:
        return len(self._loop)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LassoWord):
            return NotImplemented
        return self._stem == other._stem and self._loop == other._loop

    def __hash__(self) -> int:
        return hash((self._stem, self._loop))

    def __repr__(self) -> str:
        def fmt(symbols: tuple[Symbol, ...]) -> str:
            if all(isinstance(s, str) and len(s) == 1 for s in symbols):
                return "".join(symbols)
            return str(list(symbols))

        return f"LassoWord({fmt(self._stem)!r}, {fmt(self._loop)!r})"

    def check_alphabet(self, alphabet: Alphabet) -> LassoWord:
        for symbol in self._stem + self._loop:
            if symbol not in alphabet:
                raise ReproError(f"symbol {symbol!r} of {self!r} not in {alphabet}")
        return self


def distance(left: LassoWord, right: LassoWord) -> Fraction:
    """The paper's metric ``μ(σ, σ') = 2^{-j}`` (0 when identical).

    ``j`` is the first position at which the words differ — equivalently the
    length of their longest common prefix.  Because both words are lassos,
    the comparison terminates: if no difference appears within
    ``max stem + lcm-bounded window`` positions the words are equal.
    """
    if left == right:
        return Fraction(0)
    # The words differ, and any difference shows up within the combined
    # transient plus one loop-alignment cycle.
    bound = max(len(left.stem), len(right.stem)) + len(left.loop) * len(right.loop)
    for j in range(bound + 1):
        if left[j] != right[j]:
            return Fraction(1, 2**j)
    raise AssertionError("unreachable: distinct lassos differ within the bound")


def all_lassos(alphabet: Alphabet, max_stem: int, max_loop: int) -> Iterator[LassoWord]:
    """All distinct lasso words with ``|u| ≤ max_stem`` and ``|v| ≤ max_loop``.

    The enumeration deduplicates canonical forms, so each infinite word
    appears exactly once.  This is the exhaustive test corpus used to compare
    ω-language constructions against each other.
    """
    seen: set[LassoWord] = set()
    stem_lengths = range(0, max_stem + 1)
    loop_lengths = range(1, max_loop + 1)
    for stem_len, loop_len in itertools.product(stem_lengths, loop_lengths):
        for stem in all_words(alphabet, stem_len):
            for loop in all_words(alphabet, loop_len):
                lasso = LassoWord(stem.symbols, loop.symbols)
                if lasso not in seen:
                    seen.add(lasso)
                    yield lasso
