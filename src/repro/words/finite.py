"""Finite words over an alphabet.

A :class:`FiniteWord` is an immutable sequence of symbols.  The paper's
finitary properties are sets of *non-empty* finite words (``Σ⁺``); the empty
word exists here only as a technical device (e.g. as the seed of breadth-
first enumerations) and is never a member of a finitary property.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import AlphabetError
from repro.words.alphabet import Alphabet, Symbol


class FiniteWord:
    """An immutable finite word ``σ ∈ Σ*``."""

    __slots__ = ("_symbols",)

    def __init__(self, symbols: Iterable[Symbol]) -> None:
        self._symbols: tuple[Symbol, ...] = tuple(symbols)

    @classmethod
    def from_letters(cls, letters: str) -> FiniteWord:
        """Build a word of single-character symbols: ``FiniteWord.from_letters('aab')``."""
        return cls(letters)

    @classmethod
    def empty(cls) -> FiniteWord:
        return cls(())

    @property
    def symbols(self) -> tuple[Symbol, ...]:
        return self._symbols

    def __len__(self) -> int:
        return len(self._symbols)

    def __bool__(self) -> bool:
        return bool(self._symbols)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols)

    def __getitem__(self, index: int | slice) -> Symbol | FiniteWord:
        if isinstance(index, slice):
            return FiniteWord(self._symbols[index])
        return self._symbols[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FiniteWord):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        if all(isinstance(s, str) and len(s) == 1 for s in self._symbols):
            return f"FiniteWord({''.join(self._symbols)!r})"
        return f"FiniteWord({list(self._symbols)!r})"

    def __add__(self, other: FiniteWord | Iterable[Symbol]) -> FiniteWord:
        other_symbols = other.symbols if isinstance(other, FiniteWord) else tuple(other)
        return FiniteWord(self._symbols + other_symbols)

    def __mul__(self, count: int) -> FiniteWord:
        return FiniteWord(self._symbols * count)

    def append(self, symbol: Symbol) -> FiniteWord:
        return FiniteWord(self._symbols + (symbol,))

    def is_prefix_of(self, other: FiniteWord | Sequence[Symbol]) -> bool:
        """The relation ``σ ⪯ σ'`` restricted to finite ``σ'``."""
        other_symbols = other.symbols if isinstance(other, FiniteWord) else tuple(other)
        return self._symbols == other_symbols[: len(self._symbols)]

    def is_proper_prefix_of(self, other: FiniteWord | Sequence[Symbol]) -> bool:
        """The relation ``σ ≺ σ'`` restricted to finite ``σ'``."""
        other_symbols = other.symbols if isinstance(other, FiniteWord) else tuple(other)
        return len(self._symbols) < len(other_symbols) and self.is_prefix_of(other_symbols)

    def prefixes(self, *, proper: bool = False, include_empty: bool = False) -> Iterator[FiniteWord]:
        """All prefixes of this word, shortest first.

        By default yields the *non-empty* prefixes including the word itself,
        matching the paper's ``σ' ⪯ σ`` over ``Σ⁺``.
        """
        start = 0 if include_empty else 1
        end = len(self._symbols) + (0 if proper else 1)
        for length in range(start, end):
            yield FiniteWord(self._symbols[:length])

    def check_alphabet(self, alphabet: Alphabet) -> FiniteWord:
        for symbol in self._symbols:
            if symbol not in alphabet:
                raise AlphabetError(f"symbol {symbol!r} of {self!r} not in {alphabet}")
        return self


def all_words(alphabet: Alphabet, length: int) -> Iterator[FiniteWord]:
    """All words of exactly ``length`` symbols, in lexicographic alphabet order."""
    if length == 0:
        yield FiniteWord.empty()
        return
    for shorter in all_words(alphabet, length - 1):
        for symbol in alphabet:
            yield shorter.append(symbol)


def words_up_to(alphabet: Alphabet, max_length: int, *, include_empty: bool = False) -> Iterator[FiniteWord]:
    """All words of length ``1..max_length`` (``0..max_length`` if requested).

    This is the brute-force enumeration oracle used by the test suite to
    validate DFA constructions against the paper's set-theoretic definitions.
    """
    start = 0 if include_empty else 1
    for length in range(start, max_length + 1):
        yield from all_words(alphabet, length)
