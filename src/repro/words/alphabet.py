"""Finite alphabets.

The paper allows arbitrary (even infinite) state sets ``Σ``; every algorithm
in this library works over an explicit finite alphabet, which suffices for
the propositional fragment (``Σ = 2^AP``) and for all of the paper's
examples (``Σ = {a, b, c, d}``).  Symbols may be any hashable value —
single-character strings for the language-theoretic view, frozensets of
proposition names for the logic view.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from repro.errors import AlphabetError

Symbol = Hashable


class Alphabet:
    """An immutable, ordered finite set of symbols.

    The iteration order is fixed at construction time (first-seen order) so
    that automaton constructions and enumerations are deterministic.
    """

    __slots__ = ("_symbols", "_index")

    def __init__(self, symbols: Iterable[Symbol]) -> None:
        ordered: list[Symbol] = []
        index: dict[Symbol, int] = {}
        for symbol in symbols:
            if symbol not in index:
                index[symbol] = len(ordered)
                ordered.append(symbol)
        if not ordered:
            raise AlphabetError("an alphabet must contain at least one symbol")
        self._symbols: tuple[Symbol, ...] = tuple(ordered)
        self._index = index

    @classmethod
    def of(cls, *symbols: Symbol) -> Alphabet:
        """Build an alphabet from positional symbols: ``Alphabet.of('a', 'b')``."""
        return cls(symbols)

    @classmethod
    def from_letters(cls, letters: str) -> Alphabet:
        """Build an alphabet of single-character symbols from a string."""
        return cls(letters)

    @classmethod
    def powerset_of_propositions(cls, propositions: Iterable[str]) -> Alphabet:
        """The alphabet ``2^AP`` used by the temporal-logic view.

        Symbols are frozensets of the proposition names that hold in a state.
        Ordered by subset size, then lexicographically, for reproducibility.
        """
        props = sorted(set(propositions))
        subsets = [frozenset()]
        for prop in props:
            subsets += [subset | {prop} for subset in subsets]
        subsets.sort(key=lambda s: (len(s), tuple(sorted(s))))
        return cls(subsets)

    @property
    def symbols(self) -> tuple[Symbol, ...]:
        return self._symbols

    def index(self, symbol: Symbol) -> int:
        """The fixed position of ``symbol`` in this alphabet."""
        try:
            return self._index[symbol]
        except KeyError:
            raise AlphabetError(f"symbol {symbol!r} not in alphabet {self}") from None

    def __contains__(self, symbol: Any) -> bool:
        try:
            return symbol in self._index
        except TypeError:
            return False

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols)

    def __len__(self) -> int:
        return len(self._symbols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return set(self._symbols) == set(other._symbols)

    def __hash__(self) -> int:
        return hash(frozenset(self._symbols))

    def __repr__(self) -> str:
        shown = ", ".join(repr(s) for s in self._symbols[:6])
        suffix = ", ..." if len(self._symbols) > 6 else ""
        return f"Alphabet({{{shown}{suffix}}})"

    def require(self, symbol: Symbol) -> Symbol:
        """Return ``symbol`` if it belongs to the alphabet, else raise."""
        if symbol not in self:
            raise AlphabetError(f"symbol {symbol!r} not in alphabet {self}")
        return symbol

    def is_compatible_with(self, other: Alphabet) -> bool:
        """True when both alphabets contain exactly the same symbols."""
        return set(self._symbols) == set(other._symbols)
