"""``repro.qa`` — seeded differential fuzzing of the four views.

The paper's central claim is that every class of the safety–progress
hierarchy is characterized by four *coinciding* views: the linguistic
operators ``A/E/R/P``, the topological predicates (closed / open / G_δ /
F_σ), the temporal-logic normal forms, and the shape of the accepting
Streett automaton.  Whenever two views are implemented by structurally
distinct code paths, their agreement on random inputs is a free
differential oracle — that is what this subsystem industrializes:

* :mod:`repro.qa.generate` — size-bounded seeded generators for formulae,
  finitary DFAs/NFAs, deterministic ω-automata and lasso words;
* :mod:`repro.qa.oracles` — differential oracles comparing at least two
  independent routes per generated object;
* :mod:`repro.qa.shrink` — greedy structural shrinking of failing inputs;
* :mod:`repro.qa.fuzz` — the budgeted runner behind
  ``python -m repro fuzz``, wired into :mod:`repro.engine.metrics`;
* ``qa/corpus/`` — shrunk counterexamples checked in as permanent
  regression artifacts, replayed by the tier-1 suite.
"""

from repro.qa.generate import (
    GeneratorConfig,
    random_det_automaton,
    random_formula,
    random_language,
    random_lasso,
    random_nba,
    random_nfa,
    random_normal_form_formula,
    random_past_formula,
)
from repro.qa.oracles import ORACLES, Disagreement, Oracle, oracle_named
from repro.qa.shrink import shrink_automaton, shrink_formula, shrink_lasso
from repro.qa.fuzz import (
    CaseFailure,
    FuzzReport,
    corpus_artifacts,
    corpus_dir,
    replay_artifact,
    run_fuzz,
)

__all__ = [
    "GeneratorConfig",
    "random_det_automaton",
    "random_formula",
    "random_language",
    "random_lasso",
    "random_nba",
    "random_nfa",
    "random_normal_form_formula",
    "random_past_formula",
    "ORACLES",
    "Disagreement",
    "Oracle",
    "oracle_named",
    "shrink_automaton",
    "shrink_formula",
    "shrink_lasso",
    "CaseFailure",
    "FuzzReport",
    "corpus_artifacts",
    "corpus_dir",
    "replay_artifact",
    "run_fuzz",
]
