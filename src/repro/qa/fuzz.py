"""The budgeted differential-fuzz runner behind ``python -m repro fuzz``.

A run draws ``budget`` cases from an explicit ``random.Random(seed)``,
cycling round-robin over the selected oracles; every case generates one
subject and checks it through all of the oracle's routes.  Disagreements are
greedily shrunk (:mod:`repro.qa.shrink`) and written to ``qa/corpus/`` as
JSON artifacts, where the tier-1 suite replays them forever after.

Observability rides on :mod:`repro.engine.metrics` — the same counters,
timers and trace events the evaluation engine emits — so a fuzz run shows
up in ``METRICS.report()`` next to the classifier and Safra timers:

* counters ``qa.fuzz.cases``, ``qa.fuzz.cases.<oracle>``,
  ``qa.fuzz.disagreements``;
* timer ``qa.fuzz.case``;
* trace events ``qa.fuzz.run`` (one per run) and ``qa.fuzz.disagreement``
  (one per failure, carrying the shrunk artifact).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.engine.metrics import METRICS, trace
from repro.obs.spans import span
from repro.qa.generate import GeneratorConfig, coerce_rng
from repro.qa.oracles import ORACLES, Oracle, oracle_named

_CORPUS_DIR = Path(__file__).parent / "corpus"


@dataclass(frozen=True, slots=True)
class CaseFailure:
    """One disagreement: where it came from and what it shrank to."""

    oracle: str
    case_index: int
    detail: str
    artifact: dict[str, Any]
    shrunk_detail: str
    shrunk_artifact: dict[str, Any]

    def __str__(self) -> str:
        return f"case {self.case_index} [{self.oracle}]: {self.shrunk_detail}"


@dataclass
class FuzzReport:
    """Everything one fuzz run did, ready for the CLI and the tests."""

    seed: int
    budget: int
    oracle_names: tuple[str, ...]
    cases: int = 0
    per_oracle: dict[str, int] = field(default_factory=dict)
    failures: list[CaseFailure] = field(default_factory=list)
    wall_seconds: float = 0.0
    artifacts_written: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"seed:          {self.seed}",
            f"budget:        {self.budget} ({self.cases} cases run)",
            f"oracles:       " + ", ".join(self.oracle_names),
            "cases/oracle:  "
            + ", ".join(f"{name}={count}" for name, count in sorted(self.per_oracle.items())),
            f"wall time:     {self.wall_seconds*1e3:.1f}ms",
            f"disagreements: {len(self.failures)}",
        ]
        for failure in self.failures:
            lines.append(f"  {failure}")
        for path in self.artifacts_written:
            lines.append(f"  artifact: {path}")
        if self.ok:
            lines.append("all views agree ✓")
        return "\n".join(lines)


def _artifact_for(oracle: Oracle, subject: Any, *, detail: str, seed: int, case: int) -> dict[str, Any]:
    artifact = oracle.to_artifact(subject)
    artifact["oracle"] = oracle.name
    artifact["detail"] = detail
    artifact["seed"] = seed
    artifact["case"] = case
    return artifact


def run_fuzz(
    seed: int = 1990,
    budget: int = 100,
    *,
    oracles: Sequence[str] | None = None,
    shrink: bool = True,
    write_corpus: Path | str | None = None,
    config: GeneratorConfig | None = None,
) -> FuzzReport:
    """Run ``budget`` differential cases; return the full report.

    ``oracles`` selects a subset by name (default: all four); with
    ``write_corpus`` set, each shrunk counterexample is persisted there as a
    JSON artifact the corpus replay test will pick up.
    """
    if budget < 1:
        raise ValueError("fuzz budget must be at least 1")
    config = config or GeneratorConfig()
    names = tuple(oracles) if oracles else tuple(sorted(ORACLES))
    selected = [oracle_named(name) for name in names]
    rng = coerce_rng(seed)
    report = FuzzReport(seed=seed, budget=budget, oracle_names=names)
    start = time.perf_counter()

    with span("qa.fuzz.run", seed=seed, budget=budget) as run_span:
        _run_cases(selected, rng, config, report, seed, shrink, write_corpus)
        run_span.set_attribute("cases", report.cases)
        run_span.set_attribute("disagreements", len(report.failures))

    report.wall_seconds = time.perf_counter() - start
    METRICS.timer("qa.fuzz.run").observe(report.wall_seconds)
    trace(
        "qa.fuzz.run",
        seed=seed,
        budget=budget,
        cases=report.cases,
        disagreements=len(report.failures),
        seconds=report.wall_seconds,
    )
    return report


def _run_cases(
    selected: list[Oracle],
    rng,
    config: GeneratorConfig,
    report: FuzzReport,
    seed: int,
    shrink: bool,
    write_corpus: Path | str | None,
) -> None:
    for case_index in range(report.budget):
        oracle = selected[case_index % len(selected)]
        with span("qa.fuzz.case", oracle=oracle.name, case=case_index), METRICS.timer(
            "qa.fuzz.case"
        ).time():
            subject = oracle.generate(rng, config)
            detail = oracle.check(subject)
        report.cases += 1
        report.per_oracle[oracle.name] = report.per_oracle.get(oracle.name, 0) + 1
        METRICS.counter("qa.fuzz.cases").inc()
        METRICS.counter(f"qa.fuzz.cases.{oracle.name}").inc()
        if detail is None:
            continue

        METRICS.counter("qa.fuzz.disagreements").inc()
        shrunk = oracle.shrink(subject) if shrink else subject
        shrunk_detail = oracle.check(shrunk) or detail
        failure = CaseFailure(
            oracle=oracle.name,
            case_index=case_index,
            detail=detail,
            artifact=_artifact_for(oracle, subject, detail=detail, seed=seed, case=case_index),
            shrunk_detail=shrunk_detail,
            shrunk_artifact=_artifact_for(
                oracle, shrunk, detail=shrunk_detail, seed=seed, case=case_index
            ),
        )
        report.failures.append(failure)
        trace(
            "qa.fuzz.disagreement",
            oracle=oracle.name,
            case=case_index,
            detail=shrunk_detail,
        )
        if write_corpus is not None:
            report.artifacts_written.append(
                write_artifact(failure.shrunk_artifact, Path(write_corpus))
            )


# ---------------------------------------------------------------------------
# Corpus: shrunk counterexamples as permanent regression artifacts
# ---------------------------------------------------------------------------


def corpus_dir() -> Path:
    """The in-tree corpus directory (``src/repro/qa/corpus``)."""
    return _CORPUS_DIR


def write_artifact(artifact: dict[str, Any], directory: Path | None = None) -> Path:
    """Persist one artifact as deterministic-named JSON; returns the path."""
    directory = directory or _CORPUS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(artifact, indent=2, sort_keys=True)
    digest = hashlib.sha256(payload.encode()).hexdigest()[:12]
    path = directory / f"{artifact.get('oracle', 'case')}-{digest}.json"
    path.write_text(payload + "\n")
    return path


def corpus_artifacts(directory: Path | None = None) -> list[tuple[Path, dict[str, Any]]]:
    """All checked-in artifacts, sorted by filename (stable test IDs)."""
    directory = directory or _CORPUS_DIR
    if not directory.is_dir():
        return []
    return [
        (path, json.loads(path.read_text()))
        for path in sorted(directory.glob("*.json"))
    ]


def replay_artifact(artifact: dict[str, Any]) -> str | None:
    """Re-check one artifact; ``None`` means the regression stays fixed."""
    oracle = oracle_named(artifact["oracle"])
    subject = oracle.from_artifact(artifact)
    return oracle.check(subject)
