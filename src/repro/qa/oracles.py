"""Differential oracles: each generated object is classified through at
least two independent code routes, and any disagreement is a bug.

The four oracles mirror the paper's four coinciding views:

* ``formula-lasso``   — direct lasso semantics vs. the compiled automaton's
  run vs. the :class:`~repro.core.monitor.PrefixMonitor` verdict;
* ``formula-class``   — the syntactic fragment grammar and normal-form
  recognizers (§4) vs. translate-to-automaton-then-classify (§5.1), plus
  negation duality across the two pipelines;
* ``linguistic``      — the ``A/E/R/P`` constructions vs. brute-force prefix
  profiles, the topological closure predicates, and the
  ``A(Φ)ᶜ = E(Φᶜ)`` / ``R(Φ)ᶜ = P(Φᶜ)`` dualities;
* ``automaton``       — complement membership, classification duality,
  Wagner index duality and the HOA round-trip on random Streett/Rabin
  automata.

Two more cover the execution engines rather than the views: ``fastpath``
(dense kernels vs. the audited reference routes) and ``fleet`` (the
vectorized monitor fleet vs. a loop of scalar ``PrefixMonitor``\\ s,
verdict vectors compared at every batch boundary).

Each oracle knows how to generate a subject, check it, serialize it to a
JSON artifact (for ``qa/corpus/``), replay an artifact, and shrink a
failing subject — everything the fuzz runner and the regression replay
need, in one object.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.core.classes import TemporalClass
from repro.core.classifier import formula_to_automaton
from repro.core.monitor import PrefixMonitor, Verdict3
from repro.finitary.dfa import DFA
from repro.finitary.language import FinitaryLanguage
from repro.logic.ast import Formula, Not
from repro.logic.classes import normal_form_class, syntactic_classes
from repro.logic.parser import parse_formula
from repro.logic.semantics import satisfies
from repro.omega.classify import classify, rabin_index, streett_index
from repro.omega.closure import is_liveness, is_safety_closed
from repro.omega.hoa import from_hoa, to_hoa
from repro.omega.linguistic import a_of, e_of, p_of, r_of
from repro.qa.generate import (
    GeneratorConfig,
    random_det_automaton,
    random_formula,
    random_language,
    random_lasso_sample,
    random_normal_form_formula,
)
from repro.qa.shrink import shrink_automaton, shrink_formula
from repro.words.alphabet import Alphabet
from repro.words.lasso import LassoWord


@dataclass(frozen=True, slots=True)
class Disagreement:
    """One cross-view disagreement: the smoking gun of a fuzz run."""

    oracle: str
    detail: str
    subject: Any

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


# ---------------------------------------------------------------------------
# Serialization helpers (corpus artifacts are plain JSON)
# ---------------------------------------------------------------------------


def _lassos_to_json(lassos: tuple[LassoWord, ...]) -> list[list[str]]:
    return [["".join(l.stem), "".join(l.loop)] for l in lassos]


def _lassos_from_json(data: list[list[str]]) -> tuple[LassoWord, ...]:
    return tuple(LassoWord.from_letters(stem, loop) for stem, loop in data)


def _dfa_to_json(dfa: DFA) -> dict[str, Any]:
    return {
        "rows": [list(row) for row in dfa._delta],  # noqa: SLF001 — qa is in-tree
        "initial": dfa.initial,
        "accepting": sorted(dfa.accepting),
    }


def _dfa_from_json(data: dict[str, Any], alphabet: Alphabet) -> DFA:
    return DFA(alphabet, data["rows"], data["initial"], data["accepting"])


# ---------------------------------------------------------------------------
# The oracle protocol
# ---------------------------------------------------------------------------


class Oracle:
    """One differential check; subclasses define the views being compared."""

    name: str = "oracle"
    #: The independent routes this oracle compares (documentation + report).
    routes: tuple[str, ...] = ()

    def generate(self, rng: random.Random, config: GeneratorConfig) -> Any:
        raise NotImplementedError

    def check(self, subject: Any) -> str | None:
        """``None`` when all routes agree, else a human-readable detail."""
        raise NotImplementedError

    def shrink(self, subject: Any) -> Any:
        """Greedily minimize a failing subject (default: no shrinking)."""
        return subject

    def to_artifact(self, subject: Any) -> dict[str, Any]:
        raise NotImplementedError

    def from_artifact(self, artifact: dict[str, Any]) -> Any:
        raise NotImplementedError

    def describe(self, subject: Any) -> str:
        return repr(subject)


# ---------------------------------------------------------------------------
# 1. Lasso semantics vs. automaton run vs. monitor verdict
# ---------------------------------------------------------------------------


def monitor_verdict(automaton, lasso: LassoWord) -> Verdict3:
    """Feed ``stem · loop^ω`` to a prefix monitor until the verdict is final
    or provably PENDING forever (loop-boundary state repeats)."""
    monitor = PrefixMonitor(automaton)
    verdict = monitor.feed(lasso.stem)
    seen = {monitor.state}
    while verdict is Verdict3.PENDING:
        verdict = monitor.feed(lasso.loop)
        if verdict is not Verdict3.PENDING or monitor.state in seen:
            break
        seen.add(monitor.state)
    return verdict


class FormulaLassoOracle(Oracle):
    name = "formula-lasso"
    routes = ("lasso semantics", "automaton run", "prefix-monitor verdict")

    def generate(self, rng: random.Random, config: GeneratorConfig):
        formula = random_formula(rng, config.propositions, config.max_depth)
        return formula, random_lasso_sample(rng, config)

    def check(self, subject) -> str | None:
        formula, lassos = subject
        # The letter alphabet must cover every lasso symbol; formula
        # propositions outside it simply never hold (consistently so on both
        # the semantic and the automaton route).
        letters = sorted({s for l in lassos for s in l.symbols_used()} | {"a"})
        alphabet = Alphabet(letters)
        automaton = formula_to_automaton(formula, alphabet)
        for lasso in lassos:
            semantic = satisfies(lasso, formula)
            automaton_says = automaton.accepts(lasso)
            if semantic != automaton_says:
                return (
                    f"{formula!r} on {lasso!r}: semantics={semantic},"
                    f" automaton={automaton_says}"
                )
            verdict = monitor_verdict(automaton, lasso)
            if verdict is Verdict3.VIOLATED and semantic:
                return f"{formula!r} on {lasso!r}: monitor VIOLATED but word satisfies"
            if verdict is Verdict3.SATISFIED and not semantic:
                return f"{formula!r} on {lasso!r}: monitor SATISFIED but word violates"
        return None

    def shrink(self, subject):
        formula, lassos = subject
        failing = [l for l in lassos if self.check((formula, (l,))) is not None]
        kept = tuple(failing[:1]) if failing else lassos
        shrunk = shrink_formula(formula, lambda f: self.check((f, kept)) is not None)
        return shrunk, kept

    def to_artifact(self, subject) -> dict[str, Any]:
        formula, lassos = subject
        return {"formula": repr(formula), "lassos": _lassos_to_json(lassos)}

    def from_artifact(self, artifact):
        return parse_formula(artifact["formula"]), _lassos_from_json(artifact["lassos"])

    def describe(self, subject) -> str:
        formula, lassos = subject
        return f"{formula!r} over {len(lassos)} lasso(s)"


# ---------------------------------------------------------------------------
# 2. Syntactic classifiers vs. translate-then-classify (§5.1)
# ---------------------------------------------------------------------------


class FormulaClassOracle(Oracle):
    name = "formula-class"
    routes = (
        "syntactic fragment grammar",
        "normal-form recognizers",
        "automaton classification (§5.1)",
        "negation duality",
    )

    def generate(self, rng: random.Random, config: GeneratorConfig):
        if rng.random() < 0.5:
            temporal_class = rng.choice(tuple(TemporalClass))
            return random_normal_form_formula(rng, config.propositions, temporal_class)
        return random_formula(rng, config.propositions, config.max_depth)

    def check(self, subject: Formula) -> str | None:
        formula = subject
        verdict = classify(formula_to_automaton(formula))
        # Syntactic membership is sound: every class the grammar grants must
        # hold semantically.
        for claimed in syntactic_classes(formula):
            if not verdict.membership[claimed]:
                return (
                    f"{formula!r}: syntactic grammar claims {claimed.value},"
                    f" semantic classifier denies it"
                )
        # A formula literally in a κ-normal form denotes a κ-property.
        literal = normal_form_class(formula)
        if literal is not None and not verdict.membership[literal]:
            return (
                f"{formula!r}: matches the {literal.value} normal form but the"
                f" automaton classifier denies {literal.value}"
            )
        # Complement duality across the two pipelines: ¬φ compiles through a
        # different path (GPVW/Safra) yet must land in the dual classes.
        negated = classify(formula_to_automaton(Not(formula)))
        for temporal_class in TemporalClass:
            if verdict.membership[temporal_class] != negated.membership[temporal_class.dual()]:
                return (
                    f"{formula!r}: in {temporal_class.value}="
                    f"{verdict.membership[temporal_class]} but ¬φ in dual"
                    f" {temporal_class.dual().value}="
                    f"{negated.membership[temporal_class.dual()]}"
                )
        return None

    def shrink(self, subject: Formula) -> Formula:
        return shrink_formula(subject, lambda f: self.check(f) is not None)

    def to_artifact(self, subject: Formula) -> dict[str, Any]:
        return {"formula": repr(subject)}

    def from_artifact(self, artifact) -> Formula:
        return parse_formula(artifact["formula"])


# ---------------------------------------------------------------------------
# 3. Linguistic A/E/R/P vs. prefix profiles vs. topology
# ---------------------------------------------------------------------------


def prefix_profile(phi: FinitaryLanguage, lasso: LassoWord) -> tuple[list[bool], list[bool]]:
    """The infinite sequence ``[σ[0..k] ∈ Φ]`` split into transient + cycle,
    computed by brute force on Φ's DFA (independent of the ω-constructions)."""
    dfa = phi.dfa
    state = dfa.initial
    flags: list[bool] = []
    seen: dict[tuple[int, int], int] = {}
    position = 0
    while True:
        if position >= len(lasso.stem):
            key = ((position - len(lasso.stem)) % len(lasso.loop), state)
            if key in seen:
                start = seen[key]
                return flags[:start], flags[start:]
            seen[key] = position
        state = dfa.step(state, lasso[position])
        flags.append(state in dfa.accepting)
        position += 1


_BRUTE_FORCE = {
    "A": lambda transient, cycle: all(transient) and all(cycle),
    "E": lambda transient, cycle: any(transient) or any(cycle),
    "R": lambda transient, cycle: any(cycle),
    "P": lambda transient, cycle: all(cycle),
}

_CONSTRUCTIONS = {"A": a_of, "E": e_of, "R": r_of, "P": p_of}

_GUARANTEED_CLASS = {
    "A": TemporalClass.SAFETY,
    "E": TemporalClass.GUARANTEE,
    "R": TemporalClass.RECURRENCE,
    "P": TemporalClass.PERSISTENCE,
}


class LinguisticOracle(Oracle):
    name = "linguistic"
    routes = (
        "A/E/R/P constructions",
        "brute-force prefix profiles",
        "topological closure predicates",
        "linguistic complement dualities",
    )

    def generate(self, rng: random.Random, config: GeneratorConfig):
        phi = random_language(rng, config.alphabet, config.max_states)
        return phi, random_lasso_sample(rng, config)

    def check(self, subject) -> str | None:
        phi, lassos = subject
        automata = {op: build(phi) for op, build in _CONSTRUCTIONS.items()}
        for op, automaton in automata.items():
            # Route 1 vs 2: construction membership against the set-theoretic
            # definition evaluated on the prefix profile.
            for lasso in lassos:
                transient, cycle = prefix_profile(phi, lasso)
                expected = _BRUTE_FORCE[op](transient, cycle)
                if automaton.accepts(lasso) != expected:
                    return (
                        f"{op}(Φ) on {lasso!r}: construction says"
                        f" {automaton.accepts(lasso)}, prefix profile says {expected}"
                    )
            # Route 3: the topological view — κ(Φ) always lands in class κ.
            guaranteed = _GUARANTEED_CLASS[op]
            if not classify(automaton).membership[guaranteed]:
                return f"{op}(Φ) not classified as {guaranteed.value}"
        # Safety = closed: A(Φ) equals its own safety closure.
        if not is_safety_closed(automata["A"]):
            return "A(Φ) is not topologically closed"
        # Route 4: complement dualities A(Φ)ᶜ = E(Φᶜ) and R(Φ)ᶜ = P(Φᶜ).
        complement = phi.complement()
        if not automata["A"].complement().equivalent_to(e_of(complement)):
            return "A(Φ)ᶜ ≠ E(Σ⁺∖Φ)"
        if not automata["R"].complement().equivalent_to(p_of(complement)):
            return "R(Φ)ᶜ ≠ P(Σ⁺∖Φ)"
        return None

    def shrink(self, subject):
        phi, lassos = subject
        failing = [l for l in lassos if self.check((phi, (l,))) is not None]
        return phi, (tuple(failing[:1]) if failing else lassos)

    def to_artifact(self, subject) -> dict[str, Any]:
        phi, lassos = subject
        return {"dfa": _dfa_to_json(phi.dfa), "lassos": _lassos_to_json(lassos)}

    def from_artifact(self, artifact):
        letters = sorted(
            {s for pair in artifact["lassos"] for part in pair for s in part} | set("ab")
        )
        alphabet = Alphabet(letters)
        phi = FinitaryLanguage(_dfa_from_json(artifact["dfa"], alphabet))
        return phi, _lassos_from_json(artifact["lassos"])

    def describe(self, subject) -> str:
        phi, lassos = subject
        return f"Φ with {phi.dfa.num_states} DFA states over {len(lassos)} lasso(s)"


# ---------------------------------------------------------------------------
# 4. Automaton complementation, classification duality, HOA round-trip
# ---------------------------------------------------------------------------


class AutomatonOracle(Oracle):
    name = "automaton"
    routes = (
        "complement membership",
        "classification duality",
        "Wagner index duality",
        "HOA round-trip",
    )

    def generate(self, rng: random.Random, config: GeneratorConfig):
        automaton = random_det_automaton(
            rng, config.alphabet, config.max_states, config.max_pairs
        )
        return automaton, random_lasso_sample(rng, config)

    def check(self, subject) -> str | None:
        automaton, lassos = subject
        complement = automaton.complement()
        verdict = classify(automaton)
        dual_verdict = classify(complement)
        for lasso in lassos:
            if complement.accepts(lasso) == automaton.accepts(lasso):
                return f"complement agrees with original on {lasso!r}"
        for temporal_class in TemporalClass:
            mine = verdict.membership[temporal_class]
            dual = dual_verdict.membership[temporal_class.dual()]
            if mine != dual:
                return (
                    f"classification duality broken: {temporal_class.value}={mine}"
                    f" but complement {temporal_class.dual().value}={dual}"
                )
        if streett_index(automaton) != rabin_index(complement):
            return (
                f"Wagner duality broken: streett_index={streett_index(automaton)}"
                f" vs complement rabin_index={rabin_index(complement)}"
            )
        restored = from_hoa(to_hoa(automaton), alphabet=automaton.alphabet)
        if restored.acceptance.kind is not automaton.acceptance.kind:
            return (
                f"HOA round-trip changed acceptance kind:"
                f" {automaton.acceptance.kind} → {restored.acceptance.kind}"
            )
        for lasso in lassos:
            if restored.accepts(lasso) != automaton.accepts(lasso):
                return f"HOA round-trip changed the verdict on {lasso!r}"
        if classify(restored).canonical != verdict.canonical:
            return "HOA round-trip changed the canonical class"
        return None

    def shrink(self, subject):
        automaton, lassos = subject
        failing = [l for l in lassos if self.check((automaton, (l,))) is not None]
        kept = tuple(failing[:1]) if failing else lassos
        shrunk = shrink_automaton(
            automaton, lambda a: self.check((a, kept)) is not None
        )
        return shrunk, kept

    def to_artifact(self, subject) -> dict[str, Any]:
        automaton, lassos = subject
        letters = "".join(str(s) for s in automaton.alphabet)
        return {
            "hoa": to_hoa(automaton),
            "letters": letters,
            "lassos": _lassos_to_json(lassos),
        }

    def from_artifact(self, artifact):
        alphabet = Alphabet.from_letters(artifact["letters"])
        automaton = from_hoa(artifact["hoa"], alphabet=alphabet)
        return automaton, _lassos_from_json(artifact["lassos"])

    def describe(self, subject) -> str:
        automaton, lassos = subject
        return f"{automaton!r} over {len(lassos)} lasso(s)"


# ---------------------------------------------------------------------------
# 5. Dense fastpath kernels vs. the audited reference routes
# ---------------------------------------------------------------------------


def _nfa_to_json(nfa) -> dict[str, Any]:
    return {
        "num_states": nfa.num_states,
        "edges": [
            [state, str(symbol), sorted(targets)]
            for (state, symbol), targets in sorted(
                nfa.transitions.items(), key=lambda item: (item[0][0], str(item[0][1]))
            )
        ],
        "epsilon": [
            [state, sorted(targets)] for state, targets in sorted(nfa.epsilon.items())
        ],
        "initials": sorted(nfa.initials),
        "accepting": sorted(nfa.accepting),
    }


def _nfa_from_json(data: dict[str, Any], alphabet: Alphabet):
    from repro.finitary.nfa import NFA

    return NFA(
        alphabet,
        data["num_states"],
        {(state, symbol): set(targets) for state, symbol, targets in data["edges"]},
        data["initials"],
        data["accepting"],
        {state: set(targets) for state, targets in data["epsilon"]},
    )


def _nba_to_json(nba) -> dict[str, Any]:
    return {
        "num_states": nba.num_states,
        "edges": [
            [state, str(symbol), sorted(targets)]
            for (state, symbol), targets in sorted(
                nba.transitions.items(), key=lambda item: (item[0][0], str(item[0][1]))
            )
        ],
        "initials": sorted(nba.initials),
        "accepting": sorted(nba.accepting),
    }


def _nba_from_json(data: dict[str, Any], alphabet: Alphabet):
    from repro.omega.buchi import NBA

    return NBA(
        alphabet,
        data["num_states"],
        {
            (state, symbol): frozenset(targets)
            for state, symbol, targets in data["edges"]
        },
        data["initials"],
        data["accepting"],
    )


class FastpathOracle(Oracle):
    """Every dense kernel against its reference twin, on one random subject.

    The contract being checked is the fastpath parity contract
    (``docs/PERFORMANCE.md``): subset construction, minimization and DFA
    products must return *structurally identical* automata; emptiness
    kernels must return identical state sets and verdicts (witness
    components may legitimately differ).  When numpy/scipy are importable
    the dense route is additionally cross-checked against itself with the
    vectorized SCC backend disabled, so all three implementations must
    agree before a case passes.
    """

    name = "fastpath"
    routes = (
        "reference kernels",
        "dense bitset kernels",
        "vectorized SCC backend (when importable)",
    )

    def generate(self, rng: random.Random, config: GeneratorConfig):
        from repro.qa.generate import random_nba, random_nfa

        nfa_a = random_nfa(rng, config.alphabet, rng.randrange(3, 8))
        nfa_b = random_nfa(rng, config.alphabet, rng.randrange(3, 8))
        # Mostly small ω-automata; occasionally large enough that the
        # emptiness kernels cross the vectorized-backend threshold.
        size = rng.randrange(200, 256) if rng.random() < 0.15 else None
        aut_a = random_det_automaton(rng, config.alphabet, size or config.max_states, config.max_pairs)
        aut_b = random_det_automaton(rng, config.alphabet, config.max_states, config.max_pairs)
        nba = random_nba(rng, config.alphabet, 8)
        formula = random_formula(rng, config.propositions, config.max_depth)
        return nfa_a, nfa_b, aut_a, aut_b, rng.random() < 0.5, nba, formula

    @staticmethod
    def _same_dfa(a, b) -> bool:
        return (
            a._delta == b._delta  # noqa: SLF001 — structural identity is the contract
            and a.initial == b.initial
            and a.accepting == b.accepting
        )

    def _emptiness_views(self, aut_a, aut_b, complemented):
        from repro.omega.emptiness import ProductCheck, nonempty_states

        nonempty = nonempty_states(aut_a)
        check = ProductCheck([aut_a, aut_b], [False, complemented])
        return nonempty, check.witness_component() is None

    @staticmethod
    def _same_det(a, b) -> bool:
        return (
            a._delta == b._delta  # noqa: SLF001 — structural identity is the contract
            and a.initial == b.initial
            and a.acceptance == b.acceptance
        )

    def check(self, subject) -> str | None:
        import os

        from repro.fastpath.config import forced
        from repro.fastpath.labels import compress_det, expand_det
        from repro.fastpath.vector import HAVE_VECTOR
        from repro.logic.translate import formula_to_nba
        from repro.omega.safra import determinize

        nfa_a, nfa_b, aut_a, aut_b, complemented, nba, formula = subject

        def construction_views():
            dfa_a = nfa_a.determinize()
            dfa_b = nfa_b.determinize()
            return (
                dfa_a,
                dfa_b,
                dfa_a.minimized(),
                dfa_a.intersection(dfa_b),
                dfa_a.union(dfa_b),
            )

        def omega_views():
            return (
                determinize(nba),
                formula_to_nba(formula, nba.alphabet),
            )

        with forced("off"):
            reference = construction_views()
            dra_ref, nba_ref = omega_views()
            nonempty_ref, empty_ref = self._emptiness_views(aut_a, aut_b, complemented)
        with forced("on"):
            dense = construction_views()
            dra_fast, nba_fast = omega_views()
            nonempty_fast, empty_fast = self._emptiness_views(aut_a, aut_b, complemented)
            if HAVE_VECTOR:
                # Third route: the dense kernels with the vector backend off.
                os.environ["REPRO_FASTPATH_VECTOR"] = "off"
                try:
                    nonempty_pure, empty_pure = self._emptiness_views(
                        aut_a, aut_b, complemented
                    )
                finally:
                    os.environ.pop("REPRO_FASTPATH_VECTOR", None)
                if nonempty_pure != nonempty_fast or empty_pure != empty_fast:
                    return "dense route disagrees with itself across SCC backends"

        names = ("determinize(A)", "determinize(B)", "minimized", "intersection", "union")
        for name, ref, fast in zip(names, reference, dense):
            if not self._same_dfa(ref, fast):
                return f"{name}: dense result not structurally identical to reference"
        if not self._same_det(dra_ref, dra_fast):
            return "safra: dense determinization not structurally identical"
        if (
            nba_ref.transitions != nba_fast.transitions
            or nba_ref.num_states != nba_fast.num_states
            or nba_ref.initials != nba_fast.initials
            or nba_ref.accepting != nba_fast.accepting
        ):
            return "gpvw: dense tableau enumeration not structurally identical"
        restored = expand_det(*compress_det(dra_ref))
        if not self._same_det(dra_ref, restored):
            return "labels: expand(compress(A)) not structurally identical to A"
        if nonempty_ref != nonempty_fast:
            return (
                f"nonempty_states: reference {sorted(nonempty_ref)} !="
                f" dense {sorted(nonempty_fast)}"
            )
        if empty_ref != empty_fast:
            return (
                f"product emptiness verdict: reference empty={empty_ref},"
                f" dense empty={empty_fast}"
            )
        return None

    def to_artifact(self, subject) -> dict[str, Any]:
        nfa_a, nfa_b, aut_a, aut_b, complemented, nba, formula = subject
        return {
            "nfa_a": _nfa_to_json(nfa_a),
            "nfa_b": _nfa_to_json(nfa_b),
            "aut_a": to_hoa(aut_a),
            "aut_b": to_hoa(aut_b),
            "letters": "".join(str(s) for s in aut_a.alphabet),
            "complemented": complemented,
            "nba": _nba_to_json(nba),
            "formula": repr(formula),
        }

    def from_artifact(self, artifact):
        alphabet = Alphabet.from_letters(artifact["letters"])
        nba_data = artifact.get("nba")
        nba = (
            _nba_from_json(nba_data, alphabet)
            if nba_data is not None
            else _nba_from_json(
                {"num_states": 1, "edges": [], "initials": [0], "accepting": []},
                alphabet,
            )
        )
        formula = parse_formula(artifact.get("formula", "a"))
        return (
            _nfa_from_json(artifact["nfa_a"], alphabet),
            _nfa_from_json(artifact["nfa_b"], alphabet),
            from_hoa(artifact["aut_a"], alphabet=alphabet),
            from_hoa(artifact["aut_b"], alphabet=alphabet),
            artifact["complemented"],
            nba,
            formula,
        )

    def describe(self, subject) -> str:
        nfa_a, nfa_b, aut_a, aut_b, complemented, nba, formula = subject
        return (
            f"NFAs {nfa_a.num_states}/{nfa_b.num_states} states,"
            f" ω-automata {aut_a.num_states}/{aut_b.num_states} states,"
            f" NBA {nba.num_states} states, formula {formula!r},"
            f" complemented={complemented}"
        )


# ---------------------------------------------------------------------------
# 6. Vectorized fleet vs. per-stream scalar monitors
# ---------------------------------------------------------------------------


class FleetOracle(Oracle):
    """The vectorized fleet against a loop of scalar monitors, batch by batch.

    One generated formula, N streams, a random sequence of event batches in
    every shape the fleet accepts (broadcast, aligned row, sparse pairs,
    sparse columns — with duplicate stream ids and empty batches included).
    After *every* batch the pure-Python fleet, the numpy fleet (when numpy
    is importable) and N independent :class:`PrefixMonitor`\\ s must agree
    on the full verdict vector and on every stream's position.  This is the
    sticky-verdict contract: the fleet freezes a stream's verdict the
    moment it decides, the scalar monitor re-derives it from the state, and
    the two only coincide because the decided regions are successor-closed.
    """

    name = "fleet"
    routes = (
        "per-stream PrefixMonitor loop",
        "pure-python fleet",
        "numpy fleet (when importable)",
    )

    _KINDS = ("all", "row", "events", "columns")

    def generate(self, rng: random.Random, config: GeneratorConfig):
        formula = random_formula(rng, config.propositions, config.max_depth)
        props = tuple(config.propositions)
        symbols = tuple(Alphabet.powerset_of_propositions(list(props)))
        streams = rng.randrange(2, 6)
        batches = []
        for _ in range(rng.randrange(1, 7)):
            kind = rng.choice(self._KINDS)
            if kind == "all":
                batches.append(("all", rng.choice(symbols)))
            elif kind == "row":
                batches.append(
                    ("row", tuple(rng.choice(symbols) for _ in range(streams)))
                )
            else:
                count = rng.randrange(0, 2 * streams + 1)
                ids = tuple(rng.randrange(streams) for _ in range(count))
                syms = tuple(rng.choice(symbols) for _ in range(count))
                if kind == "events":
                    batches.append(("events", tuple(zip(ids, syms))))
                else:
                    batches.append(("columns", (ids, syms)))
        return formula, props, streams, tuple(batches)

    @staticmethod
    def _apply_scalar(monitors, kind, payload) -> None:
        if kind == "all":
            for monitor in monitors:
                monitor.step(payload)
        elif kind == "row":
            for monitor, symbol in zip(monitors, payload):
                monitor.step(symbol)
        elif kind == "events":
            for stream, symbol in payload:
                monitors[stream].step(symbol)
        else:
            for stream, symbol in zip(*payload):
                monitors[stream].step(symbol)

    @staticmethod
    def _apply_fleet(fleet, kind, payload) -> None:
        if kind == "all":
            fleet.step_broadcast(payload)
        elif kind == "row":
            fleet.step_aligned(payload)
        elif kind == "events":
            fleet.step_events(payload)
        else:
            fleet.step_events_columns(*payload)

    def check(self, subject) -> str | None:
        from repro.fleet.compile import HAVE_NUMPY, CompiledMonitor
        from repro.fleet.fleet import MonitorFleet

        formula, props, streams, batches = subject
        alphabet = Alphabet.powerset_of_propositions(list(props))
        compiled = CompiledMonitor(formula_to_automaton(formula, alphabet))
        monitors = [
            PrefixMonitor(compiled.automaton, compiled=compiled)
            for _ in range(streams)
        ]
        fleets = {"pure": MonitorFleet(compiled, streams, backend="pure")}
        if HAVE_NUMPY:
            fleets["numpy"] = MonitorFleet(compiled, streams, backend="numpy")
        for index, (kind, payload) in enumerate(batches):
            self._apply_scalar(monitors, kind, payload)
            expected_verdicts = [monitor.verdict for monitor in monitors]
            expected_positions = [monitor.position for monitor in monitors]
            for backend, fleet in fleets.items():
                self._apply_fleet(fleet, kind, payload)
                if fleet.verdicts() != expected_verdicts:
                    return (
                        f"{formula!r}: {backend} fleet verdicts"
                        f" {[v.value for v in fleet.verdicts()]} != scalar"
                        f" {[v.value for v in expected_verdicts]} after"
                        f" batch {index} ({kind})"
                    )
                if fleet.positions() != expected_positions:
                    return (
                        f"{formula!r}: {backend} fleet positions"
                        f" {fleet.positions()} != scalar {expected_positions}"
                        f" after batch {index} ({kind})"
                    )
        return None

    def shrink(self, subject):
        formula, props, streams, batches = subject
        # Drop batches greedily from the end, then shrink the formula.
        kept = list(batches)
        index = len(kept) - 1
        while index >= 0 and len(kept) > 1:
            candidate = kept[:index] + kept[index + 1 :]
            if self.check((formula, props, streams, tuple(candidate))) is not None:
                kept = candidate
            index -= 1
        shrunk = shrink_formula(
            formula, lambda f: self.check((f, props, streams, tuple(kept))) is not None
        )
        return shrunk, props, streams, tuple(kept)

    def to_artifact(self, subject) -> dict[str, Any]:
        from repro.fleet.stream import symbol_to_json

        formula, props, streams, batches = subject
        encoded = []
        for kind, payload in batches:
            if kind == "all":
                encoded.append(["all", symbol_to_json(payload)])
            elif kind == "row":
                encoded.append(["row", [symbol_to_json(s) for s in payload]])
            elif kind == "events":
                encoded.append(
                    ["events", [[i, symbol_to_json(s)] for i, s in payload]]
                )
            else:
                ids, syms = payload
                encoded.append(
                    ["columns", [list(ids), [symbol_to_json(s) for s in syms]]]
                )
        return {
            "formula": repr(formula),
            "props": list(props),
            "streams": streams,
            "batches": encoded,
        }

    def from_artifact(self, artifact):
        from repro.fleet.stream import symbol_from_json

        batches = []
        for kind, payload in artifact["batches"]:
            if kind == "all":
                batches.append(("all", symbol_from_json(payload)))
            elif kind == "row":
                batches.append(("row", tuple(symbol_from_json(s) for s in payload)))
            elif kind == "events":
                batches.append(
                    ("events", tuple((i, symbol_from_json(s)) for i, s in payload))
                )
            else:
                ids, syms = payload
                batches.append(
                    (
                        "columns",
                        (tuple(ids), tuple(symbol_from_json(s) for s in syms)),
                    )
                )
        return (
            parse_formula(artifact["formula"]),
            tuple(artifact["props"]),
            artifact["streams"],
            tuple(batches),
        )

    def describe(self, subject) -> str:
        formula, _props, streams, batches = subject
        return f"{formula!r} × {streams} streams × {len(batches)} batch(es)"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

ORACLES: dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        FormulaLassoOracle(),
        FormulaClassOracle(),
        LinguisticOracle(),
        AutomatonOracle(),
        FastpathOracle(),
        FleetOracle(),
    )
}


def oracle_named(name: str) -> Oracle:
    try:
        return ORACLES[name]
    except KeyError:
        known = ", ".join(sorted(ORACLES))
        raise ValueError(f"unknown oracle {name!r}; known oracles: {known}") from None
