"""Seeded, size-bounded random generators for every object the library handles.

All generators are driven by an explicit ``random.Random`` (never the global
module state), extending the seedable :func:`repro.finitary.dfa.random_dfa`
idiom so every fuzz case, benchmark and property test replays from one
integer.  Sizes are bounded by a :class:`GeneratorConfig`; the defaults keep
single cases in the low milliseconds so a few hundred fit in a smoke run.

Formula generation respects the library's supported fragment: past operators
are only applied to pure-past operands (the translators reject future
operators nested inside past ones, and the paper's normal forms never need
them).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.classes import TemporalClass
from repro.finitary.dfa import random_dfa
from repro.finitary.language import FinitaryLanguage
from repro.finitary.nfa import NFA
from repro.logic.ast import (
    FALSE,
    TRUE,
    Always,
    And,
    Eventually,
    Formula,
    Historically,
    Next,
    Not,
    Once,
    Or,
    Previous,
    Prop,
    Release,
    Since,
    Unless,
    Until,
    WeakPrevious,
)
from repro.omega.acceptance import Acceptance
from repro.omega.automaton import DetAutomaton
from repro.words.alphabet import Alphabet
from repro.words.lasso import LassoWord


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Size bounds shared by every generator (small by design)."""

    letters: str = "ab"
    max_depth: int = 3
    max_states: int = 5
    max_pairs: int = 2
    max_stem: int = 3
    max_loop: int = 3
    lasso_samples: int = 8

    @property
    def alphabet(self) -> Alphabet:
        return Alphabet.from_letters(self.letters)

    @property
    def propositions(self) -> tuple[str, ...]:
        return tuple(self.letters)


def coerce_rng(rng: random.Random | int | None) -> random.Random:
    """Accept a ``Random``, an integer seed, or ``None`` (seed 0)."""
    if isinstance(rng, random.Random):
        return rng
    return random.Random(0 if rng is None else rng)


def derive_rng(seed: int, *parts: object) -> random.Random:
    """A ``Random`` derived from ``seed`` and a structured key, not a stream.

    Sequential generators (one ``Random(seed)`` shared by a whole run) make
    every draw depend on every earlier draw — fine in one process, but fatal
    the moment generation fans out over a worker pool: under the ``spawn``
    start method each worker would reseed from scratch (or worse, from a
    per-worker offset), so the generated family depends on the platform's
    start method and on how tasks happened to be partitioned.

    Deriving one ``Random`` per generated object from ``(seed, *parts)``
    — e.g. ``derive_rng(1990, "mixed", 17)`` for the 17th mixed-family
    formula — removes the order dependence entirely: the i-th formula of a
    family is the same under ``fork``, ``spawn``, serial generation, or any
    worker partition.  String seeding hashes with SHA-512 internally, so the
    derivation is stable across platforms and ``PYTHONHASHSEED`` values.
    """
    key = ":".join(str(part) for part in (seed, *parts))
    return random.Random(key)


# ---------------------------------------------------------------------------
# Words
# ---------------------------------------------------------------------------


def random_lasso(
    rng: random.Random,
    alphabet: Alphabet,
    max_stem: int = 3,
    max_loop: int = 3,
) -> LassoWord:
    """A random ultimately-periodic word ``u · v^ω`` within the size bounds."""
    symbols = list(alphabet)
    stem = [rng.choice(symbols) for _ in range(rng.randrange(0, max_stem + 1))]
    loop = [rng.choice(symbols) for _ in range(rng.randrange(1, max_loop + 1))]
    return LassoWord(stem, loop)


def random_lasso_sample(
    rng: random.Random, config: GeneratorConfig
) -> tuple[LassoWord, ...]:
    """A deduplicated sample of lasso words used as a membership probe."""
    sample: dict[LassoWord, None] = {}
    for _ in range(config.lasso_samples):
        sample[random_lasso(rng, config.alphabet, config.max_stem, config.max_loop)] = None
    return tuple(sample)


# ---------------------------------------------------------------------------
# Formulae
# ---------------------------------------------------------------------------

_PAST_UNARY = (Previous, WeakPrevious, Once, Historically)
_FUTURE_UNARY = (Next, Eventually, Always)
_FUTURE_BINARY = (Until, Unless, Release)


def _random_atom(rng: random.Random, props: Sequence[str]) -> Formula:
    choice = rng.randrange(len(props) + 2)
    if choice < len(props):
        return Prop(props[choice])
    return TRUE if choice == len(props) else FALSE


def random_past_formula(
    rng: random.Random, props: Sequence[str], depth: int
) -> Formula:
    """A random pure-past formula (atoms, boolean operators, Y/Z/S/O/H)."""
    if depth <= 0:
        return _random_atom(rng, props)
    kind = rng.randrange(8)
    if kind < 2:
        return _random_atom(rng, props)
    if kind == 2:
        return Not(random_past_formula(rng, props, depth - 1))
    if kind == 3:
        return And(
            (
                random_past_formula(rng, props, depth - 1),
                random_past_formula(rng, props, depth - 1),
            )
        )
    if kind == 4:
        return Or(
            (
                random_past_formula(rng, props, depth - 1),
                random_past_formula(rng, props, depth - 1),
            )
        )
    if kind == 5:
        return Since(
            random_past_formula(rng, props, depth - 1),
            random_past_formula(rng, props, depth - 1),
        )
    op = rng.choice(_PAST_UNARY)
    return op(random_past_formula(rng, props, depth - 1))


def random_formula(
    rng: random.Random,
    props: Sequence[str],
    depth: int,
    *,
    past_probability: float = 0.25,
) -> Formula:
    """A random LTL+Past formula inside the supported fragment.

    With probability ``past_probability`` a node dives into the pure-past
    sub-grammar (after which no future operator appears below it), so the
    output never nests future operators inside past ones.
    """
    if depth <= 0:
        return _random_atom(rng, props)
    if past_probability and rng.random() < past_probability:
        return random_past_formula(rng, props, depth)
    kind = rng.randrange(9)
    if kind < 2:
        return _random_atom(rng, props)
    if kind == 2:
        return Not(random_formula(rng, props, depth - 1, past_probability=past_probability))
    if kind == 3:
        return And(
            (
                random_formula(rng, props, depth - 1, past_probability=past_probability),
                random_formula(rng, props, depth - 1, past_probability=past_probability),
            )
        )
    if kind == 4:
        return Or(
            (
                random_formula(rng, props, depth - 1, past_probability=past_probability),
                random_formula(rng, props, depth - 1, past_probability=past_probability),
            )
        )
    if kind == 5:
        op = rng.choice(_FUTURE_BINARY)
        return op(
            random_formula(rng, props, depth - 1, past_probability=past_probability),
            random_formula(rng, props, depth - 1, past_probability=past_probability),
        )
    op = rng.choice(_FUTURE_UNARY)
    return op(random_formula(rng, props, depth - 1, past_probability=past_probability))


def random_normal_form_formula(
    rng: random.Random,
    props: Sequence[str],
    temporal_class: TemporalClass,
    *,
    depth: int = 2,
    max_conjuncts: int = 2,
) -> Formula:
    """A random formula in the κ-normal form of the given class (§4).

    Safety ``□p``, guarantee ``◇p``, obligation ``⋀(□pᵢ ∨ ◇qᵢ)``,
    recurrence ``□◇p``, persistence ``◇□p``, reactivity
    ``⋀(□◇pᵢ ∨ ◇□qᵢ)`` — all bodies pure-past.
    """
    past = lambda: random_past_formula(rng, props, depth)
    if temporal_class is TemporalClass.SAFETY:
        return Always(past())
    if temporal_class is TemporalClass.GUARANTEE:
        return Eventually(past())
    if temporal_class is TemporalClass.RECURRENCE:
        return Always(Eventually(past()))
    if temporal_class is TemporalClass.PERSISTENCE:
        return Eventually(Always(past()))
    if temporal_class is TemporalClass.OBLIGATION:
        conjuncts = tuple(
            Or((Always(past()), Eventually(past())))
            for _ in range(rng.randrange(1, max_conjuncts + 1))
        )
        return conjuncts[0] if len(conjuncts) == 1 else And(conjuncts)
    conjuncts = tuple(
        Or((Always(Eventually(past())), Eventually(Always(past()))))
        for _ in range(rng.randrange(1, max_conjuncts + 1))
    )
    return conjuncts[0] if len(conjuncts) == 1 else And(conjuncts)


# ---------------------------------------------------------------------------
# Finitary automata
# ---------------------------------------------------------------------------


def random_language(
    rng: random.Random, alphabet: Alphabet, max_states: int = 5
) -> FinitaryLanguage:
    """A random finitary property ``Φ ⊆ Σ⁺`` (minimized, empty word dropped)."""
    return FinitaryLanguage(random_dfa(alphabet, rng.randrange(2, max_states + 1), rng))


def random_nfa(
    rng: random.Random,
    alphabet: Alphabet,
    num_states: int,
    *,
    density: float = 0.35,
    epsilon_density: float = 0.1,
) -> NFA:
    """A random NFA with ε-moves; at least one transition per (state, symbol)
    frontier is not guaranteed, so determinization exercises the ∅-trap."""
    transitions: dict[tuple[int, object], set[int]] = {}
    for state in range(num_states):
        for symbol in alphabet:
            targets = {t for t in range(num_states) if rng.random() < density}
            if targets:
                transitions[(state, symbol)] = targets
    epsilon = {
        state: targets
        for state in range(num_states)
        if (targets := {t for t in range(num_states) if t != state and rng.random() < epsilon_density})
    }
    initials = [rng.randrange(num_states)]
    accepting = [s for s in range(num_states) if rng.random() < 0.4]
    return NFA(alphabet, num_states, transitions, initials, accepting, epsilon)


# ---------------------------------------------------------------------------
# Deterministic ω-automata
# ---------------------------------------------------------------------------


def random_det_automaton(
    rng: random.Random,
    alphabet: Alphabet,
    max_states: int = 5,
    max_pairs: int = 2,
) -> DetAutomaton:
    """A random complete deterministic Streett/Rabin/Büchi/co-Büchi automaton."""
    n = rng.randrange(1, max_states + 1)
    rows = [[rng.randrange(n) for _ in alphabet] for _ in range(n)]
    subset = lambda: [s for s in range(n) if rng.random() < 0.5]
    kind = rng.choice(("buchi", "cobuchi", "streett", "rabin"))
    if kind == "buchi":
        acceptance = Acceptance.buchi(subset())
    elif kind == "cobuchi":
        acceptance = Acceptance.cobuchi(subset())
    elif kind == "streett":
        acceptance = Acceptance.streett(
            [(subset(), subset()) for _ in range(rng.randrange(1, max_pairs + 1))]
        )
    else:
        acceptance = Acceptance.rabin(
            [(subset(), subset()) for _ in range(rng.randrange(1, max_pairs + 1))]
        )
    return DetAutomaton(alphabet, rows, 0, acceptance)


def random_nba(
    rng: random.Random,
    alphabet: Alphabet,
    max_states: int = 8,
    *,
    density: float = 0.45,
):
    """A random nondeterministic Büchi automaton (sparse relation).

    Sparse on purpose: missing (state, symbol) rows exercise the dead-branch
    handling of both Safra routes, and low densities keep the deterministic
    blowup bounded for differential runs.
    """
    from repro.omega.buchi import NBA

    n = rng.randrange(1, max_states + 1)
    transitions: dict[tuple[int, object], frozenset[int]] = {}
    for state in range(n):
        for symbol in alphabet:
            targets = frozenset(t for t in range(n) if rng.random() < density)
            if targets:
                transitions[(state, symbol)] = targets
    accepting = [q for q in range(n) if rng.random() < 0.5]
    return NBA(alphabet, n, transitions, [rng.randrange(n)], accepting)
