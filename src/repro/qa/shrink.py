"""Greedy structural shrinking of failing fuzz inputs.

Every shrinker takes the failing object and a ``still_fails`` predicate (the
oracle re-check) and repeatedly applies the *first* strictly-smaller variant
that still fails, until no variant does.  The candidate moves mirror the
object's structure:

* formulae  — replace any node by one of its children, or by ``true``/
  ``false`` (dropping an ``∧``/``∨`` operand is the child-replacement at the
  connective);
* lassos    — delete single stem/loop symbols, drop the stem wholesale;
* automata  — drop acceptance pairs, thin acceptance sets, merge a state
  into another (redirecting its in-edges) and trim.

Greedy first-improvement keeps the oracle-call count linear in the number of
accepted moves times the candidate count, which is what makes shrinking
affordable inside a fuzz budget: counterexamples land in ``qa/corpus/`` as
minimal artifacts a human can read.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.logic.ast import FALSE, TRUE, And, Formula, Or
from repro.omega.acceptance import Acceptance, Pair
from repro.omega.automaton import DetAutomaton
from repro.words.lasso import LassoWord


def _greedy(subject, candidates, size, still_fails):
    """Apply the first smaller still-failing candidate until a fixpoint."""
    current = subject
    improved = True
    while improved:
        improved = False
        for candidate in candidates(current):
            if size(candidate) >= size(current):
                continue
            try:
                fails = still_fails(candidate)
            except Exception:  # noqa: BLE001 — a crashing variant is not a repro
                continue
            if fails:
                current = candidate
                improved = True
                break
    return current


# ---------------------------------------------------------------------------
# Formulae
# ---------------------------------------------------------------------------


def formula_size(formula: Formula) -> int:
    """Node count with shared subterms deduplicated (the shrink measure)."""
    return len(formula.subformulas())


def _rebuild(formula: Formula, index: int, replacement: Formula) -> Formula:
    """The formula with child ``index`` replaced (nodes are immutable)."""
    children = list(formula.children())
    children[index] = replacement
    if isinstance(formula, (And, Or)):
        return type(formula)(tuple(children))
    if len(children) == 1:
        return type(formula)(children[0])
    return type(formula)(children[0], children[1])


def _formula_variants(formula: Formula) -> Iterator[Formula]:
    """Structurally smaller variants, roughly most-aggressive first."""
    children = formula.children()
    # Hoist any child over the root (covers dropping ∧/∨ operands too).
    for child in children:
        yield child
    # Collapse the whole formula to a constant.
    if formula not in (TRUE, FALSE):
        yield TRUE
        yield FALSE
    # Recurse: same root, one shrunk child.
    for index, child in enumerate(children):
        for variant in _formula_variants(child):
            yield _rebuild(formula, index, variant)


def shrink_formula(
    formula: Formula, still_fails: Callable[[Formula], bool]
) -> Formula:
    """Greedily minimize a failing formula under ``still_fails``."""
    return _greedy(formula, _formula_variants, formula_size, still_fails)


# ---------------------------------------------------------------------------
# Lasso words
# ---------------------------------------------------------------------------


def lasso_size(lasso: LassoWord) -> int:
    return len(lasso.stem) + len(lasso.loop)


def _lasso_variants(lasso: LassoWord) -> Iterator[LassoWord]:
    stem, loop = lasso.stem, lasso.loop
    if stem:
        yield LassoWord((), loop)
        for index in range(len(stem)):
            yield LassoWord(stem[:index] + stem[index + 1 :], loop)
    if len(loop) > 1:
        for index in range(len(loop)):
            yield LassoWord(stem, loop[:index] + loop[index + 1 :])
        for symbol in dict.fromkeys(loop):
            yield LassoWord(stem, (symbol,))


def shrink_lasso(
    lasso: LassoWord, still_fails: Callable[[LassoWord], bool]
) -> LassoWord:
    """Greedily minimize a failing lasso word (shorter stem, then loop)."""
    return _greedy(lasso, _lasso_variants, lasso_size, still_fails)


# ---------------------------------------------------------------------------
# Deterministic ω-automata
# ---------------------------------------------------------------------------


def automaton_size(aut: DetAutomaton) -> int:
    acceptance_weight = sum(len(p.left) + len(p.right) for p in aut.acceptance.pairs)
    return aut.num_states * 100 + len(aut.acceptance.pairs) * 10 + acceptance_weight


def _merge_state(aut: DetAutomaton, victim: int, target: int) -> DetAutomaton:
    """Redirect every edge into ``victim`` to ``target``, then trim.

    The victim's row stays in place so state numbering is untouched;
    ``trim`` drops it once it becomes unreachable.
    """
    rows = [
        [target if t == victim else t for t in row]
        for row in aut._delta  # noqa: SLF001 — qa is in-tree
    ]
    redirected = DetAutomaton(
        aut.alphabet,
        rows,
        target if aut.initial == victim else aut.initial,
        aut.acceptance,
    )
    return redirected.trim()


def _automaton_variants(aut: DetAutomaton) -> Iterator[DetAutomaton]:
    pairs = aut.acceptance.pairs
    # Drop whole acceptance pairs.
    if len(pairs) > 1:
        for index in range(len(pairs)):
            remaining = pairs[:index] + pairs[index + 1 :]
            yield aut.with_acceptance(Acceptance(aut.acceptance.kind, remaining))
    # Thin individual acceptance sets one state at a time.
    for index, pair in enumerate(pairs):
        for side in ("left", "right"):
            members = getattr(pair, side)
            for state in sorted(members):
                shrunk = frozenset(members) - {state}
                new_pair = (
                    Pair(shrunk, pair.right) if side == "left" else Pair(pair.left, shrunk)
                )
                new_pairs = pairs[:index] + (new_pair,) + pairs[index + 1 :]
                yield aut.with_acceptance(Acceptance(aut.acceptance.kind, new_pairs))
    # Merge states pairwise (redirect + trim shrinks the reachable core).
    if aut.num_states > 1:
        for victim in aut.states:
            for target in aut.states:
                if victim == target:
                    continue
                yield _merge_state(aut, victim, target)


def shrink_automaton(
    aut: DetAutomaton, still_fails: Callable[[DetAutomaton], bool]
) -> DetAutomaton:
    """Greedily minimize a failing deterministic ω-automaton."""
    return _greedy(aut, _automaton_variants, automaton_size, still_fails)
