"""Parallel (interleaving) composition of fair transition systems.

The paper's reactive-systems setting treats a concurrent program as one
fair transition system whose transitions interleave those of its
components (§1: each component is studied through its interaction).  This
module builds that composition mechanically: product states, component
transitions lifted to act on their side only, fairness preserved.

Proposition names of the two components must be disjoint (rename with
:func:`prefixed` if needed); the composite label is the union.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.systems.fts import FairTransitionSystem, State, Transition


def _lift(transition: Transition, side: int) -> Transition:
    def guard(state: tuple[State, State]) -> bool:
        return transition.guard(state[side])

    def apply(state: tuple[State, State]):
        for changed in transition.apply(state[side]):
            if side == 0:
                yield (changed, state[1])
            else:
                yield (state[0], changed)

    return Transition(transition.name, guard, apply, transition.fairness)


def interleave(
    left: FairTransitionSystem, right: FairTransitionSystem, *, name: str | None = None
) -> FairTransitionSystem:
    """The asynchronous product ``left ∥ right``."""
    shared = left.propositions & right.propositions
    if shared:
        raise ReproError(
            f"components share propositions {sorted(shared)}; rename with prefixed()"
        )
    duplicate_names = {t.name for t in left.transitions} & {t.name for t in right.transitions}
    if duplicate_names:
        raise ReproError(
            f"components share transition names {sorted(duplicate_names)}; "
            "rename with prefixed()"
        )

    transitions = [_lift(t, 0) for t in left.transitions] + [
        _lift(t, 1) for t in right.transitions
    ]

    def labeling(state: tuple[State, State]) -> frozenset[str]:
        return left.label(state[0]) | right.label(state[1])

    return FairTransitionSystem(
        name=name or f"{left.name}||{right.name}",
        initial_states=[
            (l, r) for l in left.initial_states for r in right.initial_states
        ],
        transitions=transitions,
        labeling=labeling,
        propositions=left.propositions | right.propositions,
    )


def prefixed(system: FairTransitionSystem, prefix: str) -> FairTransitionSystem:
    """Rename every proposition and transition with ``prefix_`` — the
    standard preparation for composing two copies of the same component."""
    mapping = {prop: f"{prefix}_{prop}" for prop in system.propositions}
    transitions = [
        Transition(f"{prefix}_{t.name}", t.guard, t.apply, t.fairness)
        for t in system.transitions
    ]

    def labeling(state: State) -> frozenset[str]:
        return frozenset(mapping[prop] for prop in system.label(state))

    return FairTransitionSystem(
        name=f"{prefix}:{system.name}",
        initial_states=list(system.initial_states),
        transitions=transitions,
        labeling=labeling,
        propositions=frozenset(mapping.values()),
    )
