"""Deductive proof rules — the verification methodology the paper attaches
to the hierarchy (§1: safety by *computational induction*, liveness by
*well-founded induction*; see also [MP84, OL82]).

Unlike the model checker (which explores computations), these rules check
*local premises* — per-state and per-transition conditions — and certify
the temporal conclusion by the soundness of the rule.  The finite state
graph makes premise checking effective, but the shape of the argument is
exactly the paper's:

* **INV** (invariance, for safety ``□χ``): exhibit an inductive assertion
  ``φ`` with  (1) initial states satisfy φ,  (2) every transition preserves
  φ,  (3) φ implies χ.  The induction over positions is implicit.
* **RESP** (response, for recurrence ``□(p → ◇q)``): exhibit a ranking
  function ``δ`` into a well-founded order with  (1) every pending state
  (p seen, q not yet) has every successor ranked no higher,  (2) each
  pending state has some *helpful* weakly-fair transition whose every
  successor strictly decreases the rank or reaches q,  (3) the helpful
  transition stays enabled while pending at the same rank.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.systems.fts import Fairness, FairTransitionSystem, State

Assertion = Callable[[State], bool]
Ranking = Callable[[State], int]


@dataclass(frozen=True)
class ProofResult:
    """Premise-by-premise outcome; ``certified`` iff all premises hold."""

    rule: str
    conclusion: str
    premises: dict[str, bool] = field(hash=False)
    failures: tuple[str, ...] = ()

    @property
    def certified(self) -> bool:
        return all(self.premises.values())

    def __bool__(self) -> bool:
        return self.certified

    def describe(self) -> str:
        lines = [f"{self.rule}: {self.conclusion} — {'CERTIFIED' if self else 'NOT certified'}"]
        for name, verdict in self.premises.items():
            lines.append(f"  premise {name}: {'✓' if verdict else '✗'}")
        for failure in self.failures[:5]:
            lines.append(f"  counterexample: {failure}")
        return "\n".join(lines)


def invariance_rule(
    system: FairTransitionSystem,
    invariant: Assertion,
    goal: Assertion | None = None,
    *,
    name: str = "χ",
    universe=None,
) -> ProofResult:
    """The INV rule: certify ``□goal`` from an inductive ``invariant``.

    When ``goal`` is omitted the invariant itself is the goal.  Premises are
    checked over ``universe`` when given — the textbook setting, where
    inductiveness must hold on *all* states, making invariant strengthening
    necessary — and over the reachable graph otherwise.  The temporal
    conclusion follows by the implicit induction of §1; no computation is
    unrolled.
    """
    goal = goal or invariant
    failures: list[str] = []

    initially = all(invariant(state) for state in system.initial_states)
    if not initially:
        failures.append("an initial state violates the invariant")

    preserved = True
    if universe is None:
        step_space = [
            (state, edges) for state, edges in system.state_graph().items()
        ]
    else:
        step_space = [
            (
                state,
                [
                    (t.name, target)
                    for t in system.transitions
                    for target in t.successors(state)
                ],
            )
            for state in universe
        ]
    for state, edges in step_space:
        if not invariant(state):
            continue
        for transition_name, target in edges:
            if not invariant(target):
                preserved = False
                failures.append(f"{transition_name}: {state!r} → {target!r} leaves the invariant")

    implies_goal = True
    goal_space = list(universe) if universe is not None else list(system.state_graph())
    for state in goal_space:
        if invariant(state) and not goal(state):
            implies_goal = False
            failures.append(f"{state!r} satisfies the invariant but not the goal")

    return ProofResult(
        rule="INV",
        conclusion=f"□{name}",
        premises={
            "initial states satisfy φ": initially,
            "every transition preserves φ": preserved,
            "φ → goal": implies_goal,
        },
        failures=tuple(failures),
    )


def response_rule(
    system: FairTransitionSystem,
    trigger: Assertion,
    goal: Assertion,
    ranking: Ranking,
    helpful: Callable[[State], str],
    *,
    name: str = "p → ◇q",
) -> ProofResult:
    """The RESP rule: certify ``□(trigger → ◇goal)`` from a ranking.

    ``helpful`` names, for each pending state, a weakly fair transition
    whose execution makes progress.  Premises (checked on the reachable
    graph; "pending" = reachable state satisfying ``trigger ∧ ¬goal`` or
    reachable from one without passing ``goal``):

    N1  every step from a pending state reaches ``goal`` or keeps the rank
        from increasing;
    N2  the helpful transition's every successor reaches ``goal`` or
        strictly decreases the rank;
    N3  the helpful transition is enabled at every pending state and is
        declared weakly fair.
    """
    graph = system.state_graph()

    # Pending region: forward closure of trigger∧¬goal states avoiding goal.
    pending: set[State] = set()
    frontier = [s for s in graph if trigger(s) and not goal(s)]
    pending.update(frontier)
    while frontier:
        state = frontier.pop()
        for _t, target in graph[state]:
            if not goal(target) and target not in pending:
                pending.add(target)
                frontier.append(target)

    failures: list[str] = []
    never_increases = True
    for state in pending:
        for transition_name, target in graph[state]:
            if goal(target):
                continue
            if ranking(target) > ranking(state):
                never_increases = False
                failures.append(
                    f"N1 {transition_name}: δ({state!r})={ranking(state)} "
                    f"rises to δ({target!r})={ranking(target)}"
                )

    helpful_decreases = True
    helpful_enabled = True
    helpful_fair = True
    for state in pending:
        transition_name = helpful(state)
        try:
            transition = system.transition_named(transition_name)
        except KeyError:
            helpful_enabled = False
            failures.append(f"N3 unknown helpful transition {transition_name!r} at {state!r}")
            continue
        if transition.fairness is Fairness.NONE:
            helpful_fair = False
            failures.append(f"N3 helpful transition {transition_name!r} carries no fairness")
        if not transition.enabled(state):
            helpful_enabled = False
            failures.append(f"N3 helpful {transition_name!r} disabled at {state!r}")
            continue
        for target in transition.successors(state):
            if goal(target):
                continue
            if ranking(target) >= ranking(state):
                helpful_decreases = False
                failures.append(
                    f"N2 helpful {transition_name!r} at {state!r} does not decrease δ"
                )

    return ProofResult(
        rule="RESP",
        conclusion=f"□({name})",
        premises={
            "N1 rank never increases while pending": never_increases,
            "N2 helpful step decreases the rank": helpful_decreases,
            "N3 helpful transition enabled when pending": helpful_enabled,
            "N3 helpful transition is fair": helpful_fair,
        },
        failures=tuple(failures),
    )
