"""Model checking ``S ⊨ φ`` for fair transition systems.

The check searches for a *fair counterexample*: an infinite computation of
the system, satisfying every weak/strong fairness requirement, whose word
over ``2^AP`` is accepted by the deterministic automaton of ``¬φ``.

Product nodes are ``(system state, automaton state, transition just
taken)``; fairness requirements become Streett pairs on the product
(weak ``τ``: infinitely often ``taken(τ) ∨ ¬En(τ)``; strong ``τ``:
``Inf taken(τ) ∨ inf ⊆ ¬En(τ)``) and the negation automaton's acceptance is
lifted per node.  Emptiness uses the same recursive Streett machinery as
the rest of the library, so the verdict comes with a concrete lasso
counterexample when the property fails.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.classifier import formula_to_automaton
from repro.logic.ast import Formula, Not
from repro.omega.acceptance import Kind, Pair
from repro.omega.emptiness import streett_good_components
from repro.systems.fts import Fairness, FairTransitionSystem, State


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a model-checking run."""

    holds: bool
    property_formula: Formula
    counterexample_stem: tuple[State, ...] | None = None
    counterexample_loop: tuple[State, ...] | None = None

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        if self.holds:
            return f"property {self.property_formula!r} HOLDS"
        stem = " → ".join(map(str, self.counterexample_stem or ()))
        loop = " → ".join(map(str, self.counterexample_loop or ()))
        return (
            f"property {self.property_formula!r} FAILS\n"
            f"  counterexample: {stem} ({loop})^ω"
        )


def check(system: FairTransitionSystem, formula: Formula) -> CheckResult:
    """Does every fair computation of ``system`` satisfy ``formula``?"""
    alphabet = system.alphabet()
    negation = formula_to_automaton(Not(formula), alphabet)
    graph = system.state_graph()

    # ---------------------------------------------------------- product build
    nodes: dict[tuple[State, int, str], int] = {}
    order: list[tuple[State, int, str]] = []
    edges: list[list[int]] = []

    def intern(node: tuple[State, int, str]) -> int:
        if node not in nodes:
            nodes[node] = len(order)
            order.append(node)
            edges.append([])
        return nodes[node]

    queue: deque[tuple[State, int, str]] = deque()
    roots: list[int] = []
    for initial in system.initial_states:
        automaton_state = negation.step(negation.initial, system.label(initial))
        node = (initial, automaton_state, "init")
        if node not in nodes:
            intern(node)
            queue.append(node)
        roots.append(nodes[node])
    explored = set(queue)
    while queue:
        node = queue.popleft()
        source = nodes[node]
        state, automaton_state, _taken = node
        for transition_name, target in graph[state]:
            next_automaton = negation.step(automaton_state, system.label(target))
            successor = (target, next_automaton, transition_name)
            target_id = intern(successor)
            edges[source].append(target_id)
            if successor not in explored:
                explored.add(successor)
                queue.append(successor)

    successors = lambda n: edges[n]
    num_nodes = len(order)

    # ------------------------------------------------------- fairness pairs
    fairness_pairs: list[Pair] = []
    for transition in system.transitions:
        if transition.fairness is Fairness.NONE:
            continue
        taken = frozenset(
            i for i, (_s, _q, name) in enumerate(order) if name == transition.name
        )
        disabled = frozenset(
            i for i, (s, _q, _n) in enumerate(order) if not transition.enabled(s)
        )
        if transition.fairness is Fairness.WEAK:
            # □◇(taken ∨ ¬En): a single Büchi requirement.
            fairness_pairs.append(Pair(taken | disabled, frozenset()))
        else:
            # □◇En → □◇taken  ≡  Inf(taken) ∨ inf ⊆ ¬En.
            fairness_pairs.append(Pair(taken, disabled))

    # -------------------------------------------- negation-acceptance cases
    acceptance = negation.acceptance

    def lift(states: frozenset[int]) -> frozenset[int]:
        return frozenset(i for i, (_s, q, _n) in enumerate(order) if q in states)

    if acceptance.kind is Kind.STREETT:
        cases = [(tuple(Pair(lift(p.left), lift(p.right)) for p in acceptance.pairs), ())]
    else:
        cases = [((), (Pair(lift(p.left), lift(p.right)),)) for p in acceptance.pairs]

    # ------------------------------------------------------------ emptiness
    reachable = _forward_reachable(roots, successors, num_nodes)
    for streett_case, rabin_case in cases:
        removed: frozenset[int] = frozenset()
        extra: list[Pair] = []
        for pair in rabin_case:
            removed |= pair.right
            extra.append(Pair(pair.left, frozenset()))
        arena = reachable - removed
        pairs = tuple(fairness_pairs) + tuple(streett_case) + tuple(extra)
        for component in streett_good_components(arena, successors, pairs):
            stem, loop = _witness_path(roots, component, successors, order)
            return CheckResult(
                holds=False,
                property_formula=formula,
                counterexample_stem=stem,
                counterexample_loop=loop,
            )
    return CheckResult(holds=True, property_formula=formula)


def _forward_reachable(roots, successors, num_nodes) -> frozenset[int]:
    seen = set(roots)
    queue = deque(roots)
    while queue:
        node = queue.popleft()
        for target in successors(node):
            if target not in seen:
                seen.add(target)
                queue.append(target)
    return frozenset(seen)


def _witness_path(roots, component, successors, order):
    """A stem reaching the component plus a covering loop, as state tuples."""

    def bfs(sources: list[int], goal: set[int], allowed: frozenset[int] | None) -> list[int]:
        parents: dict[int, int] = {}
        seen = set(sources)
        queue = deque(sources)
        while queue:
            node = queue.popleft()
            if node in goal:
                path = [node]
                while path[-1] in parents:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            for target in successors(node):
                if target in seen or (allowed is not None and target not in allowed):
                    continue
                seen.add(target)
                parents[target] = node
                queue.append(target)
        raise AssertionError("witness component must be reachable")

    stem_path = bfs(list(roots), set(component), None)
    anchor = stem_path[-1]
    # Covering loop within the component: visit every node then return.
    loop_path: list[int] = [anchor]
    current = anchor
    for target in sorted(component):
        if target == current:
            continue
        segment = bfs([current], {target}, component)
        loop_path.extend(segment[1:])
        current = target
    if current != anchor:
        segment = bfs([current], {anchor}, component)
        loop_path.extend(segment[1:])
    if len(loop_path) == 1:
        # singleton component: take its self-loop
        loop_path.append(anchor)
    stem_states = tuple(order[n][0] for n in stem_path[:-1])
    loop_states = tuple(order[n][0] for n in loop_path[:-1])
    return stem_states, loop_states or (order[anchor][0],)
