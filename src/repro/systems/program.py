"""A small guarded-command builder for fair transition systems.

States become named-variable environments instead of bare tuples; guards
and updates are written against dict views.  Example::

    system = (
        ProgramBuilder("counter")
        .declare("x", 0)
        .rule("tick", guard=lambda s: s["x"] < 3, update=lambda s: {"x": s["x"] + 1},
              fairness=Fairness.WEAK)
        .observe("done", lambda s: s["x"] == 3)
        .build()
    )
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Mapping

from repro.errors import ReproError
from repro.systems.fts import Fairness, FairTransitionSystem, Transition

Env = Mapping[str, Hashable]


class ProgramBuilder:
    """Accumulates variable declarations, rules and observations."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._variables: list[str] = []
        self._initial: dict[str, Hashable] = {}
        self._rules: list[Transition] = []
        self._observations: list[tuple[str, Callable[[Env], bool]]] = []

    # ------------------------------------------------------------- building

    def declare(self, variable: str, initial: Hashable) -> "ProgramBuilder":
        if variable in self._initial:
            raise ReproError(f"variable {variable!r} declared twice")
        self._variables.append(variable)
        self._initial[variable] = initial
        return self

    def rule(
        self,
        name: str,
        *,
        guard: Callable[[Env], bool],
        update: Callable[[Env], Mapping[str, Hashable]],
        fairness: Fairness = Fairness.NONE,
    ) -> "ProgramBuilder":
        variables = tuple(self._variables)

        def to_env(state: tuple) -> dict[str, Hashable]:
            return dict(zip(variables, state))

        def transition_guard(state: tuple) -> bool:
            return guard(to_env(state))

        def transition_apply(state: tuple) -> Iterable[tuple]:
            env = to_env(state)
            changes = update(env)
            unknown = set(changes) - set(variables)
            if unknown:
                raise ReproError(f"rule {name!r} updates undeclared variables {unknown}")
            env.update(changes)
            yield tuple(env[v] for v in variables)

        self._rules.append(Transition(name, transition_guard, transition_apply, fairness))
        return self

    def observe(self, proposition: str, predicate: Callable[[Env], bool]) -> "ProgramBuilder":
        self._observations.append((proposition, predicate))
        return self

    def build(self) -> FairTransitionSystem:
        if not self._variables:
            raise ReproError("a program needs at least one variable")
        variables = tuple(self._variables)
        observations = tuple(self._observations)

        def labeling(state: tuple) -> frozenset[str]:
            env = dict(zip(variables, state))
            return frozenset(prop for prop, predicate in observations if predicate(env))

        return FairTransitionSystem(
            name=self.name,
            initial_states=[tuple(self._initial[v] for v in variables)],
            transitions=list(self._rules),
            labeling=labeling,
            propositions=frozenset(prop for prop, _p in observations),
        )


# ---------------------------------------------------------------------------
# Classic systems built with the builder
# ---------------------------------------------------------------------------


def dining_philosophers(count: int = 3, *, strong: bool = True) -> FairTransitionSystem:
    """``count`` philosophers, atomic both-fork pickup.

    With *strong* fairness on each pickup, every hungry philosopher
    eventually eats; with only weak fairness neighbours can conspire so that
    the pickup is never continuously enabled — the classic starvation.
    Propositions: ``hungry_i`` and ``eating_i``.
    """
    builder = ProgramBuilder(f"philosophers-{count}")
    for index in range(count):
        builder.declare(f"state_{index}", "think")

    def neighbours(index: int) -> tuple[int, int]:
        return (index - 1) % count, (index + 1) % count

    pickup_fairness = Fairness.STRONG if strong else Fairness.WEAK
    for index in range(count):
        left, right = neighbours(index)

        builder.rule(
            f"hunger_{index}",
            guard=lambda env, i=index: env[f"state_{i}"] == "think",
            update=lambda env, i=index: {f"state_{i}": "hungry"},
        )
        builder.rule(
            f"pickup_{index}",
            guard=lambda env, i=index, l=left, r=right: (
                env[f"state_{i}"] == "hungry"
                and env[f"state_{l}"] != "eating"
                and env[f"state_{r}"] != "eating"
            ),
            update=lambda env, i=index: {f"state_{i}": "eating"},
            fairness=pickup_fairness,
        )
        builder.rule(
            f"putdown_{index}",
            guard=lambda env, i=index: env[f"state_{i}"] == "eating",
            update=lambda env, i=index: {f"state_{i}": "think"},
            fairness=Fairness.WEAK,
        )
        builder.observe(f"hungry_{index}", lambda env, i=index: env[f"state_{i}"] == "hungry")
        builder.observe(f"eating_{index}", lambda env, i=index: env[f"state_{i}"] == "eating")
    return builder.build()


def bounded_buffer(capacity: int = 2) -> FairTransitionSystem:
    """A producer/consumer pair around a bounded buffer.

    Propositions ``empty`` and ``full``.  Under weak fairness the buffer
    always drains after filling (``□(full → ◇¬full)``, a recurrence
    property) but need never become empty (``□◇empty`` fails) — a compact
    showcase of the recurrence/persistence distinction on a real system.
    """
    return (
        ProgramBuilder(f"bounded-buffer-{capacity}")
        .declare("count", 0)
        .rule(
            "produce",
            guard=lambda env: env["count"] < capacity,
            update=lambda env: {"count": env["count"] + 1},
            fairness=Fairness.WEAK,
        )
        .rule(
            "consume",
            guard=lambda env: env["count"] > 0,
            update=lambda env: {"count": env["count"] - 1},
            fairness=Fairness.WEAK,
        )
        .observe("empty", lambda env: env["count"] == 0)
        .observe("full", lambda env: env["count"] == capacity)
        .build()
    )
