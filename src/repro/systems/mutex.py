"""Mutual exclusion programs as fair transition systems (§1's running story).

Three systems, one narrative:

* :func:`trivial_mutex` — nobody ever enters the critical section.  It
  satisfies the safety half of the specification (``□¬(C₁ ∧ C₂)``) and
  violates accessibility — the paper's example of *underspecification*.
* :func:`peterson` — Peterson's algorithm.  Under weak fairness it satisfies
  both the safety and the accessibility (recurrence) properties.
* :func:`semaphore_mutex` — a semaphore-based protocol whose accessibility
  needs *strong* fairness on the semaphore acquisition (the paper's
  motivating example for compassion/simple reactivity).

States are tuples; propositions follow the paper: ``in_n1/in_t1/in_c1`` for
process 1's non-critical, trying, and critical locations, likewise for 2.
"""

from __future__ import annotations

from repro.systems.fts import Fairness, FairTransitionSystem, Transition

_PROPS = frozenset(
    {"in_n1", "in_t1", "in_c1", "in_n2", "in_t2", "in_c2"}
)


def _location_label(loc1: str, loc2: str) -> frozenset[str]:
    return frozenset({f"in_{loc1}1", f"in_{loc2}2"})


def trivial_mutex() -> FairTransitionSystem:
    """Both processes loop between non-critical and trying, never entering.

    The entry transitions simply do not exist; the system trivially keeps
    mutual exclusion while starving everyone.
    """

    def request(process: int) -> Transition:
        def guard(state) -> bool:
            return state[process] == "n"

        def apply(state):
            updated = list(state)
            updated[process] = "t"
            yield tuple(updated)

        return Transition(f"request{process + 1}", guard, apply, Fairness.WEAK)

    return FairTransitionSystem(
        name="trivial-mutex",
        initial_states=[("n", "n")],
        transitions=[request(0), request(1)],
        labeling=lambda state: _location_label(state[0], state[1]),
        propositions=_PROPS,
    )


def peterson() -> FairTransitionSystem:
    """Peterson's algorithm.

    State: ``(loc1, loc2, flag1, flag2, turn)``; locations ``n`` (non-
    critical), ``w`` (setting flag & yielding turn), ``t`` (busy wait),
    ``c`` (critical).  All transitions carry weak fairness except the
    *request* steps (a process may stay non-critical forever).
    """

    def make(process: int) -> list[Transition]:
        other = 1 - process
        suffix = str(process + 1)

        def at(state, loc: str) -> bool:
            return state[process] == loc

        def move(state, loc: str, **updates):
            values = {
                "loc1": state[0],
                "loc2": state[1],
                "flag1": state[2],
                "flag2": state[3],
                "turn": state[4],
            }
            values[f"loc{process + 1}"] = loc
            values.update(updates)
            return (values["loc1"], values["loc2"], values["flag1"], values["flag2"], values["turn"])

        def request_guard(state):
            return at(state, "n")

        def request_apply(state):
            yield move(state, "w")

        def claim_guard(state):
            return at(state, "w")

        def claim_apply(state):
            yield move(state, "t", **{f"flag{process + 1}": True, "turn": other})

        def enter_guard(state):
            other_flag = state[2 + other]
            return at(state, "t") and (not other_flag or state[4] == process)

        def enter_apply(state):
            yield move(state, "c")

        def exit_guard(state):
            return at(state, "c")

        def exit_apply(state):
            yield move(state, "n", **{f"flag{process + 1}": False})

        return [
            Transition(f"request{suffix}", request_guard, request_apply, Fairness.NONE),
            Transition(f"claim{suffix}", claim_guard, claim_apply, Fairness.WEAK),
            Transition(f"enter{suffix}", enter_guard, enter_apply, Fairness.WEAK),
            Transition(f"exit{suffix}", exit_guard, exit_apply, Fairness.WEAK),
        ]

    def labeling(state) -> frozenset[str]:
        loc_props = []
        for index, loc in enumerate(state[:2]):
            name = {"n": "n", "w": "t", "t": "t", "c": "c"}[loc]
            loc_props.append(f"in_{name}{index + 1}")
        return frozenset(loc_props)

    return FairTransitionSystem(
        name="peterson",
        initial_states=[("n", "n", False, False, 0)],
        transitions=make(0) + make(1),
        labeling=labeling,
        propositions=_PROPS,
    )


def semaphore_mutex(*, strong: bool = True) -> FairTransitionSystem:
    """Mutual exclusion through one binary semaphore.

    The acquisition transitions compete for the semaphore; with only weak
    fairness a process can starve (the scheduler may always serve the other
    request at the exact moments the semaphore is free), so accessibility
    requires *compassion*.  Pass ``strong=False`` to reproduce the
    starvation counterexample.
    """
    fairness = Fairness.STRONG if strong else Fairness.WEAK

    def make(process: int) -> list[Transition]:
        suffix = str(process + 1)

        def at(state, loc: str) -> bool:
            return state[process] == loc

        def move(state, loc: str, semaphore=None):
            updated = list(state)
            updated[process] = loc
            if semaphore is not None:
                updated[2] = semaphore
            return tuple(updated)

        return [
            Transition(
                f"request{suffix}",
                lambda state, at=at: at(state, "n"),
                lambda state, move=move: iter([move(state, "t")]),
                Fairness.NONE,
            ),
            Transition(
                f"acquire{suffix}",
                lambda state, at=at: at(state, "t") and state[2],
                lambda state, move=move: iter([move(state, "c", semaphore=False)]),
                fairness,
            ),
            Transition(
                f"release{suffix}",
                lambda state, at=at: at(state, "c"),
                lambda state, move=move: iter([move(state, "n", semaphore=True)]),
                Fairness.WEAK,
            ),
        ]

    return FairTransitionSystem(
        name="semaphore-mutex" + ("" if strong else "-weak"),
        initial_states=[("n", "n", True)],
        transitions=make(0) + make(1),
        labeling=lambda state: _location_label(state[0], state[1]),
        propositions=_PROPS,
    )


#: The paper's two-part mutual exclusion specification.
MUTUAL_EXCLUSION = "G !(in_c1 & in_c2)"
ACCESSIBILITY_1 = "G (in_t1 -> F in_c1)"
ACCESSIBILITY_2 = "G (in_t2 -> F in_c2)"
