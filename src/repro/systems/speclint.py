"""Specification linting: the paper's completeness check list (§1).

A property-list specification is classified property by property; the
report shows which hierarchy classes are covered and raises the paper's
warning when a specification is *safety-only* (the mutual-exclusion
underspecification trap: a do-nothing implementation satisfies it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classes import TemporalClass
from repro.core.classifier import FormulaReport, classify_formula
from repro.logic.ast import Formula
from repro.logic.parser import parse_formula
from repro.words.alphabet import Alphabet


@dataclass(frozen=True)
class SpecificationReport:
    """Per-property classes plus coverage diagnostics."""

    reports: tuple[FormulaReport, ...]

    @property
    def classes_used(self) -> frozenset[TemporalClass]:
        return frozenset(report.canonical_class for report in self.reports)

    @property
    def has_progress_requirement(self) -> bool:
        """Does any property go beyond the safety class?"""
        return any(report.canonical_class is not TemporalClass.SAFETY for report in self.reports)

    @property
    def has_liveness_requirement(self) -> bool:
        return any(report.is_liveness for report in self.reports)

    def warnings(self) -> list[str]:
        notes: list[str] = []
        if not self.reports:
            notes.append("the specification is empty")
            return notes
        if not self.has_progress_requirement:
            notes.append(
                "safety-only specification: a system that never does anything "
                "satisfies it (the paper's mutual-exclusion underspecification)"
            )
        if not self.has_liveness_requirement:
            notes.append(
                "no liveness property: every requirement constrains only finite "
                "behaviour; consider an accessibility/response property"
            )
        return notes

    def table(self) -> str:
        rows = [f"{'property':40s}  {'class':12s}  {'Borel':4s}  live"]
        for report in self.reports:
            rows.append(
                f"{str(report.formula)[:40]:40s}  "
                f"{report.canonical_class.value:12s}  "
                f"{report.canonical_class.borel_name:4s}  "
                f"{'yes' if report.is_liveness else 'no'}"
            )
        for note in self.warnings():
            rows.append(f"warning: {note}")
        return "\n".join(rows)


def lint_specification(
    properties: list[str | Formula], alphabet: Alphabet | None = None
) -> SpecificationReport:
    """Classify each property of a specification and report coverage.

    When no alphabet is given, one shared ``2^AP`` alphabet is built from
    the union of all mentioned propositions, so the classifications are
    mutually comparable.
    """
    formulas = [
        parse_formula(item) if isinstance(item, str) else item for item in properties
    ]
    if alphabet is None:
        propositions: set[str] = set()
        for formula in formulas:
            propositions |= formula.propositions()
        alphabet = Alphabet.powerset_of_propositions(propositions or {"p"})
    reports = tuple(classify_formula(formula, alphabet) for formula in formulas)
    return SpecificationReport(reports=reports)
