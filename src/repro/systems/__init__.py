"""Reactive systems: fair transition systems, model checking, specification
analysis — the verification side of the paper (§1, §4's examples)."""

from repro.systems.fts import FairTransitionSystem, Fairness, Transition
from repro.systems.modelcheck import CheckResult, check
from repro.systems.mutex import peterson, semaphore_mutex, trivial_mutex
from repro.systems.compose import interleave, prefixed
from repro.systems.program import ProgramBuilder, bounded_buffer, dining_philosophers
from repro.systems.proofrules import ProofResult, invariance_rule, response_rule
from repro.systems.speclint import SpecificationReport, lint_specification

__all__ = [
    "FairTransitionSystem",
    "Fairness",
    "Transition",
    "CheckResult",
    "check",
    "peterson",
    "semaphore_mutex",
    "trivial_mutex",
    "ProgramBuilder",
    "bounded_buffer",
    "dining_philosophers",
    "interleave",
    "prefixed",
    "ProofResult",
    "invariance_rule",
    "response_rule",
    "SpecificationReport",
    "lint_specification",
]
