"""Fair transition systems (the computational model of [MP83], §4).

A system is a set of guarded transitions over hashable states, with per-
transition *weak* (justice) or *strong* (compassion) fairness.  Computations
are infinite state sequences; a dedicated *idling* transition keeps
terminated or blocked states productive, exactly as the paper extends
finite computations by duplicate states.

The observable behaviour of a state is its set of propositions (the
``labeling``); a computation's word over ``2^AP`` is what temporal formulas
are evaluated on.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ReproError
from repro.words.alphabet import Alphabet

State = Hashable


class Fairness(Enum):
    NONE = "none"
    WEAK = "weak"  # justice: not forever enabled-but-never-taken
    STRONG = "strong"  # compassion: enabled infinitely often ⇒ taken infinitely often


@dataclass(frozen=True)
class Transition:
    """A guarded transition ``τ``: enabled states and their successors."""

    name: str
    guard: Callable[[State], bool]
    apply: Callable[[State], Iterable[State]]
    fairness: Fairness = Fairness.NONE

    def enabled(self, state: State) -> bool:
        return self.guard(state)

    def successors(self, state: State) -> list[State]:
        if not self.guard(state):
            return []
        return list(self.apply(state))


IDLE = "idle"


@dataclass
class FairTransitionSystem:
    """``⟨V, Θ, T, J, C⟩`` in the paper's notation, states kept abstract."""

    name: str
    initial_states: list[State]
    transitions: list[Transition]
    labeling: Callable[[State], frozenset[str]]
    propositions: frozenset[str]
    include_idling: bool = True
    _graph: dict[State, list[tuple[str, State]]] | None = field(default=None, repr=False)

    def alphabet(self) -> Alphabet:
        return Alphabet.powerset_of_propositions(self.propositions)

    def label(self, state: State) -> frozenset[str]:
        label = frozenset(self.labeling(state))
        if not label <= self.propositions:
            raise ReproError(f"state {state!r} labelled outside declared propositions")
        return label

    # ------------------------------------------------------------ exploration

    def state_graph(self) -> dict[State, list[tuple[str, State]]]:
        """Reachable states and their outgoing ``(transition name, target)``
        edges; the idling self-loop is added where requested (always on
        states with no enabled transition, so every path extends forever)."""
        if self._graph is not None:
            return self._graph
        graph: dict[State, list[tuple[str, State]]] = {}
        queue: deque[State] = deque(self.initial_states)
        seen = set(self.initial_states)
        while queue:
            state = queue.popleft()
            edges: list[tuple[str, State]] = []
            for transition in self.transitions:
                for target in transition.successors(state):
                    edges.append((transition.name, target))
                    if target not in seen:
                        seen.add(target)
                        queue.append(target)
            if self.include_idling or not edges:
                edges.append((IDLE, state))
            graph[state] = edges
        self._graph = graph
        return graph

    def reachable_states(self) -> list[State]:
        return list(self.state_graph())

    def transition_named(self, name: str) -> Transition:
        for transition in self.transitions:
            if transition.name == name:
                return transition
        raise KeyError(name)

    def enabled_transitions(self, state: State) -> list[Transition]:
        return [t for t in self.transitions if t.enabled(state)]

    def deadlock_states(self) -> list[State]:
        """Reachable states with no enabled (non-idling) transition."""
        return [
            state
            for state in self.state_graph()
            if not any(t.enabled(state) for t in self.transitions)
        ]

    def __hash__(self) -> int:
        return id(self)
