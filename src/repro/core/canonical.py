"""The canonical zoo: every example property the paper exhibits, with its
expected placement in the hierarchy.

These are the raw material of the FIG1/E3/E4/E10 experiments: strictness of
every inclusion edge in Figure 1 is demonstrated by classifying these
languages, and the graded families (``Obl_k``, the parity staircase) witness
the infinite subhierarchies inside obligation and reactivity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classes import TemporalClass
from repro.finitary.language import FinitaryLanguage
from repro.omega.acceptance import Acceptance
from repro.omega.automaton import DetAutomaton
from repro.omega.linguistic import a_of, e_of, p_of, r_of
from repro.words.alphabet import Alphabet, Symbol

#: The paper's default abstract alphabet.
AB = Alphabet.from_letters("ab")
ABCD = Alphabet.from_letters("abcd")


@dataclass(frozen=True)
class CanonicalProperty:
    """One named example with its paper-asserted classification."""

    name: str
    description: str
    automaton: DetAutomaton
    expected_class: TemporalClass
    expected_liveness: bool
    source: str


def _lang(regex: str, alphabet: Alphabet = AB) -> FinitaryLanguage:
    return FinitaryLanguage.from_regex(regex, alphabet)


def safety_example() -> CanonicalProperty:
    return CanonicalProperty(
        name="A(a+b*)",
        description="a^ω + a⁺b^ω — all prefixes stay in a⁺b*",
        automaton=a_of(_lang("a+b*")),
        expected_class=TemporalClass.SAFETY,
        expected_liveness=False,
        source="§2, the A operator example",
    )


def guarantee_example() -> CanonicalProperty:
    # E(a+b*) = aΣ^ω is clopen, so the *strict* guarantee witness needs a
    # non-closed open set: at least two b's.
    return CanonicalProperty(
        name="E(Σ*bΣ*b)",
        description="words containing at least two b's — open, not closed",
        automaton=e_of(_lang(".*b.*b")),
        expected_class=TemporalClass.GUARANTEE,
        expected_liveness=True,
        source="§2, the E operator",
    )


def recurrence_example() -> CanonicalProperty:
    return CanonicalProperty(
        name="R(Σ*b) = (a*b)^ω",
        description="infinitely many b's — G_δ, not F_σ, not closed/open",
        automaton=r_of(_lang(".*b")),
        expected_class=TemporalClass.RECURRENCE,
        expected_liveness=True,
        source="§2, the R operator; §3's G_δ example",
    )


def persistence_example() -> CanonicalProperty:
    return CanonicalProperty(
        name="P(Σ*b) = Σ*b^ω",
        description="eventually only b's — F_σ, not G_δ",
        automaton=p_of(_lang(".*b")),
        expected_class=TemporalClass.PERSISTENCE,
        expected_liveness=True,
        source="§2, the P operator",
    )


def obligation_example() -> CanonicalProperty:
    """§2's obligation display ``a*b^ω + Σ*·c·Σ^ω``, realized over {a,b} as
    ``a^ω ∪ (≥ 2 b's)`` — a union of a safety and a guarantee property that
    is neither."""
    automaton = a_of(_lang("a+")).union(e_of(_lang(".*b.*b")))
    return CanonicalProperty(
        name="A(a⁺) ∪ E(Σ*bΣ*b)",
        description="a^ω or at least two b's — strictly obligation",
        automaton=automaton,
        expected_class=TemporalClass.OBLIGATION,
        expected_liveness=True,
        source="§2, the obligation class",
    )


def simple_reactivity_example() -> CanonicalProperty:
    """``□◇p ∨ ◇□q`` with independent p, q over a four-letter alphabet
    (letters = valuations: n none, p, q, r both)."""
    alphabet = Alphabet.from_letters("npqr")
    p_states = {"p", "r"}
    q_states = {"q", "r"}

    automaton = DetAutomaton.build(
        alphabet,
        "n",
        lambda _state, symbol: symbol,
        lambda order: Acceptance.streett(
            [(
                [i for i, s in enumerate(order) if s in p_states],
                [i for i, s in enumerate(order) if s in q_states],
            )]
        ),
    )
    return CanonicalProperty(
        name="□◇p ∨ ◇□q",
        description="infinitely many p's or eventually always q — strictly reactivity",
        automaton=automaton,
        expected_class=TemporalClass.REACTIVITY,
        expected_liveness=True,
        source="§4, simple reactivity",
    )


def figure_1_zoo() -> list[CanonicalProperty]:
    """One strict witness per class — exactly Figure 1's six boxes."""
    return [
        safety_example(),
        guarantee_example(),
        obligation_example(),
        recurrence_example(),
        persistence_example(),
        simple_reactivity_example(),
    ]


# ---------------------------------------------------------------------------
# Graded families
# ---------------------------------------------------------------------------


def obligation_chain_family(k: int) -> DetAutomaton:
    """The canonical strict ``Obl_k`` witness: words over {a, c} whose number
    of c's is odd and smaller than 2k (the level-k set of the difference
    hierarchy over open sets).  States count c's, saturating at 2k."""
    top = 2 * k

    def successor(count: int, symbol: Symbol) -> int:
        return min(count + 1, top) if symbol == "c" else count

    return DetAutomaton.build_cobuchi(
        Alphabet.from_letters("ac"), 0, successor, lambda c: c % 2 == 1 and c < top
    )


def paper_obligation_family(k: int) -> DetAutomaton:
    """The paper's printed family ``[(Π + a*)d]^{k-1}·Π`` with
    ``Π = a^ω + (a+b)*cΣ^ω`` over {a,b,c,d}.

    NOTE (erratum, see EXPERIMENTS.md): because closed sets are closed under
    finite union, this language decomposes as (one closed set) ∪ (one open
    set) for *every* k, so it sits in ``Obl₁`` rather than strictly in
    ``Obl_k``; the experiments compute its degree as 1.
    """

    def successor(state: tuple[int, str], symbol: Symbol) -> tuple[int, str]:
        block, mode = state
        if mode in ("done", "sink"):
            return state
        if mode == "clean":
            if symbol == "a":
                return block, "clean"
            if symbol == "b":
                return block, "dirty"
            if symbol == "c":
                return block, "done"
            return (block + 1, "clean") if block + 1 < k else (block, "sink")
        if symbol == "c":
            return block, "done"
        if symbol == "d":
            return block, "sink"
        return block, "dirty"

    return DetAutomaton.build_buchi(
        ABCD, (0, "clean"), successor, lambda s: s[1] in ("clean", "done")
    )


def parity_staircase(n: int) -> DetAutomaton:
    """Letters ``1..2n``; accept iff the largest letter seen infinitely often
    is even — Wagner/Streett index exactly ``n`` (the strict reactivity
    subhierarchy of §4)."""
    letters = [str(i) for i in range(1, 2 * n + 1)]
    alphabet = Alphabet(letters)
    rows = [[int(letter) - 1 for letter in letters] for _ in letters]
    pairs = []
    for odd in range(1, 2 * n, 2):
        recurrent = [i for i in range(2 * n) if i + 1 > odd]
        persistent = [i for i in range(2 * n) if i + 1 < odd]
        pairs.append((recurrent, persistent))
    return DetAutomaton(alphabet, rows, 0, Acceptance.streett(pairs))


def first_letter_stabilizes() -> DetAutomaton:
    """§4's liveness-but-not-uniform-liveness property: the first letter
    eventually repeats forever ((p → ◇□q) ∧ (¬p → ◇□¬q) in spirit)."""

    def successor(state, symbol: Symbol):
        if state == "init":
            return (symbol, True)
        first, _matching = state
        return (first, symbol == first)

    return DetAutomaton.build_cobuchi(
        AB, "init", successor, lambda s: s != "init" and s[1]
    )


def doubled_first_letter() -> DetAutomaton:
    """§2's (erroneous) uniform-liveness counterexample
    ``aΣ*aaΣ^ω + bΣ*bbΣ^ω`` — actually uniformly live via σ' = aabb^ω."""
    return e_of(_lang("a.*aa|b.*bb"))
