"""The unified classifier: formula → automaton → exact hierarchy class.

``formula_to_automaton`` compiles any supported LTL+Past formula to a
deterministic ω-automaton, preferring the paper's own constructions:

* κ-normal-form formulae go through the deterministic past tester and the
  linguistic operators (``Sat(□p) = A(esat(p))`` etc., Prop 5.3) — no
  determinization needed, and the result is counter-free by construction;
* conjunctions of simple obligation / simple reactivity formulae become
  multi-pair Streett automata on products of testers;
* everything else takes the general pipeline: GPVW tableau → NBA → Safra →
  deterministic Rabin.

``classify_formula`` then runs the §5.1 decision procedures and returns the
combined semantic + syntactic report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classes import TemporalClass, Verdict
from repro.errors import ClassificationError
from repro.finitary.dfa import explore
from repro.logic.ast import And, Formula, Or
from repro.logic.classes import (
    SyntacticVerdict,
    analyze_syntax,
    is_guarantee_formula,
    is_persistence_formula,
    is_recurrence_formula,
    is_safety_formula,
    is_simple_obligation_formula,
    is_simple_reactivity_formula,
)
from repro.logic.semantics import esat_language
from repro.omega.acceptance import Acceptance, Kind, Pair
from repro.omega.automaton import DetAutomaton
from repro.omega.classify import classify as classify_automaton
from repro.omega.classify import obligation_degree, streett_index
from repro.omega.closure import is_uniform_liveness
from repro.omega.linguistic import a_of, e_of, p_of, r_of
from repro.words.alphabet import Alphabet, Symbol


def default_alphabet(formula: Formula) -> Alphabet:
    """``2^AP`` over the formula's propositions (one dummy prop if none)."""
    propositions = formula.propositions() or frozenset({"p"})
    return Alphabet.powerset_of_propositions(propositions)


def _split_disjuncts(formula: Formula) -> list[Formula]:
    return list(formula.operands) if isinstance(formula, Or) else [formula]


def _merge_safety_bodies(parts: list[Formula]) -> Formula:
    """``□p₁ ∨ □p₂ = □(■p₁ ∨ ■p₂)`` (§4's safety disjunction law)."""
    if len(parts) == 1:
        return parts[0]
    from repro.logic.ast import Historically

    return Or(tuple(Historically(part) for part in parts))


def _merge_guarantee_bodies(parts: list[Formula]) -> Formula:
    """``◇q₁ ∨ ◇q₂ = ◇(q₁ ∨ q₂)``."""
    return parts[0] if len(parts) == 1 else Or(tuple(parts))


def _merge_recurrence_bodies(parts: list[Formula]) -> Formula:
    """``□◇p₁ ∨ □◇p₂ = □◇(p₁ ∨ p₂)``."""
    return parts[0] if len(parts) == 1 else Or(tuple(parts))


def _merge_persistence_bodies(parts: list[Formula]) -> Formula:
    """``◇□q₁ ∨ ◇□q₂ = ◇□(q₂ ∨ ⊖(q₁ S (q₁ ∧ ¬q₂)))`` (§4), folded left."""
    from repro.logic.ast import And as AndNode
    from repro.logic.ast import Not as NotNode
    from repro.logic.ast import Previous, Since

    merged = parts[0]
    for part in parts[1:]:
        merged = Or(
            (part, Previous(Since(merged, AndNode((merged, NotNode(part))))))
        )
    return merged


def _simple_reactivity_pair(conjunct: Formula, alphabet: Alphabet) -> DetAutomaton:
    """``□◇p ∨ ◇□q`` as a one-pair Streett automaton on the tester product."""
    recurrence_parts = []
    persistence_parts = []
    for disjunct in _split_disjuncts(conjunct):
        if is_recurrence_formula(disjunct):
            recurrence_parts.append(disjunct.operand.operand)
        else:
            persistence_parts.append(disjunct.operand.operand)
    p_lang = (
        esat_language(_merge_recurrence_bodies(recurrence_parts), alphabet)
        if recurrence_parts
        else None
    )
    q_lang = (
        esat_language(_merge_persistence_bodies(persistence_parts), alphabet)
        if persistence_parts
        else None
    )
    if p_lang is None:
        return p_of(q_lang)
    if q_lang is None:
        return r_of(p_lang)
    dp, dq = p_lang.dfa, q_lang.dfa

    def successor(state: tuple[int, int], symbol: Symbol) -> tuple[int, int]:
        return dp.step(state[0], symbol), dq.step(state[1], symbol)

    rows, order = explore(alphabet, (dp.initial, dq.initial), successor)
    recurrent = frozenset(i for i, (sp, _sq) in enumerate(order) if sp in dp.accepting)
    persistent = frozenset(i for i, (_sp, sq) in enumerate(order) if sq in dq.accepting)
    return DetAutomaton(
        alphabet, rows, 0, Acceptance(Kind.STREETT, (Pair(recurrent, persistent),))
    )


def _simple_obligation_pair(conjunct: Formula, alphabet: Alphabet) -> DetAutomaton:
    """``□p ∨ ◇q`` as a co-Büchi automaton: a sticky "p never failed" bit and
    a sticky "q happened" latch; accept iff eventually always (latch ∨ ok)."""
    safety_parts = []
    guarantee_parts = []
    for disjunct in _split_disjuncts(conjunct):
        if is_safety_formula(disjunct):
            safety_parts.append(disjunct.operand)
        else:
            guarantee_parts.append(disjunct.operand)
    p_lang = (
        esat_language(_merge_safety_bodies(safety_parts), alphabet)
        if safety_parts
        else None
    )
    q_lang = (
        esat_language(_merge_guarantee_bodies(guarantee_parts), alphabet)
        if guarantee_parts
        else None
    )
    if p_lang is None:
        return e_of(q_lang)
    if q_lang is None:
        return a_of(p_lang)
    dp, dq = p_lang.dfa, q_lang.dfa

    State = tuple[int, int, bool, bool]

    def successor(state: State, symbol: Symbol) -> State:
        sp, sq, ok, latch = state
        sp2, sq2 = dp.step(sp, symbol), dq.step(sq, symbol)
        return sp2, sq2, ok and sp2 in dp.accepting, latch or sq2 in dq.accepting

    initial: State = (dp.initial, dq.initial, True, False)
    return DetAutomaton.build_cobuchi(
        alphabet, initial, successor, lambda s: s[2] or s[3]
    )


def formula_to_automaton(formula: Formula, alphabet: Alphabet | None = None) -> DetAutomaton:
    """Compile a formula to a deterministic ω-automaton over ``alphabet``."""
    alphabet = alphabet or default_alphabet(formula)

    # Fast paths: the paper's normal forms via Prop 5.3 testers.
    if is_safety_formula(formula):
        return a_of(esat_language(formula.operand, alphabet))
    if is_guarantee_formula(formula):
        return e_of(esat_language(formula.operand, alphabet))
    if is_recurrence_formula(formula):
        return r_of(esat_language(formula.operand.operand, alphabet))
    if is_persistence_formula(formula):
        return p_of(esat_language(formula.operand.operand, alphabet))

    conjuncts = formula.operands if isinstance(formula, And) else (formula,)
    if all(is_simple_reactivity_formula(c) for c in conjuncts):
        result = _simple_reactivity_pair(conjuncts[0], alphabet)
        for conjunct in conjuncts[1:]:
            result = result.intersection(_simple_reactivity_pair(conjunct, alphabet))
        return result
    if all(is_simple_obligation_formula(c) for c in conjuncts):
        result = _simple_obligation_pair(conjuncts[0], alphabet)
        for conjunct in conjuncts[1:]:
            result = result.intersection(_simple_obligation_pair(conjunct, alphabet))
        return result

    from repro.omega.safra import formula_to_dra

    return formula_to_dra(formula, alphabet)


@dataclass(frozen=True, slots=True)
class FormulaReport:
    """Everything the library can say about one formula."""

    formula: Formula
    alphabet: Alphabet
    automaton: DetAutomaton
    semantic: Verdict
    syntactic: SyntacticVerdict
    streett_index: int
    obligation_degree: int | None
    is_uniform_liveness: bool | None

    @property
    def canonical_class(self) -> TemporalClass:
        return self.semantic.canonical

    @property
    def is_liveness(self) -> bool:
        return self.semantic.is_liveness

    def summary(self) -> str:
        lines = [
            f"formula:        {self.formula!r}",
            f"class:          {self.canonical_class.value}"
            f" ({self.canonical_class.borel_name}, {self.canonical_class.topological_name})",
            f"memberships:    "
            + ", ".join(c.value for c in TemporalClass if self.semantic.membership[c]),
            f"normal form:    {self.syntactic.normal_form.value if self.syntactic.normal_form else 'none'}",
            f"syntactic:      {self.syntactic.fragment_class.value}",
            f"liveness:       {self.is_liveness}"
            + (f" (uniform: {self.is_uniform_liveness})" if self.is_uniform_liveness is not None else ""),
            f"streett index:  {self.streett_index}",
        ]
        if self.obligation_degree is not None:
            lines.append(f"obl. degree:    {self.obligation_degree}")
        return "\n".join(lines)


def classify_formula(formula: Formula, alphabet: Alphabet | None = None) -> FormulaReport:
    """Compile and fully classify a formula (the library's headline call).

    Pure and uncached; heavy/repetitive traffic should go through
    :func:`repro.engine.cache.cached_classify_formula` or the batch
    :class:`repro.engine.batch.EvaluationEngine`, which memoize this work.
    """
    import time

    from repro.engine.metrics import METRICS, trace
    from repro.obs.spans import span

    with span("classifier.classify_formula") as obs_span:
        start = time.perf_counter()
        alphabet = alphabet or default_alphabet(formula)
        automaton = formula_to_automaton(formula, alphabet)
        verdict = classify_automaton(automaton)
        try:
            uniform = is_uniform_liveness(automaton) if verdict.is_liveness else False
        except ClassificationError:
            uniform = None
        elapsed = time.perf_counter() - start
        METRICS.timer("classifier.classify_formula").observe(elapsed)
        obs_span.set_attribute("states", automaton.num_states)
        obs_span.set_attribute("canonical", verdict.canonical.value)
        trace(
            "classifier.classify_formula",
            states=automaton.num_states,
            canonical=verdict.canonical.value,
            seconds=elapsed,
        )
    return FormulaReport(
        formula=formula,
        alphabet=alphabet,
        automaton=automaton,
        semantic=verdict,
        syntactic=analyze_syntax(formula),
        streett_index=streett_index(automaton),
        obligation_degree=obligation_degree(automaton),
        is_uniform_liveness=uniform,
    )
