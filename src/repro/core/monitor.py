"""Prefix monitoring — the operational meaning of the lower hierarchy.

§2 reads the classes through "good/bad things detectable in finite time":
a safety violation is witnessed by a finite prefix, a guarantee success is
witnessed by a finite prefix, and a clopen property always reaches a final
verdict.  :class:`PrefixMonitor` turns any deterministic ω-automaton into
an online monitor with the classic three-valued verdict:

* ``VIOLATED``  — no infinite extension of the prefix satisfies Π
  (the residual language is empty);
* ``SATISFIED`` — every extension satisfies Π (the residual is Σ^ω);
* ``PENDING``   — both continuations remain possible.

The hierarchy predicts the monitor's power, and the test suite verifies it:

* safety Π:     every violating word has a finite VIOLATED witness;
* guarantee Π:  every satisfying word has a finite SATISFIED witness;
* clopen Π:     every word reaches a final verdict;
* recurrence/persistence Π may stay PENDING forever (non-monitorable tail).
"""

from __future__ import annotations

from enum import Enum

from repro.logic.ast import Formula
from repro.omega.automaton import DetAutomaton
from repro.omega.emptiness import nonempty_states
from repro.words.alphabet import Alphabet, Symbol


class Verdict3(Enum):
    VIOLATED = "violated"
    SATISFIED = "satisfied"
    PENDING = "pending"


class PrefixMonitor:
    """An online three-valued monitor for one ω-regular property.

    Feed symbols with :meth:`step`; read :attr:`verdict` anytime.  Once the
    verdict leaves ``PENDING`` it is final (the two decided regions are
    successor-closed), and further symbols keep returning it.
    """

    def __init__(
        self,
        automaton: DetAutomaton,
        *,
        live: frozenset[int] | None = None,
        colive: frozenset[int] | None = None,
    ) -> None:
        self.automaton = automaton
        self._live = nonempty_states(automaton) if live is None else live
        self._colive = (
            nonempty_states(automaton.complement()) if colive is None else colive
        )
        self._state = automaton.initial
        self._history: list[Symbol] = []

    @classmethod
    def for_formula(
        cls,
        formula: Formula,
        alphabet: Alphabet | None = None,
        *,
        use_cache: bool = True,
    ) -> PrefixMonitor:
        """Build a monitor for a formula.

        With ``use_cache`` (the default) the compilation and the residual
        live/colive analyses go through the engine's caches, so a fleet of
        monitors for the same property shares one construction.
        """
        if use_cache:
            from repro.engine.cache import (
                cached_formula_to_automaton,
                cached_nonempty_states,
            )

            automaton = cached_formula_to_automaton(formula, alphabet)
            return cls(
                automaton,
                live=cached_nonempty_states(automaton),
                colive=cached_nonempty_states(automaton.complement()),
            )
        from repro.core.classifier import formula_to_automaton

        return cls(formula_to_automaton(formula, alphabet))

    @property
    def state(self) -> int:
        """The automaton state reached by the prefix consumed so far."""
        return self._state

    # ---------------------------------------------------------------- online

    @property
    def verdict(self) -> Verdict3:
        dead = self._state not in self._live
        codead = self._state not in self._colive
        if dead:
            return Verdict3.VIOLATED
        if codead:
            return Verdict3.SATISFIED
        return Verdict3.PENDING

    def step(self, symbol: Symbol) -> Verdict3:
        self._state = self.automaton.step(self._state, symbol)
        self._history.append(symbol)
        return self.verdict

    def feed(self, symbols) -> Verdict3:
        for symbol in symbols:
            self.step(symbol)
        return self.verdict

    def reset(self) -> None:
        self._state = self.automaton.initial
        self._history.clear()

    @property
    def position(self) -> int:
        return len(self._history)

    # ------------------------------------------------------------- analysis

    def is_monitorable_everywhere(self) -> bool:
        """Can every PENDING state still reach a verdict?  (Classic
        monitorability: no reachable 'ugly' state.)"""
        pending = [
            state
            for state in self.automaton.reachable
            if state in self._live and state in self._colive
        ]
        decided = frozenset(self.automaton.states) - frozenset(
            s for s in self.automaton.states if s in self._live and s in self._colive
        )
        from repro.omega.graph import can_reach

        reach_decided = can_reach(self.automaton.num_states, decided, self.automaton.successors)
        return all(state in reach_decided for state in pending)

    def always_decides(self) -> bool:
        """Does *every* infinite word reach a final verdict?  True exactly
        for clopen properties: the pending region must be transient."""
        from repro.omega.graph import is_nontrivial_component, restricted_sccs

        pending = frozenset(
            state
            for state in self.automaton.reachable
            if state in self._live and state in self._colive
        )
        for scc in restricted_sccs(pending, self.automaton.successors):
            internal = lambda s, inside=frozenset(scc): [
                t for t in self.automaton.successors(s) if t in inside
            ]
            if is_nontrivial_component(scc, internal):
                return False
        return True
