"""Prefix monitoring — the operational meaning of the lower hierarchy.

§2 reads the classes through "good/bad things detectable in finite time":
a safety violation is witnessed by a finite prefix, a guarantee success is
witnessed by a finite prefix, and a clopen property always reaches a final
verdict.  :class:`PrefixMonitor` turns any deterministic ω-automaton into
an online monitor with the classic three-valued verdict:

* ``VIOLATED``  — no infinite extension of the prefix satisfies Π
  (the residual language is empty);
* ``SATISFIED`` — every extension satisfies Π (the residual is Σ^ω);
* ``PENDING``   — both continuations remain possible.

The hierarchy predicts the monitor's power, and the test suite verifies it:

* safety Π:     every violating word has a finite VIOLATED witness;
* guarantee Π:  every satisfying word has a finite SATISFIED witness;
* clopen Π:     every word reaches a final verdict;
* recurrence/persistence Π may stay PENDING forever (non-monitorable tail).

A :class:`PrefixMonitor` is the N=1 view of the fleet compiler: it holds
one stream state over a :class:`repro.fleet.compile.CompiledMonitor`, the
same dense transition table and per-state verdict codes that
:class:`repro.fleet.fleet.MonitorFleet` steps for a million streams at
once.  The qa ``fleet`` oracle holds the two views to identical verdict
vectors.

Unknown-symbol contract: :meth:`PrefixMonitor.step` with a symbol outside
the property's alphabet raises :class:`repro.errors.AlphabetError` and
leaves the monitor unchanged — state, verdict and ``position`` all keep
their pre-step values (see :mod:`repro.fleet.compile`).
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

from repro.logic.ast import Formula
from repro.omega.automaton import DetAutomaton
from repro.words.alphabet import Alphabet, Symbol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet imports us)
    from repro.fleet.compile import CompiledMonitor


class Verdict3(Enum):
    VIOLATED = "violated"
    SATISFIED = "satisfied"
    PENDING = "pending"


class PrefixMonitor:
    """An online three-valued monitor for one ω-regular property.

    Feed symbols with :meth:`step`; read :attr:`verdict` anytime.  Once the
    verdict leaves ``PENDING`` it is final (the two decided regions are
    successor-closed), and further symbols keep returning it.
    """

    def __init__(
        self,
        automaton: DetAutomaton,
        *,
        live: frozenset[int] | None = None,
        colive: frozenset[int] | None = None,
        compiled: CompiledMonitor | None = None,
    ) -> None:
        if compiled is None:
            from repro.fleet.compile import CompiledMonitor

            compiled = CompiledMonitor(automaton, live=live, colive=colive)
        self._compiled = compiled
        self._state = compiled.initial
        self._position = 0

    @classmethod
    def for_formula(
        cls,
        formula: Formula,
        alphabet: Alphabet | None = None,
        *,
        use_cache: bool = True,
    ) -> PrefixMonitor:
        """Build a monitor for a formula.

        With ``use_cache`` (the default) the whole compilation — automaton,
        both residual analyses, and the dense table — goes through the
        engine's locked ``monitor_compiled`` cache, so a fleet of monitors
        for the same property (even built concurrently from many threads)
        shares one construction.
        """
        from repro.fleet.compile import CompiledMonitor

        compiled = CompiledMonitor.for_formula(formula, alphabet, use_cache=use_cache)
        return cls(compiled.automaton, compiled=compiled)

    @property
    def compiled(self) -> CompiledMonitor:
        """The shared compilation this monitor is the N=1 view of."""
        return self._compiled

    @property
    def automaton(self) -> DetAutomaton:
        return self._compiled.automaton

    @property
    def _live(self) -> frozenset[int]:
        return self._compiled.live

    @property
    def _colive(self) -> frozenset[int]:
        return self._compiled.colive

    @property
    def state(self) -> int:
        """The automaton state reached by the prefix consumed so far."""
        return self._state

    # ---------------------------------------------------------------- online

    @property
    def verdict(self) -> Verdict3:
        return self._compiled.verdict_at(self._state)

    def step(self, symbol: Symbol) -> Verdict3:
        # index_of validates first, so an unknown symbol raises before any
        # mutation and the monitor is left exactly as it was.
        self._state = self._compiled.step(self._state, symbol)
        self._position += 1
        return self.verdict

    def feed(self, symbols) -> Verdict3:
        for symbol in symbols:
            self.step(symbol)
        return self.verdict

    def reset(self) -> None:
        self._state = self._compiled.initial
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    # ------------------------------------------------------------- analysis

    def is_monitorable_everywhere(self) -> bool:
        """Can every PENDING state still reach a verdict?  (Classic
        monitorability: no reachable 'ugly' state.)"""
        pending = [
            state
            for state in self.automaton.reachable
            if state in self._live and state in self._colive
        ]
        decided = frozenset(self.automaton.states) - frozenset(
            s for s in self.automaton.states if s in self._live and s in self._colive
        )
        from repro.omega.graph import can_reach

        reach_decided = can_reach(self.automaton.num_states, decided, self.automaton.successors)
        return all(state in reach_decided for state in pending)

    def always_decides(self) -> bool:
        """Does *every* infinite word reach a final verdict?  True exactly
        for clopen properties: the pending region must be transient."""
        from repro.omega.graph import is_nontrivial_component, restricted_sccs

        pending = frozenset(
            state
            for state in self.automaton.reachable
            if state in self._live and state in self._colive
        )
        for scc in restricted_sccs(pending, self.automaton.successors):
            internal = lambda s, inside=frozenset(scc): [
                t for t in self.automaton.successors(s) if t in inside
            ]
            if is_nontrivial_component(scc, internal):
                return False
        return True
