"""The six classes of the safety–progress hierarchy and their lattice.

Figure 1 of the paper: safety and guarantee sit at the bottom (incomparable),
obligation above both, recurrence and persistence above obligation
(incomparable), reactivity on top.  Complementation exchanges
safety↔guarantee and recurrence↔persistence and fixes obligation and
reactivity.  The Borel/first-order names: safety ``Π₁`` (closed, F),
guarantee ``Σ₁`` (open, G), obligation ``Δ₂ = Π₂ ∩ Σ₂``, recurrence ``Π₂``
(G_δ), persistence ``Σ₂`` (F_σ), reactivity ``Δ₃``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class TemporalClass(Enum):
    SAFETY = "safety"
    GUARANTEE = "guarantee"
    OBLIGATION = "obligation"
    RECURRENCE = "recurrence"
    PERSISTENCE = "persistence"
    REACTIVITY = "reactivity"

    # ----------------------------------------------------------- the lattice

    def includes(self, other: TemporalClass) -> bool:
        """Class inclusion: does every ``other``-property belong to ``self``?"""
        return other in _DOWNSETS[self]

    def strictly_includes(self, other: TemporalClass) -> bool:
        return self is not other and self.includes(other)

    def join(self, other: TemporalClass) -> TemporalClass:
        """Least class containing both (exists — Figure 1 is a lattice)."""
        candidates = [c for c in TemporalClass if c.includes(self) and c.includes(other)]
        return min(candidates, key=lambda c: len(_DOWNSETS[c]))

    def meet(self, other: TemporalClass) -> TemporalClass | None:
        """Greatest class contained in both, or ``None`` — Figure 1 has no
        bottom element (safety ∧ guarantee = the clopen properties, which is
        not one of the six classes)."""
        candidates = [c for c in TemporalClass if self.includes(c) and other.includes(c)]
        if not candidates:
            return None
        return max(candidates, key=lambda c: len(_DOWNSETS[c]))

    def dual(self) -> TemporalClass:
        """The class of complements of this class's properties."""
        return _DUALS[self]

    @property
    def borel_name(self) -> str:
        return _BOREL_NAMES[self]

    @property
    def topological_name(self) -> str:
        return _TOPOLOGICAL_NAMES[self]

    @property
    def formula_shape(self) -> str:
        """The temporal normal form characterizing the class (§4)."""
        return _FORMULA_SHAPES[self]

    def __repr__(self) -> str:
        return f"TemporalClass.{self.name}"


_DOWNSETS: dict[TemporalClass, frozenset[TemporalClass]] = {
    TemporalClass.SAFETY: frozenset({TemporalClass.SAFETY}),
    TemporalClass.GUARANTEE: frozenset({TemporalClass.GUARANTEE}),
    TemporalClass.OBLIGATION: frozenset(
        {TemporalClass.SAFETY, TemporalClass.GUARANTEE, TemporalClass.OBLIGATION}
    ),
    TemporalClass.RECURRENCE: frozenset(
        {
            TemporalClass.SAFETY,
            TemporalClass.GUARANTEE,
            TemporalClass.OBLIGATION,
            TemporalClass.RECURRENCE,
        }
    ),
    TemporalClass.PERSISTENCE: frozenset(
        {
            TemporalClass.SAFETY,
            TemporalClass.GUARANTEE,
            TemporalClass.OBLIGATION,
            TemporalClass.PERSISTENCE,
        }
    ),
    TemporalClass.REACTIVITY: frozenset(set(TemporalClass)),
}

_DUALS = {
    TemporalClass.SAFETY: TemporalClass.GUARANTEE,
    TemporalClass.GUARANTEE: TemporalClass.SAFETY,
    TemporalClass.OBLIGATION: TemporalClass.OBLIGATION,
    TemporalClass.RECURRENCE: TemporalClass.PERSISTENCE,
    TemporalClass.PERSISTENCE: TemporalClass.RECURRENCE,
    TemporalClass.REACTIVITY: TemporalClass.REACTIVITY,
}

_BOREL_NAMES = {
    TemporalClass.SAFETY: "Π₁",
    TemporalClass.GUARANTEE: "Σ₁",
    TemporalClass.OBLIGATION: "Δ₂",
    TemporalClass.RECURRENCE: "Π₂",
    TemporalClass.PERSISTENCE: "Σ₂",
    TemporalClass.REACTIVITY: "Δ₃",
}

_TOPOLOGICAL_NAMES = {
    TemporalClass.SAFETY: "closed (F)",
    TemporalClass.GUARANTEE: "open (G)",
    TemporalClass.OBLIGATION: "boolean combinations of closed sets",
    TemporalClass.RECURRENCE: "G_δ",
    TemporalClass.PERSISTENCE: "F_σ",
    TemporalClass.REACTIVITY: "boolean combinations of G_δ sets",
}

_FORMULA_SHAPES = {
    TemporalClass.SAFETY: "□p",
    TemporalClass.GUARANTEE: "◇p",
    TemporalClass.OBLIGATION: "⋀ᵢ (□pᵢ ∨ ◇qᵢ)",
    TemporalClass.RECURRENCE: "□◇p",
    TemporalClass.PERSISTENCE: "◇□p",
    TemporalClass.REACTIVITY: "⋀ᵢ (□◇pᵢ ∨ ◇□qᵢ)",
}

#: The covering edges of Figure 1, bottom to top.
FIGURE_1_EDGES: tuple[tuple[TemporalClass, TemporalClass], ...] = (
    (TemporalClass.SAFETY, TemporalClass.OBLIGATION),
    (TemporalClass.GUARANTEE, TemporalClass.OBLIGATION),
    (TemporalClass.OBLIGATION, TemporalClass.RECURRENCE),
    (TemporalClass.OBLIGATION, TemporalClass.PERSISTENCE),
    (TemporalClass.RECURRENCE, TemporalClass.REACTIVITY),
    (TemporalClass.PERSISTENCE, TemporalClass.REACTIVITY),
)


@dataclass(frozen=True, slots=True)
class Verdict:
    """The full classification result for one property.

    ``membership[c]`` says whether the property belongs to class ``c``;
    ``lowest`` is the set of minimal classes containing it (a clopen property
    is minimal in both safety and guarantee); ``canonical`` is a single
    representative of ``lowest`` (safety preferred, then guarantee, then up
    the hierarchy); the liveness flags record the orthogonal
    safety–liveness classification.
    """

    membership: dict[TemporalClass, bool] = field(hash=False)
    is_liveness: bool = False

    def __post_init__(self) -> None:
        if not self.membership.get(TemporalClass.REACTIVITY, False):
            raise ValueError("every ω-regular property is a reactivity property")

    @property
    def lowest(self) -> frozenset[TemporalClass]:
        held = [c for c in TemporalClass if self.membership[c]]
        return frozenset(
            c for c in held if not any(o is not c and c.strictly_includes(o) for o in held)
        )

    @property
    def canonical(self) -> TemporalClass:
        order = [
            TemporalClass.SAFETY,
            TemporalClass.GUARANTEE,
            TemporalClass.OBLIGATION,
            TemporalClass.RECURRENCE,
            TemporalClass.PERSISTENCE,
            TemporalClass.REACTIVITY,
        ]
        return next(c for c in order if c in self.lowest)

    def __repr__(self) -> str:
        low = "+".join(sorted(c.value for c in self.lowest))
        live = ", liveness" if self.is_liveness else ""
        return f"Verdict({low}{live})"
