"""The paper's primary contribution: the hierarchy and its classifiers."""

from repro.core.classes import FIGURE_1_EDGES, TemporalClass, Verdict
from repro.core.classifier import (
    FormulaReport,
    classify_formula,
    default_alphabet,
    formula_to_automaton,
)

__all__ = [
    "FIGURE_1_EDGES",
    "TemporalClass",
    "Verdict",
    "FormulaReport",
    "classify_formula",
    "default_alphabet",
    "formula_to_automaton",
]
