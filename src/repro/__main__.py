"""Command-line interface: ``python -m repro <command> …``.

Commands
--------

classify FORMULA [--props p,q]        place a formula in the hierarchy
classify FORMULA --explain            …and say *why*: deciding view, route,
                                      per-class reasons, automaton evidence
classify --batch FILE                 classify a whole spec corpus at once
lint FORMULA [FORMULA …]              check a specification for coverage gaps
automaton FORMULA [--dot]             print (or DOT-render) the automaton
omega EXPRESSION --alphabet ab        classify an ω-regular expression
engine FILE [--executor …]            batch-evaluate a spec file through the
                                      caching engine; report classes, cache
                                      stats and timings
serve [--port P | --socket S]         run the long-lived classification
      [--store F] [--window-ms N]     service: JSON-lines protocol, request
      [--max-inflight N] [--quota N]  batching, persistent shared cache
      [--telemetry-port P] [--trace]  …plus the telemetry plane: an HTTP
                                      sidecar (/metrics /healthz /readyz
                                      /spans/recent /stats /recorder/dump),
                                      per-request span trees with wire
                                      propagation, and a flight recorder
                                      (dump on SIGUSR1)
serve --smoke SPEC --store F          two-phase restart-durability smoke
serve --telemetry-smoke SPEC --store F  telemetry-plane smoke: traced
                                      traffic, sidecar endpoints, recorder
                                      dump, stitched client→server spans
stats --remote HOST:PORT              one dashboard frame from a running
stats --telemetry URL [--watch]       server (stats verb or sidecar URL);
                                      --watch polls and redraws live
classify FORMULA --remote HOST:PORT   classify against a running server
                                      (--trace prints the stitched span
                                      tree: client root → server stages)
trace FILE [--jsonl F] [--prometheus] run a spec file with span tracing on;
                                      print the span tree and top spans,
                                      optionally export JSONL / Prometheus
fuzz [--seed N] [--budget N]          differential fuzzing of the four views;
                                      shrinks and reports any disagreement
bench [--quick] [--out F] [--check F] time the dense fastpath kernels against
                                      the reference routes; write/gate a
                                      JSON report (see docs/PERFORMANCE.md)
bench --obs [--out F]                 measure span-tracing overhead on the
                                      same kernels; gate it below 5%
bench --obs --serve                   …plus the end-to-end telemetry A/B
                                      (tracing + sidecar + recorder vs
                                      off); gate it below 10%
bench --serve [--out F] [--check F]   end-to-end service benchmark: rps and
                                      p50/p99 latency over a warm store
bench --fleet [--out F] [--check F]   vectorized monitor fleet vs a scalar
                                      monitor loop (streams·events/sec)
monitor FORMULA --streams N           run a monitor fleet over JSONL event
        [--stream F] [--backend B]    batches (file or stdin); exit 1 if any
                                      stream ends VIOLATED
census PATH... [--jobs N]             classify a whole .ltl corpus through a
       [--timeout S] [--out CSV]      crash-isolated worker pool; one CSV row
       [--check BASELINE]             per formula (class, Wagner index,
       [--summary-out JSON]           liveness flags, automaton sizes per
                                      route); --check gates against the
                                      committed baseline census
census --emit-corpus DIR              regenerate the curated formulas/ corpus
zoo                                   print the canonical Figure-1 witnesses

Global flags: ``--version``, ``--seed N`` (seeds ``random`` for
reproducible randomized runs).
"""

from __future__ import annotations

import argparse
import random
import sys

from repro import __version__
from repro.core import classify_formula, formula_to_automaton
from repro.errors import ReproError
from repro.core.canonical import figure_1_zoo
from repro.logic import parse_formula
from repro.omega.classify import classify as classify_automaton
from repro.omega.omega_regex import omega_language
from repro.omega.reduce import quotient_reduce
from repro.omega.render import describe, to_dot
from repro.systems import lint_specification
from repro.words import Alphabet


def _alphabet_from(props: str | None):
    if props is None:
        return None
    return Alphabet.powerset_of_propositions([p.strip() for p in props.split(",") if p.strip()])


def _parse_remote(remote: str) -> tuple[str, int]:
    host, sep, port_text = remote.rpartition(":")
    if not sep or not port_text.isdigit():
        raise ValueError(f"--remote wants HOST:PORT, got {remote!r}")
    return host or "127.0.0.1", int(port_text)


def cmd_classify(args: argparse.Namespace) -> int:
    if args.remote:
        from repro.serve.client import ServeClient
        from repro.serve.protocol import render_payload

        if args.formula is None:
            print("error: --remote needs a FORMULA", file=sys.stderr)
            return 2
        host, port = _parse_remote(args.remote)
        props = None
        if args.props:
            props = [p.strip() for p in args.props.split(",") if p.strip()]
        if args.trace:
            from repro.obs.spans import TRACER

            TRACER.enable()
            TRACER.clear()
        try:
            with ServeClient.connect(host, port) as client:
                if args.explain:
                    payload = client.explain(args.formula, props=props)
                else:
                    payload = client.classify(args.formula, props=props)
        finally:
            if args.trace:
                TRACER.disable()
        print(render_payload(payload))
        if args.trace:
            from repro.obs.export import render_span_tree

            print()
            print(render_span_tree(TRACER.finished()))
            TRACER.clear()
        return 0
    if args.batch:
        from repro.engine.session import EngineSession, SpecSyntaxError

        session = EngineSession.create(executor=args.executor, max_workers=args.jobs)
        try:
            report = session.run_file(args.batch)
        except (OSError, SpecSyntaxError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(session.render_results(report))
        print()
        print(session.render(report))
        if args.explain:
            print()
            _explain_batch(report)
        return 1 if report.failures else 0
    if args.formula is None:
        print("error: provide a FORMULA or --batch FILE", file=sys.stderr)
        return 2
    if args.explain:
        from repro.obs.provenance import explain_formula

        explanation = explain_formula(
            parse_formula(args.formula), _alphabet_from(args.props)
        )
        print(explanation.render())
        return 0
    report = classify_formula(parse_formula(args.formula), _alphabet_from(args.props))
    print(report.summary())
    return 0


def _explain_batch(report) -> None:
    """One explanation block per successful classify job in the batch."""
    from repro.obs.provenance import explain_expression, explain_formula

    first = True
    for result in report.results:
        if not result.ok:
            continue
        job = result.job
        if job.kind == "classify-formula":
            alphabet = None
            if getattr(job, "props", None):
                alphabet = _alphabet_from(",".join(job.props))
            explanation = explain_formula(job.formula, alphabet)
        elif job.kind == "classify-omega":
            explanation = explain_expression(job.expression, job.letters)
        else:  # monitor jobs have no class verdict to explain
            continue
        if not first:
            print()
        first = False
        print(explanation.render())


def cmd_engine(args: argparse.Namespace) -> int:
    from repro.engine.session import EngineSession, SpecSyntaxError

    if args.repeat < 1:
        print("error: --repeat must be at least 1", file=sys.stderr)
        return 2
    session = EngineSession.create(
        executor=args.executor, max_workers=args.jobs, dedupe=not args.no_dedupe
    )
    report = None
    try:
        for _ in range(args.repeat):
            report = session.run_file(args.file)
    except (OSError, SpecSyntaxError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    assert report is not None
    if args.results:
        print(session.render_results(report))
        print()
    print(session.render(report, verbose=args.verbose))
    return 1 if report.failures else 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.engine.metrics import METRICS
    from repro.engine.session import EngineSession, SpecSyntaxError
    from repro.obs.export import (
        prometheus_text,
        render_span_tree,
        render_top_spans,
        validate_jsonl_file,
        write_jsonl,
    )
    from repro.obs.spans import TRACER

    session = EngineSession.create(executor=args.executor, max_workers=args.jobs)
    TRACER.enable()
    TRACER.clear()
    try:
        report = session.run_file(args.file)
    except (OSError, SpecSyntaxError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        TRACER.disable()
    spans = TRACER.finished()
    print(render_span_tree(spans))
    print()
    print(render_top_spans(spans, limit=args.top))
    if args.jsonl:
        count = write_jsonl(spans, args.jsonl)
        errors = validate_jsonl_file(args.jsonl)
        if errors:
            for error in errors:
                print(f"schema error: {error}", file=sys.stderr)
            return 1
        print(f"\nwrote {count} spans to {args.jsonl} (schema valid)")
    if args.prometheus:
        print()
        print(prometheus_text(METRICS))
    TRACER.clear()
    return 1 if report.failures else 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.engine.metrics import METRICS
    from repro.qa.fuzz import run_fuzz
    from repro.qa.oracles import ORACLES

    if args.budget < 1:
        print("error: --budget must be at least 1", file=sys.stderr)
        return 2
    for name in args.oracle or ():
        if name not in ORACLES:
            known = ", ".join(sorted(ORACLES))
            print(f"error: unknown oracle '{name}' (known: {known})", file=sys.stderr)
            return 2
    report = run_fuzz(
        seed=args.fuzz_seed,
        budget=args.budget,
        oracles=args.oracle or None,
        shrink=not args.no_shrink,
        write_corpus=args.write_corpus,
    )
    print(report.summary())
    if args.verbose:
        print()
        print(METRICS.report())
    return 0 if report.ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import (
        BENCHMARKS,
        regressions_against,
        render_table,
        report_json,
        run_benchmarks,
    )

    if args.repeat < 1:
        print("error: --repeat must be at least 1", file=sys.stderr)
        return 2
    for name in args.kernel or ():
        if name not in BENCHMARKS:
            known = ", ".join(BENCHMARKS)
            print(f"error: unknown kernel '{name}' (known: {known})", file=sys.stderr)
            return 2
    if args.obs:
        return _bench_obs(args)
    if args.serve:
        return _bench_serve(args)
    if args.fleet:
        return _bench_fleet(args)
    results = run_benchmarks(
        quick=args.quick, repeat=args.repeat, kernels=args.kernel or None
    )
    print(render_table(results))
    if args.out:
        report = report_json(results, quick=args.quick, repeat=args.repeat)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    if args.check:
        try:
            with open(args.check, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read baseline {args.check}: {error}", file=sys.stderr)
            return 1
        failures = regressions_against(results, baseline, expect_all=not args.kernel)
        for failure in failures:
            print(f"regression: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"no kernel regressed more than 2x against {args.check}")
    return 0


def _bench_obs(args: argparse.Namespace) -> int:
    from repro.bench.obs import (
        MAX_OVERHEAD,
        overhead_failures,
        run_overhead_benchmarks,
    )
    from repro.bench.obs import render_table as render_obs_table
    from repro.bench.obs import report_json as obs_report_json

    limit = args.limit if args.limit is not None else MAX_OVERHEAD
    results = run_overhead_benchmarks(
        quick=args.quick, repeat=args.repeat, kernels=args.kernel or None
    )
    print(render_obs_table(results))
    serve_telemetry = None
    failures = overhead_failures(results, limit=limit)
    if args.serve:
        from repro.bench.serve import (
            TELEMETRY_OVERHEAD_LIMIT,
            run_telemetry_overhead,
            telemetry_failures,
        )

        serve_telemetry = run_telemetry_overhead(
            quick=args.quick, repeat=args.repeat
        )
        print(
            f"\n{serve_telemetry.workload}: {serve_telemetry.off_rps:.0f} req/s off"
            f" → {serve_telemetry.on_rps:.0f} req/s on"
            f" ({serve_telemetry.overhead:+.1%}, budget"
            f" {TELEMETRY_OVERHEAD_LIMIT:.0%}, A/A noise"
            f" {serve_telemetry.noise:.1%}); traced client"
            f" {serve_telemetry.traced_rps:.0f} req/s"
            f" ({serve_telemetry.traced_overhead:+.1%}, informational)"
        )
        failures.extend(telemetry_failures(serve_telemetry))
    if args.out:
        report = obs_report_json(
            results,
            quick=args.quick,
            repeat=args.repeat,
            limit=limit,
            serve_telemetry=serve_telemetry,
        )
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    for failure in failures:
        print(f"overhead: {failure}", file=sys.stderr)
    if failures:
        return 1
    scope = "every kernel" if serve_telemetry is None else (
        "every kernel, and the end-to-end telemetry plane within"
        " its 10% budget"
    )
    print(f"tracing overhead within the {limit:.0%} budget on {scope}")
    return 0


def _bench_serve(args: argparse.Namespace) -> int:
    import json

    from repro.bench.serve import (
        regressions_against as serve_regressions,
        render_table as render_serve_table,
        report_json as serve_report_json,
        run_serve_benchmarks,
    )

    results = run_serve_benchmarks(quick=args.quick, repeat=args.repeat)
    print(render_serve_table(results))
    if args.out:
        report = serve_report_json(results, quick=args.quick, repeat=args.repeat)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    if args.check:
        try:
            with open(args.check, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read baseline {args.check}: {error}", file=sys.stderr)
            return 1
        failures = serve_regressions(results, baseline)
        for failure in failures:
            print(f"regression: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"no serve workload regressed more than 4x against {args.check}")
    return 0


def _bench_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.bench.fleet import (
        regressions_against as fleet_regressions,
        render_table as render_fleet_table,
        report_json as fleet_report_json,
        run_fleet_benchmarks,
    )

    results = run_fleet_benchmarks(
        quick=args.quick, repeat=args.repeat, backend=args.backend
    )
    print(render_fleet_table(results))
    if args.out:
        report = fleet_report_json(results, quick=args.quick, repeat=args.repeat)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    if args.check:
        try:
            with open(args.check, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read baseline {args.check}: {error}", file=sys.stderr)
            return 1
        failures = fleet_regressions(results, baseline)
        for failure in failures:
            print(f"regression: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"no fleet workload regressed more than 4x against {args.check}")
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    from repro.fleet import MonitorFleet, run_stream
    from repro.fleet.compile import CompiledMonitor, VIOLATED

    if args.streams < 1:
        print("error: --streams must be at least 1", file=sys.stderr)
        return 2
    if args.omega:
        alphabet = Alphabet.from_letters(args.alphabet)
        compiled = CompiledMonitor(
            quotient_reduce(omega_language(args.formula, alphabet))
        )
    else:
        compiled = CompiledMonitor.for_formula(
            parse_formula(args.formula), _alphabet_from(args.props)
        )
    fleet = MonitorFleet(compiled, args.streams, backend=args.backend)
    classification = compiled.classification()
    print(
        f"property:   {args.formula}  [{classification.canonical.value};"
        f" can_violate={compiled.can_violate} can_satisfy={compiled.can_satisfy}]"
    )

    def per_batch(index: int, current: MonitorFleet) -> None:
        print(f"batch {index:4d}: {current.counts().line()}")

    callback = per_batch if args.per_batch else None
    if args.stream == "-":
        report = run_stream(fleet, sys.stdin, on_batch=callback)
    else:
        with open(args.stream, encoding="utf-8") as handle:
            report = run_stream(fleet, handle, on_batch=callback)
    print(report.render())
    if args.verdicts:
        marks = {0: "?", 1: "V", 2: "S"}
        print("".join(marks[code] for code in fleet.verdict_codes()))
    return 1 if report.counts.violated else 0


def cmd_census(args: argparse.Namespace) -> int:
    from repro.census import (
        check_against_baseline,
        load_corpus,
        read_census_csv,
        run_census,
        summary_json,
        write_census_csv,
        write_corpus,
    )

    if args.emit_corpus:
        paths = write_corpus(args.emit_corpus, seed=args.corpus_seed)
        for path in paths:
            print(f"wrote {path}")
        return 0
    if not args.paths:
        print("error: provide corpus PATHs (or --emit-corpus DIR)", file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be at least 1", file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        return 2
    if args.limit is not None and args.limit < 1:
        print("error: --limit must be at least 1", file=sys.stderr)
        return 2
    entries = load_corpus(args.paths)
    if args.limit is not None:
        entries = entries[: args.limit]
    report = run_census(
        entries,
        jobs=args.jobs,
        timeout=args.timeout,
        serial=args.serial,
        start_method=args.start_method,
    )
    print(report.render())
    if args.out:
        count = write_census_csv(report.rows, args.out)
        print(f"wrote {count} rows to {args.out}")
    if args.summary_out:
        with open(args.summary_out, "w", encoding="utf-8") as handle:
            handle.write(summary_json(report, [str(p) for p in args.paths]))
        print(f"wrote {args.summary_out}")
    exit_code = 0 if report.ok else 1
    if args.check:
        baseline = read_census_csv(args.check)
        check = check_against_baseline(report.rows, baseline)
        print(check.render())
        if not check.ok:
            exit_code = 1
    return exit_code


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import ClassificationServer, ServerConfig

    if args.window_ms < 0:
        print("error: --window-ms must be non-negative", file=sys.stderr)
        return 2
    if args.max_inflight < 1 or args.quota < 1:
        print("error: --max-inflight and --quota must be at least 1", file=sys.stderr)
        return 2
    if args.smoke:
        from repro.serve.smoke import run_smoke

        if not args.store:
            print("error: --smoke needs --store FILE", file=sys.stderr)
            return 2
        report = run_smoke(
            args.smoke, args.store, executor=args.executor, window_ms=args.window_ms
        )
        print(report.render())
        return 0 if report.ok else 1
    if args.telemetry_smoke:
        from repro.serve.smoke import run_telemetry_smoke

        if not args.store:
            print("error: --telemetry-smoke needs --store FILE", file=sys.stderr)
            return 2
        report = run_telemetry_smoke(
            args.telemetry_smoke, args.store, window_ms=args.window_ms
        )
        print(report.render())
        return 0 if report.ok else 1
    config = ServerConfig(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        store_path=args.store,
        window_ms=args.window_ms,
        max_inflight=args.max_inflight,
        client_quota=args.quota,
        executor=args.executor,
        max_workers=args.jobs,
        telemetry_port=args.telemetry_port,
        telemetry_host=args.telemetry_host,
        trace=args.trace,
    )

    async def _main() -> None:
        import signal

        server = ClassificationServer(config)
        await server.start()
        print(f"serving on {server.address}  (Ctrl-C to stop)")
        if server.telemetry_port is not None:
            print(
                f"telemetry sidecar on http://{config.telemetry_host}:"
                f"{server.telemetry_port}  (/metrics /healthz /readyz"
                " /spans/recent /stats /recorder/dump)"
            )
        if hasattr(signal, "SIGUSR1"):
            def _dump() -> None:
                count = server.dump_recorder(args.recorder_dump)
                print(f"flight recorder: wrote {count} spans to {args.recorder_dump}")

            try:
                asyncio.get_running_loop().add_signal_handler(
                    signal.SIGUSR1, _dump
                )
            except (NotImplementedError, RuntimeError):
                pass  # platforms without loop signal support run without it
        if hasattr(signal, "SIGTERM"):
            # Ctrl-C arrives as KeyboardInterrupt; SIGTERM (init systems,
            # `kill`, shells where background jobs ignore SIGINT) must get
            # the same graceful drain, not an abrupt exit.
            try:
                asyncio.get_running_loop().add_signal_handler(
                    signal.SIGTERM,
                    lambda: asyncio.ensure_future(server.stop()),
                )
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await server.wait_stopped()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("interrupted — server shut down", file=sys.stderr)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.telemetry.watch import (
        http_stats_fetcher,
        render_dashboard,
        render_progress,
        watch,
    )

    if bool(args.remote) == bool(args.telemetry):
        print(
            "error: pick one stats door: --remote HOST:PORT or --telemetry URL",
            file=sys.stderr,
        )
        return 2
    if args.telemetry:
        base = args.telemetry
        if "://" not in base:
            base = f"http://{base}"
        fetch = http_stats_fetcher(base)
    else:
        host, port = _parse_remote(args.remote)

        def fetch() -> dict:
            from repro.serve.client import ServeClient

            # One connection per poll: a dashboard must survive server
            # restarts, which a held socket would not.
            with ServeClient.connect(host, port) as client:
                return client.stats()

    if args.watch:
        clear = sys.stdout.isatty()
        try:
            successes = watch(
                fetch,
                interval=args.interval,
                iterations=args.iterations,
                clear=clear,
            )
        except KeyboardInterrupt:
            return 0
        return 0 if successes else 1
    try:
        stats = fetch()
    except Exception as error:  # noqa: BLE001 — one-shot: report and exit
        print(f"error: stats unavailable: {error}", file=sys.stderr)
        return 1
    print(render_dashboard(stats))
    if args.progress and args.telemetry:
        import json as json_module
        from urllib.request import urlopen

        base = args.telemetry
        if "://" not in base:
            base = f"http://{base}"
        with urlopen(base.rstrip("/") + "/progress", timeout=5.0) as response:
            payload = json_module.loads(response.read().decode("utf-8"))
        print()
        print(render_progress(payload.get("jobs", {})))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    report = lint_specification(list(args.formulas))
    print(report.table())
    return 1 if report.warnings() else 0


def cmd_automaton(args: argparse.Namespace) -> int:
    automaton = formula_to_automaton(parse_formula(args.formula), _alphabet_from(args.props))
    automaton = quotient_reduce(automaton)
    print(to_dot(automaton) if args.dot else describe(automaton))
    return 0


def cmd_omega(args: argparse.Namespace) -> int:
    alphabet = Alphabet.from_letters(args.alphabet)
    automaton = quotient_reduce(omega_language(args.expression, alphabet))
    verdict = classify_automaton(automaton)
    print(f"expression: {args.expression}")
    print(f"class:      {verdict.canonical.value} ({verdict.canonical.borel_name})")
    print(f"liveness:   {verdict.is_liveness}")
    print(describe(automaton))
    return 0


def cmd_zoo(_args: argparse.Namespace) -> int:
    print(f"{'witness':26s} {'class':12s} {'Borel':5s} source")
    for example in figure_1_zoo():
        cls = example.expected_class
        print(f"{example.name:26s} {cls.value:12s} {cls.borel_name:5s} {example.source}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="The Manna-Pnueli safety-progress hierarchy toolkit."
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed the global random module (reproducible randomized runs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser("classify", help="classify a temporal formula")
    p_classify.add_argument("formula", nargs="?", default=None)
    p_classify.add_argument("--props", help="comma-separated proposition universe")
    p_classify.add_argument(
        "--batch", metavar="FILE", help="classify every spec in FILE through the engine"
    )
    p_classify.add_argument(
        "--executor", choices=["serial", "thread", "process"], default="serial"
    )
    p_classify.add_argument("--jobs", type=int, default=None, help="pool size for --batch")
    p_classify.add_argument(
        "--explain",
        action="store_true",
        help="print classification provenance: deciding view, route, evidence",
    )
    p_classify.add_argument(
        "--remote",
        metavar="HOST:PORT",
        default=None,
        help="send the request to a running classification server instead",
    )
    p_classify.add_argument(
        "--trace",
        action="store_true",
        help="with --remote: propagate a trace on the wire and print the"
        " stitched span tree (client root → server request → stages)",
    )
    p_classify.set_defaults(func=cmd_classify)

    p_serve = sub.add_parser(
        "serve", help="run the long-lived classification service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7911, help="TCP port (0 = ephemeral; default 7911)"
    )
    p_serve.add_argument(
        "--socket", metavar="PATH", default=None, help="serve on a unix socket instead"
    )
    p_serve.add_argument(
        "--store",
        metavar="FILE",
        default=None,
        help="persistent SQLite result store shared across restarts/processes",
    )
    p_serve.add_argument(
        "--window-ms",
        type=float,
        default=10.0,
        help="batching window: how long the first request waits for company (default 10)",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="server-wide admitted-request cap; beyond it clients get a"
        " retryable 'overloaded' frame (default 256)",
    )
    p_serve.add_argument(
        "--quota",
        type=int,
        default=64,
        help="per-connection inflight cap (retryable 'quota' frame; default 64)",
    )
    p_serve.add_argument(
        "--executor", choices=["serial", "thread", "process"], default="serial"
    )
    p_serve.add_argument("--jobs", type=int, default=None, help="engine pool size")
    p_serve.add_argument(
        "--smoke",
        metavar="SPEC",
        default=None,
        help="run the two-phase restart-durability smoke over SPEC and exit",
    )
    p_serve.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        metavar="P",
        help="serve the HTTP telemetry sidecar on this port (0 = ephemeral;"
        " default: no sidecar)",
    )
    p_serve.add_argument(
        "--telemetry-host",
        default="127.0.0.1",
        metavar="HOST",
        help="bind address for the telemetry sidecar (default 127.0.0.1)",
    )
    p_serve.add_argument(
        "--trace",
        action="store_true",
        help="record a span tree per request (wire propagation, flight"
        " recorder capture, response echo for traced clients)",
    )
    p_serve.add_argument(
        "--recorder-dump",
        metavar="FILE",
        default="repro-recorder.jsonl",
        help="where SIGUSR1 dumps the flight recorder"
        " (default repro-recorder.jsonl)",
    )
    p_serve.add_argument(
        "--telemetry-smoke",
        metavar="SPEC",
        default=None,
        help="run the telemetry-plane smoke (traced traffic, sidecar"
        " endpoints, recorder dump, stitched spans) over SPEC and exit",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_stats = sub.add_parser(
        "stats", help="dashboard over a running classification server"
    )
    p_stats.add_argument(
        "--remote",
        metavar="HOST:PORT",
        default=None,
        help="poll the JSON-lines stats verb on this server",
    )
    p_stats.add_argument(
        "--telemetry",
        metavar="URL",
        default=None,
        help="poll a telemetry sidecar instead (e.g. http://127.0.0.1:9100)",
    )
    p_stats.add_argument(
        "--watch",
        action="store_true",
        help="poll and redraw until interrupted instead of printing one frame",
    )
    p_stats.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between --watch polls (default 2)",
    )
    p_stats.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop --watch after N polls (default: run until Ctrl-C)",
    )
    p_stats.add_argument(
        "--progress",
        action="store_true",
        help="with --telemetry: also show the /progress job heartbeats",
    )
    p_stats.set_defaults(func=cmd_stats)

    p_trace = sub.add_parser(
        "trace", help="run a spec file with span tracing and print the span tree"
    )
    p_trace.add_argument("file", help="spec file: one formula / omega / monitor line each")
    p_trace.add_argument(
        "--executor", choices=["serial", "thread", "process"], default="serial"
    )
    p_trace.add_argument("--jobs", type=int, default=None, help="worker pool size")
    p_trace.add_argument(
        "--top", type=int, default=10, help="rows in the top-spans profile (default 10)"
    )
    p_trace.add_argument(
        "--jsonl",
        metavar="FILE",
        default=None,
        help="export spans as JSONL to FILE and schema-check the result",
    )
    p_trace.add_argument(
        "--prometheus",
        action="store_true",
        help="also print the metrics registry in Prometheus text format",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_engine = sub.add_parser(
        "engine", help="batch-evaluate a spec file through the caching engine"
    )
    p_engine.add_argument("file", help="spec file: one formula / omega / monitor line each")
    p_engine.add_argument(
        "--executor", choices=["serial", "thread", "process"], default="serial"
    )
    p_engine.add_argument("--jobs", type=int, default=None, help="worker pool size")
    p_engine.add_argument(
        "--repeat", type=int, default=1, help="run the batch N times (shows warm-cache effect)"
    )
    p_engine.add_argument(
        "--no-dedupe", action="store_true", help="disable structural job deduplication"
    )
    p_engine.add_argument(
        "--results", action="store_true", help="print one line per job before the summary"
    )
    p_engine.add_argument(
        "--verbose", "-v", action="store_true", help="also print the metrics registry"
    )
    p_engine.set_defaults(func=cmd_engine)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing of the four views with shrinking"
    )
    p_fuzz.add_argument(
        "--seed", dest="fuzz_seed", type=int, default=1990, help="generator seed (default 1990)"
    )
    p_fuzz.add_argument(
        "--budget", type=int, default=300, help="number of cases to run (default 300)"
    )
    p_fuzz.add_argument(
        "--oracle",
        action="append",
        metavar="NAME",
        help="restrict to one oracle (repeatable); default: all",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true", help="report raw counterexamples unshrunk"
    )
    p_fuzz.add_argument(
        "--write-corpus",
        metavar="DIR",
        default=None,
        help="persist shrunk counterexamples as JSON artifacts in DIR",
    )
    p_fuzz.add_argument(
        "--verbose", "-v", action="store_true", help="also print the metrics registry"
    )
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_bench = sub.add_parser(
        "bench", help="benchmark the dense fastpath kernels against the reference routes"
    )
    p_bench.add_argument(
        "--quick", action="store_true", help="smaller workloads (the CI smoke sizes)"
    )
    p_bench.add_argument(
        "--repeat", type=int, default=5, help="best-of-N interleaved runs (default 5)"
    )
    p_bench.add_argument(
        "--kernel",
        action="append",
        metavar="NAME",
        help="restrict to one kernel (repeatable); default: all",
    )
    p_bench.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the JSON report to FILE (e.g. BENCH_fastpath.json)",
    )
    p_bench.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="exit 1 if any kernel regressed >2x vs this baseline JSON",
    )
    p_bench.add_argument(
        "--obs",
        action="store_true",
        help="measure span-tracing overhead instead of route speedups",
    )
    p_bench.add_argument(
        "--serve",
        action="store_true",
        help="benchmark the classification service end to end (rps, p50/p99)",
    )
    p_bench.add_argument(
        "--fleet",
        action="store_true",
        help="benchmark the vectorized monitor fleet vs a scalar monitor loop",
    )
    p_bench.add_argument(
        "--backend",
        choices=["auto", "numpy", "pure"],
        default="auto",
        help="fleet backend for --fleet (default auto)",
    )
    p_bench.add_argument(
        "--limit",
        type=float,
        default=None,
        help="overhead budget for --obs as a fraction (default 0.05)",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_lint = sub.add_parser("lint", help="lint a property-list specification")
    p_lint.add_argument("formulas", nargs="+")
    p_lint.set_defaults(func=cmd_lint)

    p_automaton = sub.add_parser("automaton", help="show a formula's automaton")
    p_automaton.add_argument("formula")
    p_automaton.add_argument("--props")
    p_automaton.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p_automaton.set_defaults(func=cmd_automaton)

    p_omega = sub.add_parser("omega", help="classify an ω-regular expression")
    p_omega.add_argument("expression")
    p_omega.add_argument("--alphabet", default="ab", help="letters, e.g. 'abc'")
    p_omega.set_defaults(func=cmd_omega)

    p_monitor = sub.add_parser(
        "monitor", help="run a vectorized monitor fleet over JSONL event batches"
    )
    p_monitor.add_argument("formula", help="temporal formula (or ω-regex with --omega)")
    p_monitor.add_argument("--props", help="comma-separated proposition universe")
    p_monitor.add_argument(
        "--omega",
        action="store_true",
        help="treat FORMULA as an ω-regular expression over --alphabet",
    )
    p_monitor.add_argument(
        "--alphabet", default="ab", help="letters for --omega (default 'ab')"
    )
    p_monitor.add_argument(
        "--streams", type=int, default=1, help="number of concurrent streams"
    )
    p_monitor.add_argument(
        "--stream",
        metavar="FILE",
        default="-",
        help="JSONL batch file, '-' for stdin (default)",
    )
    p_monitor.add_argument(
        "--backend", choices=["auto", "numpy", "pure"], default="auto"
    )
    p_monitor.add_argument(
        "--per-batch",
        action="store_true",
        help="print the verdict tally after every batch",
    )
    p_monitor.add_argument(
        "--verdicts",
        action="store_true",
        help="print one character per stream at the end (V/S/?)",
    )
    p_monitor.set_defaults(func=cmd_monitor)

    p_census = sub.add_parser(
        "census", help="classify a .ltl corpus through a crash-isolated pool"
    )
    p_census.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=".ltl files and/or directories of .ltl files",
    )
    p_census.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: cpu count, max 8)"
    )
    p_census.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-formula wall-clock budget in seconds (default 60)",
    )
    p_census.add_argument(
        "--serial",
        action="store_true",
        help="run in-process (no isolation/timeout; for debugging and tests)",
    )
    p_census.add_argument(
        "--start-method",
        choices=["fork", "spawn", "forkserver"],
        default=None,
        help="multiprocessing start method (default: fork where available)",
    )
    p_census.add_argument(
        "--limit", type=int, default=None, help="census only the first N formulas"
    )
    p_census.add_argument(
        "--out", metavar="CSV", default=None, help="write the per-formula census CSV"
    )
    p_census.add_argument(
        "--summary-out",
        metavar="JSON",
        default=None,
        help="write the deterministic summary (e.g. BENCH_census.json)",
    )
    p_census.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="exit 1 if any class/size column deviates from this baseline CSV",
    )
    p_census.add_argument(
        "--emit-corpus",
        metavar="DIR",
        default=None,
        help="regenerate the curated corpus files into DIR and exit",
    )
    p_census.add_argument(
        "--corpus-seed",
        type=int,
        default=1990,
        help="generator seed for --emit-corpus (default 1990)",
    )
    p_census.set_defaults(func=cmd_census)

    p_zoo = sub.add_parser("zoo", help="print the canonical Figure-1 witnesses")
    p_zoo.set_defaults(func=cmd_zoo)

    args = parser.parse_args(argv)
    if args.seed is not None:
        random.seed(args.seed)
    # Every failure a user can cause from the command line — a formula that
    # does not parse, a missing file, a refused connection — exits nonzero
    # with one line on stderr.  Tracebacks are for bugs, not for typos.
    try:
        return args.func(args)
    except BrokenPipeError:
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except (ReproError, OSError, ValueError) as error:
        message = str(error).splitlines()[0] if str(error) else type(error).__name__
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
