"""Command-line interface: ``python -m repro <command> …``.

Commands
--------

classify FORMULA [--props p,q]        place a formula in the hierarchy
lint FORMULA [FORMULA …]              check a specification for coverage gaps
automaton FORMULA [--dot]             print (or DOT-render) the automaton
omega EXPRESSION --alphabet ab        classify an ω-regular expression
zoo                                   print the canonical Figure-1 witnesses
"""

from __future__ import annotations

import argparse
import sys

from repro.core import classify_formula, formula_to_automaton
from repro.core.canonical import figure_1_zoo
from repro.logic import parse_formula
from repro.omega.classify import classify as classify_automaton
from repro.omega.omega_regex import omega_language
from repro.omega.reduce import quotient_reduce
from repro.omega.render import describe, to_dot
from repro.systems import lint_specification
from repro.words import Alphabet


def _alphabet_from(props: str | None):
    if props is None:
        return None
    return Alphabet.powerset_of_propositions([p.strip() for p in props.split(",") if p.strip()])


def cmd_classify(args: argparse.Namespace) -> int:
    report = classify_formula(parse_formula(args.formula), _alphabet_from(args.props))
    print(report.summary())
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    report = lint_specification(list(args.formulas))
    print(report.table())
    return 1 if report.warnings() else 0


def cmd_automaton(args: argparse.Namespace) -> int:
    automaton = formula_to_automaton(parse_formula(args.formula), _alphabet_from(args.props))
    automaton = quotient_reduce(automaton)
    print(to_dot(automaton) if args.dot else describe(automaton))
    return 0


def cmd_omega(args: argparse.Namespace) -> int:
    alphabet = Alphabet.from_letters(args.alphabet)
    automaton = quotient_reduce(omega_language(args.expression, alphabet))
    verdict = classify_automaton(automaton)
    print(f"expression: {args.expression}")
    print(f"class:      {verdict.canonical.value} ({verdict.canonical.borel_name})")
    print(f"liveness:   {verdict.is_liveness}")
    print(describe(automaton))
    return 0


def cmd_zoo(_args: argparse.Namespace) -> int:
    print(f"{'witness':26s} {'class':12s} {'Borel':5s} source")
    for example in figure_1_zoo():
        cls = example.expected_class
        print(f"{example.name:26s} {cls.value:12s} {cls.borel_name:5s} {example.source}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="The Manna-Pnueli safety-progress hierarchy toolkit."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser("classify", help="classify a temporal formula")
    p_classify.add_argument("formula")
    p_classify.add_argument("--props", help="comma-separated proposition universe")
    p_classify.set_defaults(func=cmd_classify)

    p_lint = sub.add_parser("lint", help="lint a property-list specification")
    p_lint.add_argument("formulas", nargs="+")
    p_lint.set_defaults(func=cmd_lint)

    p_automaton = sub.add_parser("automaton", help="show a formula's automaton")
    p_automaton.add_argument("formula")
    p_automaton.add_argument("--props")
    p_automaton.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p_automaton.set_defaults(func=cmd_automaton)

    p_omega = sub.add_parser("omega", help="classify an ω-regular expression")
    p_omega.add_argument("expression")
    p_omega.add_argument("--alphabet", default="ab", help="letters, e.g. 'abc'")
    p_omega.set_defaults(func=cmd_omega)

    p_zoo = sub.add_parser("zoo", help="print the canonical Figure-1 witnesses")
    p_zoo.set_defaults(func=cmd_zoo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
