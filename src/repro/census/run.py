"""Running the census: every corpus formula through the full pipeline.

One :class:`CensusRow` per unique formula, in corpus order, each recording

* the hierarchy verdict — canonical class, the six membership flags,
  liveness (and uniform liveness where decidable);
* the Wagner measurements — Streett index and obligation degree;
* the syntactic view — fragment class and literal normal form, so the
  census doubles as a syntactic-vs-semantic agreement table;
* automaton sizes per route — the GPVW NBA, the Safra DRA it determinizes
  to, the color-respecting quotient of that DRA, and the automaton the
  engine's own (fast-path-aware) compilation route produced;
* wall-clock time and a status: ``ok``, ``error`` (the pipeline raised),
  ``crashed`` (the worker process died), or ``timeout``.

Everything but ``wall_ms`` is a pure function of the formula, so two census
runs over the same corpus are byte-identical modulo the wall-time column —
that determinism is what makes the committed baseline a regression gate.

The worker function reuses the engine's cache bank (worker-local), so
repeated subformula families warm each other up, and ships span payloads
plus a metrics snapshot delta back to the supervisor exactly like the
evaluation engine's process executor does.
"""

from __future__ import annotations

import csv
import os
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.census.corpus import CorpusEntry
from repro.census.pool import (
    STATUS_ERROR,
    STATUS_OK,
    CrashIsolatedPool,
    TaskOutcome,
)
from repro.engine.metrics import METRICS, snapshot_delta, trace
from repro.obs.spans import TRACER, span

#: Environment hook for the crash-isolation acceptance tests: set to
#: ``crash:<formula>``, ``hang:<formula>`` or ``raise:<formula>`` and the
#: worker holding exactly that canonical formula text will die / sleep
#: forever / raise — proving one poison formula flips one row and nothing
#: else.  See docs/CENSUS.md.
POISON_ENV = "REPRO_CENSUS_POISON"

#: CSV schema, in column order.  ``wall_ms`` is the only nondeterministic
#: column; ``census --check`` ignores it (and ``source``/``count``, which
#: describe the corpus rather than the property).
CENSUS_COLUMNS = (
    "formula",
    "source",
    "count",
    "status",
    "class",
    "safety",
    "guarantee",
    "obligation",
    "recurrence",
    "persistence",
    "reactivity",
    "liveness",
    "uniform_liveness",
    "streett_index",
    "obligation_degree",
    "syntactic",
    "normal_form",
    "nba_states",
    "dra_states",
    "quotient_states",
    "automaton_states",
    "wall_ms",
    "error",
)


@dataclass(frozen=True, slots=True)
class CensusRow:
    """One census line; every field serializes to one CSV cell."""

    formula: str
    source: str
    count: int
    status: str
    class_: str = ""
    safety: bool | None = None
    guarantee: bool | None = None
    obligation: bool | None = None
    recurrence: bool | None = None
    persistence: bool | None = None
    reactivity: bool | None = None
    liveness: bool | None = None
    uniform_liveness: bool | None = None
    streett_index: int | None = None
    obligation_degree: int | None = None
    syntactic: str = ""
    normal_form: str = ""
    nba_states: int | None = None
    dra_states: int | None = None
    quotient_states: int | None = None
    automaton_states: int | None = None
    wall_ms: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def as_cells(self) -> list[str]:
        cells = []
        for field in fields(self):
            value = getattr(self, field.name)
            if value is None:
                cells.append("")
            elif isinstance(value, bool):
                cells.append("true" if value else "false")
            elif isinstance(value, float):
                cells.append(f"{value:.3f}")
            else:
                cells.append(str(value))
        return cells


@dataclass
class CensusReport:
    """One census run: ordered rows plus run-level accounting."""

    rows: list[CensusRow]
    wall_seconds: float
    jobs: int
    timeout: float | None

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for row in self.rows:
            counts[row.status] = counts.get(row.status, 0) + 1
        return counts

    def class_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for row in self.rows:
            if row.ok:
                counts[row.class_] = counts.get(row.class_, 0) + 1
        return counts

    def render(self) -> str:
        lines = [
            f"formulas:   {len(self.rows)}"
            f" ({sum(row.count for row in self.rows)} occurrences)",
            "status:     "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.status_counts().items())),
        ]
        classes = self.class_counts()
        if classes:
            lines.append(
                "classes:    "
                + ", ".join(f"{k}={v}" for k, v in sorted(classes.items()))
            )
            live = sum(1 for row in self.rows if row.ok and row.liveness)
            lines.append(f"liveness:   {live}")
            lines.append(
                "sizes:      "
                + " ".join(
                    f"{name}≤{max(getattr(row, name) for row in self.rows if row.ok)}"
                    for name in (
                        "nba_states",
                        "dra_states",
                        "quotient_states",
                        "automaton_states",
                    )
                )
            )
        lines.append(
            f"wall time:  {self.wall_seconds:.2f}s"
            f"  (jobs={self.jobs}"
            + (f", timeout={self.timeout:g}s)" if self.timeout else ")")
        )
        for row in self.rows:
            if not row.ok:
                lines.append(f"  {row.status}: {row.formula}  ({row.error})")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The worker
# ---------------------------------------------------------------------------


def _apply_poison(text: str) -> None:
    """Test hook: fault injection keyed on the exact canonical formula."""
    poison = os.environ.get(POISON_ENV, "")
    if not poison:
        return
    mode, _, target = poison.partition(":")
    if text != target:
        return
    if mode == "crash":
        os._exit(13)
    elif mode == "hang":
        time.sleep(3600)
    elif mode == "raise":
        raise RuntimeError("poisoned formula (REPRO_CENSUS_POISON)")


def _measure(text: str) -> dict:
    """The pure measurement: one formula → one dict of row fields.

    Uses the worker-process-local engine cache bank throughout, so family
    corpora (which share subformulas and alphabets) get warm-cache behavior
    within each worker.
    """
    from repro.core.classifier import default_alphabet
    from repro.engine.cache import cached_classify_formula, cached_formula_to_nba
    from repro.logic.parser import parse_formula
    from repro.omega.reduce import quotient_reduce
    from repro.omega.safra import determinize

    _apply_poison(text)
    formula = parse_formula(text)
    alphabet = default_alphabet(formula)
    report = cached_classify_formula(formula, alphabet)
    nba = cached_formula_to_nba(formula, alphabet)
    dra = determinize(nba)
    quotient = quotient_reduce(dra)
    membership = report.semantic.membership
    from repro.core.classes import TemporalClass

    return {
        "class_": report.canonical_class.value,
        "safety": membership[TemporalClass.SAFETY],
        "guarantee": membership[TemporalClass.GUARANTEE],
        "obligation": membership[TemporalClass.OBLIGATION],
        "recurrence": membership[TemporalClass.RECURRENCE],
        "persistence": membership[TemporalClass.PERSISTENCE],
        "reactivity": membership[TemporalClass.REACTIVITY],
        "liveness": report.is_liveness,
        "uniform_liveness": report.is_uniform_liveness,
        "streett_index": report.streett_index,
        "obligation_degree": report.obligation_degree,
        "syntactic": report.syntactic.fragment_class.value,
        "normal_form": (
            report.syntactic.normal_form.value if report.syntactic.normal_form else ""
        ),
        "nba_states": nba.num_states,
        "dra_states": dra.num_states,
        "quotient_states": quotient.num_states,
        "automaton_states": report.automaton.num_states,
    }


def classify_task(payload: dict) -> dict:
    """Pool worker: measure one formula, optionally under a shipped-home span.

    ``payload`` is ``{"text": ..., "parent": (trace_id, span_id) | None}``;
    the reply carries the measurement plus, when tracing, the worker's span
    payloads and metrics delta for supervisor-side re-stitching (the same
    contract as the evaluation engine's process executor).
    """
    text = payload["text"]
    parent = payload.get("parent")
    if parent is None:
        return {"fields": _measure(text), "spans": None, "metrics": None}
    if not TRACER.enabled:
        TRACER.enable()
    mark = len(TRACER)
    before = METRICS.snapshot()
    with TRACER.span("census.formula", formula=text):
        result = _measure(text)
    return {
        "fields": result,
        "spans": TRACER.export_payloads(since=mark),
        "metrics": snapshot_delta(before, METRICS.snapshot()),
    }


# ---------------------------------------------------------------------------
# The run
# ---------------------------------------------------------------------------


def _row_from_outcome(entry: CorpusEntry, outcome: TaskOutcome) -> CensusRow:
    if outcome.status == STATUS_OK:
        return CensusRow(
            formula=entry.text,
            source=entry.source,
            count=entry.count,
            status=STATUS_OK,
            wall_ms=outcome.wall_seconds * 1e3,
            **outcome.result["fields"],
        )
    return CensusRow(
        formula=entry.text,
        source=entry.source,
        count=entry.count,
        status=outcome.status,
        wall_ms=outcome.wall_seconds * 1e3,
        error=outcome.error or "",
    )


def run_census(
    entries: Sequence[CorpusEntry],
    *,
    jobs: int | None = None,
    timeout: float | None = 60.0,
    serial: bool = False,
    start_method: str | None = None,
    on_row: Callable[[CensusRow], None] | None = None,
) -> CensusReport:
    """Classify every corpus entry; never let one entry sink the run.

    ``serial=True`` runs in-process (no isolation, no timeout — exceptions
    still become ``error`` rows), which is what the differential tests use
    to compare census rows against direct engine calls bit for bit.
    """
    from repro.obs.telemetry.heartbeat import heartbeat

    start = time.perf_counter()
    with span("census.run", formulas=len(entries), serial=serial) as run_span, heartbeat(
        "census", total=len(entries)
    ) as beat:
        parent = TRACER.capture() if TRACER.enabled else None
        parent_tuple = (parent.trace_id, parent.span_id) if parent else None
        payloads = [{"text": entry.text, "parent": parent_tuple} for entry in entries]
        if serial:
            outcomes = []
            for index, payload in enumerate(payloads):
                outcome = _serial_outcome(index, payload)
                beat.advance(errors=0 if outcome.ok else 1)
                outcomes.append(outcome)
            jobs_used = 1
        else:
            pool = CrashIsolatedPool(
                classify_task,
                jobs=jobs,
                timeout=timeout,
                start_method=start_method,
            )

            def _beat_outcome(outcome: TaskOutcome) -> None:
                # map() blocks until the run ends, so liveness telemetry
                # (rows/s, ETA, live worker count) rides the pool's hook.
                beat.advance(errors=0 if outcome.ok else 1)
                beat.set_workers(pool.workers_alive)

            pool.on_outcome = _beat_outcome
            jobs_used = pool.jobs
            outcomes = pool.map(payloads)
        rows = []
        for entry, outcome in zip(entries, outcomes):
            if outcome.ok and not serial:
                if outcome.result.get("spans"):
                    TRACER.adopt(outcome.result["spans"], parent)
                if outcome.result.get("metrics"):
                    METRICS.merge_snapshot(outcome.result["metrics"])
            row = _row_from_outcome(entry, outcome)
            rows.append(row)
            METRICS.counter(f"census.rows.{row.status}").inc()
            if on_row is not None:
                on_row(row)
        run_span.set_attribute("ok", all(row.ok for row in rows))
    wall = time.perf_counter() - start
    METRICS.timer("census.run").observe(wall)
    trace(
        "census.run",
        formulas=len(entries),
        ok=sum(1 for row in rows if row.ok),
        seconds=wall,
    )
    return CensusReport(
        rows=rows, wall_seconds=wall, jobs=0 if serial else jobs_used, timeout=timeout
    )


def _serial_outcome(index: int, payload: dict) -> TaskOutcome:
    start = time.perf_counter()
    try:
        result = classify_task(payload)
        return TaskOutcome(index, STATUS_OK, result, None, time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 — serial rows degrade like pool rows
        return TaskOutcome(
            index,
            STATUS_ERROR,
            None,
            f"{type(exc).__name__}: {exc}",
            time.perf_counter() - start,
        )


# ---------------------------------------------------------------------------
# CSV persistence
# ---------------------------------------------------------------------------


def write_census_csv(rows: Iterable[CensusRow], path: Path | str) -> int:
    """Write the census deterministically; returns the row count."""
    rows = list(rows)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow(CENSUS_COLUMNS)
        for row in rows:
            writer.writerow(row.as_cells())
    return len(rows)


def read_census_csv(path: Path | str) -> list[dict[str, str]]:
    """Read a census CSV back as one raw-string dict per row.

    Raw strings on purpose: the baseline check compares *serialized* cells,
    so a formatting change in any column is a diff, not a silent coercion.
    """
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"census CSV {path} is empty") from None
        if header != list(CENSUS_COLUMNS):
            raise ValueError(
                f"census CSV {path} has unexpected columns {header!r}"
                f" (expected {list(CENSUS_COLUMNS)!r})"
            )
        return [dict(zip(header, cells)) for cells in reader]
