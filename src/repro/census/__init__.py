"""Corpus-scale classification census.

The paper's six-class hierarchy is only convincing as a reproduction if it
holds over *corpora* of formulas, not hand-picked examples.  This package
turns the repo into that measurement instrument:

* :mod:`repro.census.corpus` — the ``.ltl`` corpus reader (raw lines or
  ``LTLSPEC``-prefixed, ``%`` comments, CRLF-tolerant, duplicates deduped
  with their count preserved, parse errors reported with ``file:line``);
* :mod:`repro.census.pool` — a crash-isolated multiprocessing pool: a
  worker that segfaults, ``os._exit``\\ s, or hangs past the per-task
  wall-clock timeout yields a status row and a replacement worker — one
  poison formula never sinks the run;
* :mod:`repro.census.run` — the census itself: every formula fanned through
  the full classify pipeline (engine-cached classification plus the
  GPVW → Safra → quotient route sizes) into one deterministic CSV row;
* :mod:`repro.census.check` — the regression gate: diff the class and size
  columns of a run against the committed baseline census;
* :mod:`repro.census.families` — the curated corpus builder (Dwyer-style
  patterns from :mod:`repro.logic.patterns` plus seeded qa generator
  families, one derived seed per formula so ``spawn`` and ``fork`` agree).

See ``docs/CENSUS.md`` for the corpus format, the CSV schema and the
baseline-refresh procedure.
"""

from repro.census.check import CheckReport, check_against_baseline, summary_json
from repro.census.corpus import CorpusEntry, load_corpus, read_corpus_file
from repro.census.families import build_corpus, write_corpus
from repro.census.pool import CrashIsolatedPool, TaskOutcome
from repro.census.run import (
    CENSUS_COLUMNS,
    CensusReport,
    CensusRow,
    read_census_csv,
    run_census,
    write_census_csv,
)

__all__ = [
    "CENSUS_COLUMNS",
    "CensusReport",
    "CensusRow",
    "CheckReport",
    "CorpusEntry",
    "CrashIsolatedPool",
    "TaskOutcome",
    "build_corpus",
    "check_against_baseline",
    "load_corpus",
    "read_census_csv",
    "read_corpus_file",
    "run_census",
    "summary_json",
    "write_census_csv",
    "write_corpus",
]
