"""The census regression gate: diff a run against the committed baseline.

The baseline is a full census CSV checked into the repository (see
``formulas/census_baseline.csv``) plus a ``BENCH_census.json`` summary.
``census --check BASELINE`` re-runs any corpus (the full one, or the ~200
formula smoke sub-corpus in CI) and diffs the *semantic* columns — status,
class, membership flags, liveness, Wagner measurements, syntactic view and
all four automaton-size columns — formula by formula.  A change anywhere in
the engine that moves a classification or an automaton size therefore fails
the gate with a message naming the formula, the column, the baseline value
and the measured value.

Columns that describe the corpus rather than the property (``source``,
``count``) and the one nondeterministic column (``wall_ms``) are ignored,
so a sub-corpus run checks cleanly against the full baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Sequence

from repro import __version__
from repro.census.run import CensusReport, CensusRow

#: The columns the gate compares (everything semantic, nothing incidental).
CHECKED_COLUMNS = (
    "status",
    "class",
    "safety",
    "guarantee",
    "obligation",
    "recurrence",
    "persistence",
    "reactivity",
    "liveness",
    "uniform_liveness",
    "streett_index",
    "obligation_degree",
    "syntactic",
    "normal_form",
    "nba_states",
    "dra_states",
    "quotient_states",
    "automaton_states",
)

SUMMARY_SCHEMA = "repro-census/1"


@dataclass(frozen=True, slots=True)
class CheckReport:
    """Outcome of one baseline diff."""

    compared: int
    failures: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        if self.ok:
            return f"census matches baseline on all {self.compared} formulas"
        lines = [
            f"census deviates from baseline"
            f" ({len(self.failures)} problem(s), {self.compared} formulas compared):"
        ]
        lines.extend(f"  {failure}" for failure in self.failures)
        return "\n".join(lines)


def _row_cells(row: CensusRow) -> dict[str, str]:
    from repro.census.run import CENSUS_COLUMNS

    return dict(zip(CENSUS_COLUMNS, row.as_cells()))


def check_against_baseline(
    rows: Sequence[CensusRow], baseline: Sequence[dict[str, str]]
) -> CheckReport:
    """Diff the checked columns of ``rows`` against the baseline CSV rows.

    Every formula in the run must appear in the baseline; mismatches are
    reported per formula and column.  The baseline may be a superset (the
    smoke job runs a sub-corpus against the full committed census).
    """
    indexed = {cells["formula"]: cells for cells in baseline}
    failures: list[str] = []
    compared = 0
    for row in rows:
        expected = indexed.get(row.formula)
        if expected is None:
            failures.append(f"{row.formula}: not in baseline (refresh it?)")
            continue
        compared += 1
        measured = _row_cells(row)
        for column in CHECKED_COLUMNS:
            if measured[column] != expected[column]:
                failures.append(
                    f"{row.formula}: {column} baseline={expected[column]!r}"
                    f" measured={measured[column]!r}"
                )
    return CheckReport(compared=compared, failures=tuple(failures))


# ---------------------------------------------------------------------------
# The committed summary (BENCH_census.json)
# ---------------------------------------------------------------------------


def _size_stats(rows: Sequence[CensusRow], name: str) -> dict[str, int]:
    values = [getattr(row, name) for row in rows if row.ok]
    if not values:
        return {"total": 0, "max": 0}
    return {"total": sum(values), "max": max(values)}


def summary_json(report: CensusReport, corpus: Sequence[str]) -> str:
    """A deterministic JSON summary of one census run (no timestamps, no
    wall-clock — byte-identical across runs of the same corpus)."""
    rows = report.rows
    ok_rows = [row for row in rows if row.ok]
    payload = {
        "schema": SUMMARY_SCHEMA,
        "version": __version__,
        "corpus": list(corpus),
        "formulas": len(rows),
        "occurrences": sum(row.count for row in rows),
        "status": report.status_counts(),
        "classes": report.class_counts(),
        "liveness": sum(1 for row in ok_rows if row.liveness),
        "syntactic_matches_semantic": sum(
            1 for row in ok_rows if row.syntactic == row.class_
        ),
        "max_streett_index": max((row.streett_index for row in ok_rows), default=0),
        "sizes": {
            name: _size_stats(rows, name)
            for name in (
                "nba_states",
                "dra_states",
                "quotient_states",
                "automaton_states",
            )
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
