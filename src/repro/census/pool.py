"""A multiprocessing pool that survives its workers.

``concurrent.futures.ProcessPoolExecutor`` is permanently broken the moment
one worker dies (``BrokenProcessPool``), and it has no per-task wall-clock
timeout — both fatal flaws for a corpus census, where a single pathological
formula may segfault the interpreter, ``os._exit`` from a C extension, or
simply never terminate.  :class:`CrashIsolatedPool` keeps one pipe per
worker and supervises them directly:

* each worker holds at most one task; the supervisor knows exactly which
  task a dead worker was holding, so the crash is charged to the right row;
* a worker that dies (EOF on its pipe) yields a ``crashed`` outcome and a
  replacement worker — the pool replenishes and the run continues;
* a task that outlives ``timeout`` seconds gets its worker killed and a
  ``timeout`` outcome; the remaining tasks are unaffected;
* an exception *inside* the worker function is caught worker-side and comes
  back as an ``error`` outcome (the worker survives and is reused).

Workers are plain processes from a configurable start method (``fork`` where
available, else ``spawn``); the worker function and initializer must be
module-level callables so they pickle under ``spawn``.  Results are opaque
to the pool — callers interpret them (the census runner ships span payloads
and metrics deltas through here, for example).
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable, Sequence

from repro.engine.metrics import METRICS

#: Outcome statuses, in the order they appear in census CSVs.
STATUS_OK = "ok"
STATUS_ERROR = "error"  # worker function raised; worker survived
STATUS_CRASHED = "crashed"  # worker process died mid-task
STATUS_TIMEOUT = "timeout"  # task exceeded the wall-clock budget


@dataclass(frozen=True, slots=True)
class TaskOutcome:
    """What happened to one task: a result, or how it failed."""

    index: int
    status: str  # one of STATUS_OK / STATUS_ERROR / STATUS_CRASHED / STATUS_TIMEOUT
    result: Any | None
    error: str | None
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def _worker_loop(conn, worker: Callable, initializer: Callable | None) -> None:
    """Worker main: one task per message until the ``None`` shutdown pill."""
    try:
        if initializer is not None:
            initializer()
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message is None:
                return
            index, payload = message
            start = time.perf_counter()
            try:
                result = worker(payload)
                reply = (index, STATUS_OK, result, None, time.perf_counter() - start)
            except Exception as exc:  # noqa: BLE001 — must reach the supervisor
                reply = (
                    index,
                    STATUS_ERROR,
                    None,
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - start,
                )
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                return  # supervisor is gone; nothing left to report to
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _Slot:
    """One supervised worker: its process, its pipe, and its current task."""

    __slots__ = ("process", "conn", "task", "payload", "started", "deadline")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task: int | None = None
        self.payload: Any = None
        self.started: float = 0.0
        self.deadline: float | None = None


def default_start_method() -> str:
    """``fork`` where the platform offers it (fast, shares warm imports),
    else ``spawn``.  Either way the census output is identical — seeds and
    results are derived per formula, never from worker state."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class CrashIsolatedPool:
    """Map a worker function over payloads; no failure sinks the run.

    Parameters
    ----------
    worker:
        Module-level callable ``payload -> result`` (picklable).
    jobs:
        Number of worker processes (default: ``os.cpu_count()``, capped at 8
        — census tasks are CPU-bound and oversubscription only adds memory).
    timeout:
        Per-task wall-clock budget in seconds; ``None`` disables the budget.
    start_method:
        ``"fork"``, ``"spawn"`` or ``"forkserver"``; default picks
        :func:`default_start_method`.
    initializer:
        Optional module-level callable run once in each fresh worker
        (including replacements spawned after a crash).
    on_outcome:
        Optional callable invoked with each :class:`TaskOutcome` the moment
        it lands (success, error, crash or timeout) — :meth:`map` blocks
        until the whole run finishes, so live progress (the census
        heartbeat) must ride this hook.  Runs on the supervising thread; a
        raising hook is counted (``census.pool.callback_errors``) and
        ignored, never fatal.
    """

    def __init__(
        self,
        worker: Callable[[Any], Any],
        *,
        jobs: int | None = None,
        timeout: float | None = None,
        start_method: str | None = None,
        initializer: Callable[[], None] | None = None,
        on_outcome: Callable[[TaskOutcome], None] | None = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("pool jobs must be at least 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("pool timeout must be positive")
        self.worker = worker
        self.jobs = jobs or min(multiprocessing.cpu_count() or 1, 8)
        self.timeout = timeout
        self.initializer = initializer
        self.on_outcome = on_outcome
        #: Live worker-process count, readable from other threads while
        #: :meth:`map` runs (worker-liveness telemetry).
        self.workers_alive = 0
        self._ctx = multiprocessing.get_context(start_method or default_start_method())

    def _emit(self, outcome: TaskOutcome) -> None:
        if self.on_outcome is None:
            return
        try:
            self.on_outcome(outcome)
        except Exception:  # noqa: BLE001 — observer must not sink the run
            METRICS.counter("census.pool.callback_errors").inc()

    # ------------------------------------------------------------ lifecycle

    def _spawn_slot(self) -> _Slot:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_loop,
            args=(child_conn, self.worker, self.initializer),
            daemon=True,
        )
        process.start()
        # The supervisor must not hold the child's pipe end open, or a dead
        # worker would never read as EOF.
        child_conn.close()
        METRICS.counter("census.pool.workers_started").inc()
        return _Slot(process, parent_conn)

    def _retire_slot(self, slot: _Slot, *, kill: bool) -> None:
        try:
            slot.conn.close()
        except OSError:
            pass
        if kill and slot.process.is_alive():
            slot.process.kill()
        slot.process.join(timeout=5)

    # ------------------------------------------------------------------ map

    def map(self, payloads: Sequence[Any]) -> list[TaskOutcome]:
        """Run every payload; always returns one outcome per payload, in
        payload order, whatever the workers did."""
        pending: deque[tuple[int, Any]] = deque(enumerate(payloads))
        outcomes: list[TaskOutcome | None] = [None] * len(payloads)
        if not payloads:
            return []
        slots = [self._spawn_slot() for _ in range(min(self.jobs, len(payloads)))]
        self.workers_alive = len(slots)
        remaining = len(payloads)
        try:
            while remaining:
                self._fill_idle_slots(slots, pending)
                busy = [slot for slot in slots if slot.task is not None]
                if not busy:
                    break  # every task accounted for (or unassignable)
                self._collect(slots, busy, pending, outcomes)
                self.workers_alive = sum(
                    1 for slot in slots if slot.process.is_alive()
                )
                remaining = sum(1 for outcome in outcomes if outcome is None)
        finally:
            self.workers_alive = 0
            for slot in slots:
                if slot.task is None:
                    try:
                        slot.conn.send(None)  # graceful shutdown pill
                    except OSError:
                        pass
                self._retire_slot(slot, kill=slot.task is not None)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------ internals

    def _fill_idle_slots(self, slots: list[_Slot], pending: deque) -> None:
        if pending and not slots:
            slots.append(self._spawn_slot())
        for position, slot in enumerate(slots):
            while slot.task is None and pending:
                index, payload = pending.popleft()
                try:
                    slot.conn.send((index, payload))
                except (BrokenPipeError, OSError):
                    # The worker died between tasks: nothing was lost, the
                    # task just needs a healthy worker.
                    pending.appendleft((index, payload))
                    self._retire_slot(slot, kill=True)
                    METRICS.counter("census.pool.respawns").inc()
                    slot = slots[position] = self._spawn_slot()
                    continue
                slot.task = index
                slot.payload = payload
                slot.started = time.monotonic()
                slot.deadline = (
                    slot.started + self.timeout if self.timeout is not None else None
                )

    def _collect(
        self,
        slots: list[_Slot],
        busy: list[_Slot],
        pending: deque,
        outcomes: list[TaskOutcome | None],
    ) -> None:
        now = time.monotonic()
        deadlines = [slot.deadline for slot in busy if slot.deadline is not None]
        wait_timeout = max(0.0, min(deadlines) - now) if deadlines else None
        ready = connection.wait([slot.conn for slot in busy], timeout=wait_timeout)
        for conn in ready:
            slot = next(s for s in slots if s.conn is conn)
            self._receive(slot, slots, pending, outcomes)
        now = time.monotonic()
        for slot in list(slots):
            if (
                slot.task is not None
                and slot.deadline is not None
                and now >= slot.deadline
            ):
                self._expire(slot, slots, pending, outcomes)

    def _receive(
        self,
        slot: _Slot,
        slots: list[_Slot],
        pending: deque,
        outcomes: list[TaskOutcome | None],
    ) -> None:
        position = slots.index(slot)
        try:
            index, status, result, error, seconds = slot.conn.recv()
        except (EOFError, OSError):
            # Worker died mid-task (os._exit, segfault, OOM-kill): charge the
            # held task, replace the worker, keep going.
            held = slot.task
            wall = time.monotonic() - slot.started
            self._retire_slot(slot, kill=True)
            exitcode = slot.process.exitcode
            if held is not None:
                outcomes[held] = TaskOutcome(
                    index=held,
                    status=STATUS_CRASHED,
                    result=None,
                    error=f"worker died (exitcode {exitcode})",
                    wall_seconds=wall,
                )
                METRICS.counter("census.pool.crashed").inc()
                self._emit(outcomes[held])
            METRICS.counter("census.pool.respawns").inc()
            if pending:
                slots[position] = self._spawn_slot()
            else:
                del slots[position]
            return
        outcomes[index] = TaskOutcome(
            index=index,
            status=status,
            result=result,
            error=error,
            wall_seconds=seconds,
        )
        if status == STATUS_ERROR:
            METRICS.counter("census.pool.errors").inc()
        self._emit(outcomes[index])
        slot.task = None
        slot.payload = None
        slot.deadline = None

    def _expire(
        self,
        slot: _Slot,
        slots: list[_Slot],
        pending: deque,
        outcomes: list[TaskOutcome | None],
    ) -> None:
        position = slots.index(slot)
        held = slot.task
        assert held is not None
        wall = time.monotonic() - slot.started
        self._retire_slot(slot, kill=True)
        outcomes[held] = TaskOutcome(
            index=held,
            status=STATUS_TIMEOUT,
            result=None,
            error=f"timed out after {self.timeout:.1f}s",
            wall_seconds=wall,
        )
        METRICS.counter("census.pool.timeouts").inc()
        self._emit(outcomes[held])
        METRICS.counter("census.pool.respawns").inc()
        if pending:
            slots[position] = self._spawn_slot()
        else:
            del slots[position]
