"""Reading ``.ltl`` corpus files into a deduplicated formula list.

The accepted format is the common denominator of the corpora floating
around the LTL tool ecosystem (Spot's ``genltl`` output, NuSMV spec files,
one-formula-per-line collections):

* one formula per line, in this library's LTL+Past syntax;
* an optional ``LTLSPEC`` prefix (NuSMV style) is stripped;
* ``%`` starts a comment — full-line or inline — running to end of line;
* blank lines (and lines that are only a comment) are skipped;
* CRLF and trailing whitespace are tolerated;
* duplicate formulas (structurally equal after parsing) are deduplicated,
  keeping the first occurrence's source position and counting the rest.

A line that fails to parse raises :class:`repro.errors.CorpusError` naming
``file:line`` and carrying the underlying :class:`~repro.errors.ParseError`
with its character offset and caret snippet, so the message points at the
exact column inside the exact line of the corpus file.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import CorpusError, ParseError
from repro.logic.ast import Formula
from repro.logic.parser import parse_formula

#: NuSMV-style line prefix, stripped case-sensitively (NuSMV keywords are
#: uppercase; a lowercase ``ltlspec`` would be a parse error anyway since
#: ``ltlspec`` is a valid proposition identifier).
LTLSPEC_PREFIX = "LTLSPEC"

#: Comment character.  ``%`` cannot occur inside a formula (the tokenizer
#: rejects it), so stripping from the first ``%`` is always safe.
COMMENT_CHAR = "%"


@dataclass(frozen=True, slots=True)
class CorpusEntry:
    """One unique formula of a corpus.

    ``text`` is the canonical rendering (``repr`` of the parsed formula,
    which reparses structurally), not the raw source line — so two spellings
    of the same formula ("``G p``" and "``G(p)``") share one entry.
    """

    text: str
    formula: Formula
    source: str  # "file.ltl:12" of the first occurrence
    count: int  # occurrences across the whole corpus (≥ 1)


def _strip_line(raw: str) -> str:
    """Comment/whitespace/prefix stripping for one raw corpus line."""
    line = raw.split(COMMENT_CHAR, 1)[0].strip()
    if line.startswith(LTLSPEC_PREFIX):
        rest = line[len(LTLSPEC_PREFIX):]
        # Only treat it as the NuSMV keyword when it is a whole word:
        # ``LTLSPECx`` is not a prefix (and not a formula either, but that
        # is the parser's diagnostic to give, at the right offset).
        if rest == "" or rest[0].isspace():
            line = rest.strip()
    return line


def read_corpus_file(path: Path | str) -> list[tuple[Formula, int]]:
    """Parse one ``.ltl`` file into ``(formula, line_number)`` pairs.

    Line numbers are 1-based and refer to the physical line in the file.
    Duplicates are *not* collapsed here — :func:`load_corpus` does that
    across the whole corpus.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise CorpusError(f"cannot read corpus file {path}: {error}") from error
    formulas: list[tuple[Formula, int]] = []
    # splitlines handles \n, \r\n and \r uniformly.
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_line(raw)
        if not line:
            continue
        try:
            formulas.append((parse_formula(line), lineno))
        except ParseError as error:
            raise CorpusError(
                f"{path}:{lineno}: {error}", path=str(path), line=lineno, cause=error
            ) from error
    return formulas


def _corpus_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand directories to their sorted ``*.ltl`` members; keep files."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            members = sorted(path.glob("*.ltl"))
            if not members:
                raise CorpusError(f"corpus directory {path} contains no .ltl files")
            yield from members
        else:
            yield path


def load_corpus(paths: Iterable[Path | str] | Path | str) -> list[CorpusEntry]:
    """Load and deduplicate a corpus from files and/or directories.

    Directories contribute their ``*.ltl`` files in sorted name order, so a
    corpus directory always loads in the same order on every platform.
    Returns entries in first-occurrence order; structurally equal formulas
    collapse to one entry whose ``count`` says how often they appeared.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    order: list[Formula] = []
    seen: dict[Formula, dict] = {}
    for path in _corpus_files(paths):
        for formula, lineno in read_corpus_file(path):
            slot = seen.get(formula)
            if slot is None:
                seen[formula] = {"source": f"{path}:{lineno}", "count": 1}
                order.append(formula)
            else:
                slot["count"] += 1
    if not order:
        raise CorpusError("corpus is empty (no formulas found)")
    return [
        CorpusEntry(
            text=repr(formula),
            formula=formula,
            source=seen[formula]["source"],
            count=seen[formula]["count"],
        )
        for formula in order
    ]
