"""Building the curated ``formulas/`` corpus.

Two ingredients, both fully deterministic:

* **Dwyer-style specification patterns** — every pattern/scope combination
  of :mod:`repro.logic.patterns` over several atom instantiations (plain
  propositions, boolean combinations, permuted roles), annotated with the
  pattern name as an inline ``%`` comment;
* **seeded generator families** — per-class κ-normal-form formulas and a
  mixed family of unrestricted LTL+Past formulas from the
  :mod:`repro.qa.generate` generators.  Every formula draws its *own*
  ``Random`` via :func:`repro.qa.generate.derive_rng`, so the i-th member
  of a family is identical under ``fork``, ``spawn`` or serial generation
  (seed derived per formula, never per worker).

Generated candidates whose GPVW NBA exceeds :data:`NBA_STATE_CAP` states
are skipped (deterministically — the candidate index keeps advancing), so
the committed corpus never contains a formula whose Safra determinization
could stall the census; the cap is generous next to the sizes the families
actually produce.

``write_corpus`` also emits ``smoke.ltl``: every 6th formula of the full
corpus, ``LTLSPEC``-prefixed (exercising the NuSMV-style reader path), as
the ~200-formula sub-corpus the CI smoke job checks against the committed
baseline.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.classes import TemporalClass
from repro.logic.ast import And, Formula, Not, Or, Prop
from repro.logic.patterns import catalog
from repro.qa.generate import derive_rng, random_formula, random_normal_form_formula

#: Candidates with a GPVW NBA above this size are excluded from generated
#: families.  PR 8's Safra twin handles hundreds of NBA states comfortably;
#: the cap exists so no generated formula can approach the pathological
#: blowups hypothesis once found around ~80 states.
NBA_STATE_CAP = 24

#: Default corpus seed — the paper's PODC year, like everything else here.
DEFAULT_SEED = 1990

_CLASS_QUOTA = 130
_MIXED_QUOTA = 320
_SMOKE_STRIDE = 6


def _nba_size_ok(formula: Formula) -> bool:
    from repro.core.classifier import default_alphabet
    from repro.logic.translate import formula_to_nba

    try:
        nba = formula_to_nba(formula, default_alphabet(formula))
    except Exception:  # noqa: BLE001 — unsupported fragment etc.: skip candidate
        return False
    return nba.num_states <= NBA_STATE_CAP


def _pattern_lines() -> list[str]:
    p, s, q, r = Prop("p"), Prop("s"), Prop("q"), Prop("r")
    instantiations = [
        ("atoms", (p, s, q, r)),
        ("boolean", (And((p, q)), Or((s, r)), q, r)),
        ("negated", (Not(p), s, Or((q, p)), And((r, Not(s))))),
        ("permuted", (p, Not(q), r, s)),
    ]
    lines: list[str] = []
    for tag, (ip, is_, iq, ir) in instantiations:
        for pattern in catalog(ip, is_, iq, ir):
            scope = pattern.scope.value.replace(" ", "-")
            lines.append(
                f"{pattern.formula!r}  % {pattern.name}/{scope} [{tag}]"
            )
    return lines


def _unique_family(seed: int, family: str, quota: int, draw) -> list[str]:
    """Draw candidates by index until ``quota`` unique, cap-passing formulas
    accumulate.  ``draw(rng)`` produces one candidate."""
    seen: set[Formula] = set()
    lines: list[str] = []
    index = 0
    while len(lines) < quota:
        formula = draw(derive_rng(seed, family, index))
        index += 1
        if formula in seen or not _nba_size_ok(formula):
            continue
        seen.add(formula)
        lines.append(repr(formula))
        if index > quota * 50:  # pragma: no cover — generator degenerated
            raise RuntimeError(f"family {family!r} cannot reach {quota} formulas")
    return lines


def build_corpus(seed: int = DEFAULT_SEED) -> dict[str, list[str]]:
    """The full corpus as ``{file name: lines}`` (comments included)."""
    props = ("p", "q")
    files: dict[str, list[str]] = {}
    files["patterns.ltl"] = [
        "% Dwyer-style specification patterns (repro.logic.patterns),",
        "% every pattern/scope combination over four atom instantiations.",
        *_pattern_lines(),
    ]
    for temporal_class in TemporalClass:
        name = temporal_class.value
        files[f"{name}.ltl"] = [
            f"% {name} family: kappa-normal-form formulas"
            f" (repro.qa.generate.random_normal_form_formula,"
            f" seed derived per formula from {seed}).",
            *_unique_family(
                seed,
                f"normal:{name}",
                _CLASS_QUOTA,
                lambda rng, cls=temporal_class: random_normal_form_formula(
                    rng, props, cls
                ),
            ),
        ]
    files["mixed.ltl"] = [
        f"% mixed family: unrestricted LTL+Past formulas"
        f" (repro.qa.generate.random_formula, depth 3,"
        f" seed derived per formula from {seed}).",
        *_unique_family(
            seed,
            "mixed",
            _MIXED_QUOTA,
            lambda rng: random_formula(rng, props, 3),
        ),
    ]
    return files


def _is_formula_line(line: str) -> bool:
    stripped = line.split("%", 1)[0].strip()
    return bool(stripped)


def build_smoke(files: dict[str, list[str]]) -> list[str]:
    """Every ``_SMOKE_STRIDE``-th corpus formula, ``LTLSPEC``-prefixed."""
    formulas = [
        line.split("%", 1)[0].strip()
        for name in sorted(files)
        for line in files[name]
        if _is_formula_line(line)
    ]
    picked = formulas[::_SMOKE_STRIDE]
    return [
        "% smoke sub-corpus: every"
        f" {_SMOKE_STRIDE}th formula of the committed corpus, NuSMV-style.",
        "% The CI census-smoke job runs this file with --check against the",
        "% committed baseline (duplicates of the main corpus on purpose).",
        *[f"LTLSPEC {text}" for text in picked],
    ]


def write_corpus(directory: Path | str, seed: int = DEFAULT_SEED) -> list[Path]:
    """Write the whole corpus (including ``smoke.ltl``); returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    files = build_corpus(seed)
    files["smoke.ltl"] = build_smoke(files)
    written = []
    for name in sorted(files):
        path = directory / name
        path.write_text("\n".join(files[name]) + "\n", encoding="utf-8")
        written.append(path)
    return written
