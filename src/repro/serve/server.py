"""The asyncio server core: accept → batch → dispatch → store → respond.

One :class:`ClassificationServer` owns four cooperating pieces:

* **accept** — an asyncio TCP (or unix-domain) server reads newline-framed
  JSON requests per connection.  ``stats``/``health`` are answered inline;
  ``classify``/``explain`` pass *admission control*: a draining server, a
  saturated ``max_inflight``, or an exhausted per-client quota each answer
  immediately with a typed, retryable error frame — backpressure is a
  protocol feature, never a hang or a reset.
* **batch** — admitted work lands on a queue; the dispatcher collects it
  into batching windows (first request opens a window of ``window_ms``,
  closed early at ``batch_max``) so one engine run amortizes cache and
  pool overhead over concurrent callers.
* **dispatch** — each window is processed off-loop in a worker thread:
  persistent-store lookups first, then one
  :class:`~repro.engine.batch.EvaluationEngine` run over the misses
  (structural dedupe and executor pools included).  If the engine itself
  fails — a broken or saturated pool, a pickling surprise — the batch
  degrades to serial in-process evaluation instead of failing requests:
  counted in ``serve.degraded_batches``, never user-visible.
* **store** — finished payloads are written through to the
  :class:`~repro.serve.store.PersistentStore`, so the *next* process to
  see these formulas answers from disk instead of re-running GPVW/Safra.

Graceful shutdown (:meth:`ClassificationServer.stop`) stops accepting,
answers new requests with retryable ``draining`` frames, waits for every
in-flight request to be answered, then closes connections and the store.

``repro.obs`` spans wrap each stage (``serve.accept``, ``serve.batch``,
``serve.dispatch``, ``serve.store.*``) and per-request latency lands in
the ``serve.latency_ms`` histogram, exported by the existing Prometheus
renderer — see ``docs/SERVING.md`` for the operations guide.

With tracing on, every request additionally gets a retrospective span
tree — a ``serve.request`` root (parented on the client's wire-propagated
span, when the frame carried a ``trace`` field) with
``serve.stage.{decode,admission,store,engine,encode}`` children — recorded
into the process tracer and the :class:`~repro.obs.telemetry.FlightRecorder`,
and echoed back on the response for client-side adoption.  Per-stage
latency histograms (``serve.stage_ms.*``) are always on.  With
``--telemetry-port`` set, a :class:`~repro.obs.telemetry.TelemetrySidecar`
serves ``/metrics``, ``/healthz``, ``/readyz``, ``/spans/recent``,
``/stats`` and ``/recorder/dump`` beside the service port — see
``docs/OBSERVABILITY.md`` ("Operating the service").
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable

import repro
from repro.engine.batch import ClassifyFormula, ClassifyOmega, EvaluationEngine, Job
from repro.engine.cache import CacheBank
from repro.engine.metrics import METRICS, MetricsRegistry
from repro.obs.spans import TRACER, Span, SpanContext, span
from repro.obs.telemetry.recorder import FlightRecorder, quantile
from repro.obs.telemetry.sidecar import TelemetrySidecar
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    Request,
    decode_frame,
    encode_frame,
    error_response,
    explanation_payload,
    ok_response,
    parse_request,
    report_payload,
    verdict_payload,
)
from repro.serve.store import PersistentStore, store_key

#: Buckets for the per-request latency histogram (milliseconds).
LATENCY_BOUNDS_MS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)

#: Buckets for the per-stage latency histograms (milliseconds).  Stages are
#: much shorter than whole requests (a decode is microseconds), so the
#: bucket floor sits two orders of magnitude lower.
STAGE_BOUNDS_MS = (0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 2000)

#: How many recent per-verb durations back the stats quantiles (p50/p90/p99).
LATENCY_WINDOW = 512


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``python -m repro serve`` can set from the command line."""

    host: str = "127.0.0.1"
    port: int | None = 0  #: 0 = ephemeral; None with ``socket_path`` set
    socket_path: str | None = None
    store_path: str | None = None
    window_ms: float = 10.0
    batch_max: int = 64
    max_inflight: int = 256
    client_quota: int = 64
    executor: str = "serial"
    max_workers: int | None = None
    drain_timeout: float = 10.0
    #: None = no sidecar; 0 = sidecar on an ephemeral port (published on
    #: :attr:`ClassificationServer.telemetry_port` once started).
    telemetry_port: int | None = None
    telemetry_host: str = "127.0.0.1"
    #: Enable span tracing at startup (per-request span trees, wire
    #: propagation, recorder capture).  Tracing already enabled on the
    #: process tracer is honored either way.
    trace: bool = False
    recorder_capacity: int = 256
    recorder_notable: int = 64


@dataclass(eq=False)  # identity hash: connections live in a set
class _Connection:
    """Per-connection state: the writer, its lock, and the live quota."""

    writer: asyncio.StreamWriter
    lock: asyncio.Lock
    inflight: int = 0
    closed: bool = False


@dataclass
class _WorkItem:
    """One admitted request on its way through batch → dispatch → respond."""

    request_id: Any
    verb: str
    subject: str
    key: str | None
    job: Job | None  # engine-batchable (classify); None for direct work
    compute: Callable[[], dict] | None  # direct payload thunk (explain)
    to_payload: Callable[[Any], dict] | None  # engine value → wire payload
    future: asyncio.Future = field(repr=False, default=None)
    enqueued: float = 0.0
    #: perf_counter at frame arrival — the request span's start.
    t_recv: float = 0.0
    #: stage → (start, end) perf_counter marks, turned into child spans and
    #: ``serve.stage_ms.*`` histogram samples when the response goes out.
    marks: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: the client's open span, when the request carried a ``trace`` field.
    trace_parent: SpanContext | None = None
    #: source of the payload once dispatched ("store" or "computed").
    source: str = ""


class ClassificationServer:
    """The long-lived classification service (see module docstring)."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        *,
        bank: CacheBank | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        # A server gets its *own* bank by default: restart semantics (and the
        # smoke test's cold-start phase) must not leak warmth through the
        # process-global CACHES.
        self.bank = bank if bank is not None else CacheBank()
        self.metrics = metrics or METRICS
        self.engine = EvaluationEngine(
            executor=self.config.executor,
            max_workers=self.config.max_workers,
            bank=self.bank,
            metrics=self.metrics,
        )
        self.store: PersistentStore | None = None
        self.port: int | None = None
        self.recorder = FlightRecorder(
            capacity=self.config.recorder_capacity,
            notable_capacity=self.config.recorder_notable,
        )
        self.sidecar: TelemetrySidecar | None = None
        self.telemetry_port: int | None = None
        self._latency: dict[str, deque[float]] = defaultdict(
            lambda: deque(maxlen=LATENCY_WINDOW)
        )
        self._latency_lock = threading.Lock()
        # The per-request instruments, resolved once: the registry lookup
        # (a lock plus a dict probe, times seven instruments per request)
        # is measurable at warm-pipeline request rates.
        self._request_timer = self.metrics.timer("serve.request")
        self._latency_hist = self.metrics.histogram(
            "serve.latency_ms", LATENCY_BOUNDS_MS
        )
        self._ok_counter = self.metrics.counter("serve.responses_ok")
        self._error_counter = self.metrics.counter("serve.responses_error")
        self._stage_hists = {
            stage: self.metrics.histogram(f"serve.stage_ms.{stage}", STAGE_BOUNDS_MS)
            for stage in ("decode", "admission", "store", "engine", "encode")
        }
        self._stage_span_names = {
            stage: f"serve.stage.{stage}" for stage in self._stage_hists
        }
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue[_WorkItem] | None = None
        self._dispatcher: asyncio.Task | None = None
        self._connections: set[_Connection] = set()
        self._inflight = 0
        self._draining = False
        self._started_at = 0.0
        self._idle: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._stopping = False

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._queue = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        if self.config.store_path:
            self.store = PersistentStore(self.config.store_path, metrics=self.metrics)
        if self.config.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.config.socket_path, limit=MAX_FRAME_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client,
                host=self.config.host,
                port=self.config.port or 0,
                limit=MAX_FRAME_BYTES,
            )
            self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        if self.config.trace and not TRACER.enabled:
            TRACER.enable()
        if self.config.telemetry_port is not None:
            self.sidecar = TelemetrySidecar(
                host=self.config.telemetry_host,
                port=self.config.telemetry_port,
                metrics=self.metrics,
                recorder=self.recorder,
                stats_fn=self._stats_payload,
                healthy_fn=self._liveness,
                ready_fn=self._readiness,
            )
            self.sidecar.start()
            self.telemetry_port = self.sidecar.port
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    @property
    def address(self) -> str:
        if self.config.socket_path:
            return f"unix:{self.config.socket_path}"
        return f"{self.config.host}:{self.port}"

    async def wait_stopped(self) -> None:
        assert self._stopped is not None
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: reject new work, drain in-flight, close."""
        if self._stopping:
            await self.wait_stopped()
            return
        self._stopping = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), self.config.drain_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            self.metrics.counter("serve.drain_timeouts").inc()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        for conn in list(self._connections):
            conn.closed = True
            try:
                conn.writer.close()
            except Exception:  # noqa: BLE001 — already-broken sockets
                pass
        self._connections.clear()
        if self.sidecar is not None:
            # Off-loop: sidecar.stop() joins its serving thread.
            await asyncio.to_thread(self.sidecar.stop)
            self.sidecar = None
        if self.store is not None:
            self.store.close()
        self._stopped.set()

    # ----------------------------------------------------------- connections

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        with span("serve.accept", draining=self._draining):
            self.metrics.counter("serve.connections").inc()
            conn = _Connection(writer=writer, lock=asyncio.Lock())
            self._connections.add(conn)
        try:
            while not conn.closed:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line outgrew the stream limit; the framing is now
                    # unrecoverable mid-line, so answer and hang up.
                    self.metrics.counter("serve.oversized").inc()
                    await self._send(
                        conn,
                        error_response(
                            None, "oversized", f"frame exceeds {MAX_FRAME_BYTES} bytes"
                        ),
                    )
                    break
                except (ConnectionError, OSError):
                    self.metrics.counter("serve.client_gone").inc()
                    break
                if not line:
                    break
                await self._handle_line(conn, line)
        finally:
            conn.closed = True
            self._connections.discard(conn)
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    async def _handle_line(self, conn: _Connection, line: bytes) -> None:
        t_recv = time.perf_counter()
        try:
            frame = decode_frame(line)
        except ProtocolError as error:
            self.metrics.counter("serve.bad_frames").inc()
            await self._send(conn, error_response(None, error.code, str(error)))
            return
        raw_id = frame.get("id")
        if not isinstance(raw_id, (str, int, float, bool, type(None))):
            raw_id = None
        try:
            request = parse_request(frame)
        except ProtocolError as error:
            self.metrics.counter("serve.bad_frames").inc()
            await self._send(conn, error_response(raw_id, error.code, str(error)))
            return
        t_decoded = time.perf_counter()
        self.metrics.counter(f"serve.requests.{request.verb}").inc()
        if request.verb == "health":
            await self._send(conn, ok_response(request.id, self._health_payload()))
            return
        if request.verb == "stats":
            await self._send(conn, ok_response(request.id, self._stats_payload()))
            return
        await self._admit(conn, request, decode=(t_recv, t_decoded))

    # -------------------------------------------------------------- admission

    async def _admit(
        self,
        conn: _Connection,
        request: Request,
        *,
        decode: tuple[float, float],
    ) -> None:
        if self._draining:
            self.metrics.counter("serve.rejected.draining").inc()
            await self._send(
                conn,
                error_response(
                    request.id, "draining", "server is shutting down; retry elsewhere"
                ),
            )
            return
        if self._inflight >= self.config.max_inflight:
            self.metrics.counter("serve.rejected.overloaded").inc()
            await self._send(
                conn,
                error_response(
                    request.id,
                    "overloaded",
                    f"server at max inflight ({self.config.max_inflight}); retry later",
                ),
            )
            return
        if conn.inflight >= self.config.client_quota:
            self.metrics.counter("serve.rejected.quota").inc()
            await self._send(
                conn,
                error_response(
                    request.id,
                    "quota",
                    f"client quota ({self.config.client_quota} inflight) exhausted;"
                    " await responses before sending more",
                ),
            )
            return
        try:
            item = self._build_item(request)
        except ProtocolError as error:
            self.metrics.counter("serve.bad_requests").inc()
            await self._send(conn, error_response(request.id, error.code, str(error)))
            return
        except Exception as error:  # noqa: BLE001 — admission must answer
            self.metrics.counter("serve.internal_errors").inc()
            await self._send(
                conn,
                error_response(
                    request.id, "internal", f"{type(error).__name__}: {error}"
                ),
            )
            return
        item.future = asyncio.get_running_loop().create_future()
        item.enqueued = time.perf_counter()
        item.t_recv = decode[0]
        item.marks["decode"] = decode
        item.marks["admission"] = (decode[1], item.enqueued)
        item.trace_parent = request.trace
        self._inflight += 1
        conn.inflight += 1
        self._idle.clear()
        self._queue.put_nowait(item)
        asyncio.create_task(self._respond(conn, item))

    def _build_item(self, request: Request) -> _WorkItem:
        """Parse and key one admitted request (cheap; runs on the loop)."""
        from repro.errors import ReproError
        from repro.logic import parse_formula

        params = request.params
        props = tuple(params["props"]) if params.get("props") else None
        if "formula" in params:
            try:
                formula = parse_formula(params["formula"])
            except ReproError as error:
                message = str(error).splitlines()[0]
                raise ProtocolError("bad-request", f"bad formula: {message}") from None
            subject = repr(formula)
            key = store_key(request.verb, subject, props or ())
            if request.verb == "classify":
                return _WorkItem(
                    request_id=request.id,
                    verb=request.verb,
                    subject=subject,
                    key=key,
                    job=ClassifyFormula(formula, props),
                    compute=None,
                    to_payload=report_payload,
                )
            bank = self.bank

            def compute() -> dict:
                from repro.obs.provenance import explain_formula
                from repro.words import Alphabet

                alphabet = (
                    Alphabet.powerset_of_propositions(props) if props else None
                )
                return explanation_payload(explain_formula(formula, alphabet, bank=bank))

            return _WorkItem(
                request_id=request.id,
                verb=request.verb,
                subject=subject,
                key=key,
                job=None,
                compute=compute,
                to_payload=None,
            )
        expression = params["expression"]
        letters = params.get("letters") or "ab"
        subject = f"omega {letters}: {expression}"
        key = store_key(f"{request.verb}-omega", expression, letters)
        if request.verb == "classify":
            return _WorkItem(
                request_id=request.id,
                verb=request.verb,
                subject=subject,
                key=key,
                job=ClassifyOmega(expression, letters),
                compute=None,
                to_payload=lambda verdict: verdict_payload(subject, verdict),
            )
        bank = self.bank

        def compute_omega() -> dict:
            from repro.obs.provenance import explain_expression

            return explanation_payload(explain_expression(expression, letters, bank=bank))

        return _WorkItem(
            request_id=request.id,
            verb=request.verb,
            subject=subject,
            key=key,
            job=None,
            compute=compute_omega,
            to_payload=None,
        )

    # ------------------------------------------------------------ dispatching

    async def _dispatch_loop(self) -> None:
        """Collect queue items into batching windows and run them off-loop."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            batch = [item]
            deadline = loop.time() + self.config.window_ms / 1000.0
            while len(batch) < self.config.batch_max:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), timeout=remaining)
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    break
            self.metrics.histogram("serve.batch_size").observe(len(batch))
            try:
                outcomes = await asyncio.to_thread(self._process_batch, batch)
            except Exception as error:  # noqa: BLE001 — never lose a batch
                self.metrics.counter("serve.internal_errors").inc()
                outcomes = [
                    (entry, False, f"{type(error).__name__}: {error}", "internal")
                    for entry in batch
                ]
            for entry, ok, payload_or_error, source in outcomes:
                if entry.future.done():
                    continue
                entry.source = source
                if ok:
                    response = ok_response(entry.request_id, payload_or_error)
                    response["cached"] = source == "store"
                    entry.future.set_result(response)
                else:
                    code = "internal" if source == "internal" else "evaluation"
                    entry.future.set_result(
                        error_response(entry.request_id, code, payload_or_error)
                    )

    def _process_batch(
        self, batch: list[_WorkItem]
    ) -> list[tuple[_WorkItem, bool, Any, str]]:
        """Worker-thread body: store lookups, one engine run, write-through."""
        with span("serve.batch", size=len(batch)):
            outcomes: list[tuple[_WorkItem, bool, Any, str]] = []
            pending: list[_WorkItem] = []
            for item in batch:
                if self.store is not None and item.key is not None:
                    lookup_start = time.perf_counter()
                    payload = self.store.get(item.key)
                    item.marks["store"] = (lookup_start, time.perf_counter())
                    if payload is not None:
                        outcomes.append((item, True, payload, "store"))
                        continue
                pending.append(item)
            engine_start = time.perf_counter()
            computed = self._evaluate(pending)
            engine_interval = (engine_start, time.perf_counter())
            for item in pending:
                # One window, one engine run: every miss in the window gets
                # the window's engine interval (the per-item share is not
                # observable from outside the engine).
                item.marks["engine"] = engine_interval
            for item, ok, payload_or_error in computed:
                if ok and self.store is not None and item.key is not None:
                    self.store.put(item.key, item.verb, payload_or_error)
                outcomes.append((item, ok, payload_or_error, "computed"))
            return outcomes

    def _evaluate(
        self, items: list[_WorkItem]
    ) -> list[tuple[_WorkItem, bool, Any]]:
        """Run one window's store misses: engine for jobs, direct for thunks."""
        if not items:
            return []
        with span("serve.dispatch", size=len(items)):
            outcomes: list[tuple[_WorkItem, bool, Any]] = []
            engine_items = [item for item in items if item.job is not None]
            if engine_items:
                try:
                    report = self.engine.run([item.job for item in engine_items])
                    for item, result in zip(engine_items, report.results):
                        if result.ok:
                            outcomes.append((item, True, item.to_payload(result.value)))
                        else:
                            outcomes.append((item, False, result.error))
                except Exception:  # noqa: BLE001 — degrade, don't fail requests
                    self.metrics.counter("serve.degraded_batches").inc()
                    outcomes.extend(self._evaluate_serial(item) for item in engine_items)
            outcomes.extend(
                self._evaluate_serial(item) for item in items if item.job is None
            )
            return outcomes

    def _evaluate_serial(self, item: _WorkItem) -> tuple[_WorkItem, bool, Any]:
        """The degradation floor: one request, this thread, no pools."""
        try:
            if item.compute is not None:
                return item, True, item.compute()
            value = item.job.evaluate(self.bank)
            return item, True, item.to_payload(value)
        except Exception as error:  # noqa: BLE001
            return item, False, f"{type(error).__name__}: {error}"

    # -------------------------------------------------------------- responses

    async def _respond(self, conn: _Connection, item: _WorkItem) -> None:
        try:
            response = await item.future
            elapsed = time.perf_counter() - item.enqueued
            ok = bool(response.get("ok"))
            self._request_timer.observe(elapsed)
            self._latency_hist.observe(elapsed * 1000.0)
            with self._latency_lock:
                self._latency[item.verb].append(elapsed * 1000.0)
            if ok:
                self._ok_counter.inc()
            else:
                self._error_counter.inc()
            root, children = self._request_spans(item, ok=ok)
            if root is not None and item.trace_parent is not None:
                # The client asked for propagation: echo the finished
                # server-side spans so it can adopt them into its trace.
                # (The encode stage closes after the send; it stays
                # server-side only.)
                response["trace"] = {
                    "id": root.trace_id,
                    "spans": [s.as_payload() for s in (root, *children)],
                }
            encode_start = time.perf_counter()
            await self._send(conn, response)
            if root is not None:
                encode_span = TRACER.record_span(
                    "serve.stage.encode",
                    start=encode_start,
                    end=time.perf_counter(),
                    parent=root,
                )
                if encode_span is not None:
                    children = (*children, encode_span)
            self._stage_hists["encode"].observe(
                (time.perf_counter() - encode_start) * 1000.0
            )
            spans = (root, *children) if root is not None else ()
            self.recorder.record(
                request_id=item.request_id,
                verb=item.verb,
                duration_s=time.perf_counter() - item.t_recv,
                spans=spans,
                error=not ok,
            )
        finally:
            self._inflight -= 1
            conn.inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    def _request_spans(
        self, item: _WorkItem, *, ok: bool
    ) -> tuple[Span | None, tuple[Span, ...]]:
        """The request's span tree, built retrospectively from stage marks.

        The pipeline crosses the event loop, a worker thread, and possibly
        an engine pool, so spans are recorded from ``perf_counter`` marks
        after the fact instead of via the contextvar stack.  The root
        parents on the client's wire-propagated span when one was sent.
        Stage histograms (``serve.stage_ms.*``) are fed here too, so they
        exist even with tracing off.
        """
        now = time.perf_counter()
        stage_hists = self._stage_hists
        for stage, (start, end) in item.marks.items():
            stage_hists[stage].observe((end - start) * 1000.0)
        if not TRACER.enabled:
            return None, ()
        span_names = self._stage_span_names
        return TRACER.record_tree(
            "serve.request",
            start=item.t_recv,
            end=now,
            parent=item.trace_parent,
            status="ok" if ok else "error",
            children=(
                (span_names[stage], start, end)
                for stage, (start, end) in sorted(
                    item.marks.items(), key=lambda entry: entry[1]
                )
            ),
            attributes={
                "verb": item.verb,
                "subject": item.subject,
                "request_id": item.request_id,
                "source": item.source,
            },
        )

    async def _send(self, conn: _Connection, frame: dict) -> None:
        if conn.closed:
            self.metrics.counter("serve.client_gone").inc()
            return
        try:
            async with conn.lock:
                conn.writer.write(encode_frame(frame))
                await conn.writer.drain()
        except (ConnectionError, OSError):
            # Mid-request disconnect: the work still finished (and was
            # stored); only the delivery is lost.
            self.metrics.counter("serve.client_gone").inc()
            conn.closed = True

    # ------------------------------------------------------------- verb bodies

    def _health_payload(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "version": repro.__version__,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "inflight": self._inflight,
            "max_inflight": self.config.max_inflight,
            "connections": len(self._connections),
            "executor": self.config.executor,
            "store": self.store.path if self.store is not None else None,
        }

    def _liveness(self) -> tuple[bool, dict[str, Any]]:
        """The sidecar ``/healthz`` hook: alive until draining begins."""
        payload = self._health_payload()
        return not self._draining, payload

    def _readiness(self) -> tuple[bool, dict[str, Any]]:
        """The sidecar ``/readyz`` hook: liveness *and* a live store probe."""
        alive, payload = self._liveness()
        if self.store is not None:
            store_ok = self.store.probe()
            payload["store_ok"] = store_ok
            alive = alive and store_ok
        return alive, payload

    def _latency_quantiles(self) -> dict[str, dict[str, float | int]]:
        """Per-verb p50/p90/p99/max over the recent-latency windows (ms)."""
        with self._latency_lock:
            windows = {verb: list(values) for verb, values in self._latency.items()}
        return {
            verb: {
                "count": len(values),
                "p50": round(quantile(values, 0.50), 3),
                "p90": round(quantile(values, 0.90), 3),
                "p99": round(quantile(values, 0.99), 3),
                "max": round(max(values), 3),
            }
            for verb, values in windows.items()
            if values
        }

    def _stats_payload(self) -> dict[str, Any]:
        cache_stats = {
            name: {
                "hits": stats.hits,
                "misses": stats.misses,
                "size": stats.size,
                "capacity": stats.capacity,
            }
            for name, stats in self.bank.stats().items()
        }
        counters = {
            name: counter
            for name, counter in self.metrics.snapshot()["counters"].items()
            if name.startswith("serve.")
        }
        store_stats = self.store.stats().as_dict() if self.store is not None else None
        return {
            "health": self._health_payload(),
            "caches": cache_stats,
            "store": store_stats,
            "counters": counters,
            "version": repro.__version__,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "store_hit_rate": (
                store_stats["hit_rate"] if store_stats is not None else None
            ),
            "latency_ms": self._latency_quantiles(),
            "telemetry": {
                "trace": TRACER.enabled,
                "sidecar": (
                    f"{self.config.telemetry_host}:{self.telemetry_port}"
                    if self.telemetry_port is not None
                    else None
                ),
                "recorder": self.recorder.stats(),
            },
        }

    def dump_recorder(self, path: str) -> int:
        """Write the flight recorder's JSONL to ``path`` (SIGUSR1 hook);
        returns the span count."""
        count = self.recorder.dump(path)
        self.metrics.counter("serve.recorder_dumps").inc()
        return count


# ---------------------------------------------------------------------------
# Running the server from synchronous code (CLI, tests, bench)
# ---------------------------------------------------------------------------


@dataclass
class ServerHandle:
    """A server running on its own thread/event loop, stoppable from sync code."""

    thread: threading.Thread
    loop: asyncio.AbstractEventLoop
    server: ClassificationServer

    @property
    def port(self) -> int | None:
        return self.server.port

    @property
    def address(self) -> str:
        return self.server.address

    def stop(self, timeout: float = 30.0) -> None:
        if not self.thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop)
        future.result(timeout)
        self.thread.join(timeout)

    def __enter__(self) -> ServerHandle:
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    config: ServerConfig | None = None,
    *,
    bank: CacheBank | None = None,
    metrics: MetricsRegistry | None = None,
    timeout: float = 30.0,
) -> ServerHandle:
    """Start a :class:`ClassificationServer` on a daemon thread and wait
    until it accepts connections.  The caller owns :meth:`ServerHandle.stop`."""
    started = threading.Event()
    holder: dict[str, Any] = {}
    failure: list[BaseException] = []

    def runner() -> None:
        async def amain() -> None:
            server = ClassificationServer(config, bank=bank, metrics=metrics)
            try:
                await server.start()
            except BaseException as error:  # noqa: BLE001 — report to caller
                failure.append(error)
                started.set()
                return
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await server.wait_stopped()

        asyncio.run(amain())

    thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError("classification server did not start in time")
    if failure:
        raise failure[0]
    return ServerHandle(thread=thread, loop=holder["loop"], server=holder["server"])
