"""The synchronous client of the classification service.

A thin, dependency-free (stdlib socket) speaker of the protocol in
:mod:`repro.serve.protocol`, used by the CLI (``classify --remote``), the
test suite and the bench harness.  Two levels of API:

* :meth:`ServeClient.request` / the verb shorthands (``classify``,
  ``explain``, ``stats``, ``health``) — one call, one result, errors raised
  as :class:`ServeError` (with the frame's ``code`` and ``retryable`` bit);
* :meth:`ServeClient.send` + :meth:`ServeClient.recv_for` — explicit
  pipelining for callers that keep many requests in flight on one
  connection (the bench harness, the quota tests).  Responses may arrive
  out of send order; they are matched by id.

When the process tracer is enabled (``classify --remote --trace``), every
work request opens a ``serve.client.request`` span, propagates its context
on the wire via the frame's ``trace`` field, and adopts the server-side
spans echoed on the response — so one stitched tree (client root → server
request → stage children) lands in the local tracer.  With tracing off
the client sends exactly the frames it always sent.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any

from repro.errors import ReproError
from repro.obs.spans import TRACER, Span
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    trace_field,
)


class ServeError(ReproError):
    """An error frame from the server, surfaced as an exception."""

    def __init__(self, code: str, message: str, *, retryable: bool = False) -> None:
        self.code = code
        self.retryable = retryable
        super().__init__(f"[{code}] {message}")


class ServeConnectionError(ServeError):
    """The transport died before a response arrived (always retryable)."""

    def __init__(self, message: str) -> None:
        super().__init__("connection", message, retryable=True)


class ServeClient:
    """One connection to a :class:`~repro.serve.server.ClassificationServer`."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        timeout: float = 30.0,
        trace: bool | None = None,
    ) -> None:
        sock.settimeout(timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._ids = itertools.count(1)
        self._stash: dict[Any, dict] = {}
        self._pending_spans: dict[Any, Span] = {}
        #: None = follow the process tracer; False = never trace (callers
        #: that must not pay wire-propagation costs, e.g. the bench A/B).
        self._trace = trace
        self._closed = False

    @classmethod
    def connect(
        cls,
        host: str = "127.0.0.1",
        port: int | None = None,
        *,
        socket_path: str | None = None,
        timeout: float = 30.0,
        trace: bool | None = None,
    ) -> ServeClient:
        if socket_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(socket_path)
        else:
            if port is None:
                raise ValueError("connect() needs a port (or a socket_path)")
            sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock, timeout=timeout, trace=trace)

    # -------------------------------------------------------------- plumbing

    def send(self, verb: str, **params: Any) -> Any:
        """Write one request frame; returns its id (for :meth:`recv_for`).

        With tracing enabled, work verbs open a client span and propagate
        its context on the frame; the span closes (and the server's echoed
        spans are adopted) when :meth:`recv_for` matches the response.
        """
        request_id = next(self._ids)
        frame = {"v": PROTOCOL_VERSION, "id": request_id, "verb": verb}
        frame.update({key: value for key, value in params.items() if value is not None})
        if (
            self._trace is not False
            and TRACER.enabled
            and verb in ("classify", "explain")
        ):
            client_span = TRACER.start_manual(
                "serve.client.request", verb=verb, request_id=request_id
            )
            if client_span is not None:
                frame["trace"] = trace_field(client_span.context())
                self._pending_spans[request_id] = client_span
        try:
            self._file.write(encode_frame(frame))
            self._file.flush()
        except (OSError, ValueError) as error:
            self._finish_span(request_id, ok=False, error=str(error))
            raise ServeConnectionError(f"send failed: {error}") from None
        return request_id

    def recv(self) -> dict:
        """Read the next response frame off the wire, whatever its id."""
        try:
            line = self._file.readline(MAX_FRAME_BYTES + 2)
        except (OSError, ValueError) as error:
            raise ServeConnectionError(f"recv failed: {error}") from None
        if not line:
            raise ServeConnectionError("server closed the connection")
        return decode_frame(line)

    def recv_for(self, request_id: Any) -> dict:
        """The response frame for ``request_id`` (stashing out-of-order ones)."""
        if request_id in self._stash:
            return self._settle(request_id, self._stash.pop(request_id))
        while True:
            frame = self.recv()
            if frame.get("id") == request_id:
                return self._settle(request_id, frame)
            self._stash[frame.get("id")] = frame

    def _settle(self, request_id: Any, frame: dict) -> dict:
        """Close the request's client span and adopt the server's echo."""
        client_span = self._pending_spans.pop(request_id, None)
        if client_span is not None:
            ok = bool(frame.get("ok"))
            echo = frame.get("trace")
            if isinstance(echo, dict) and isinstance(echo.get("spans"), list):
                TRACER.adopt(echo["spans"], client_span.context())
            TRACER.finish_manual(
                client_span,
                status="ok" if ok else "error",
                error=None if ok else (frame.get("error") or {}).get("message"),
            )
        return frame

    def _finish_span(self, request_id: Any, *, ok: bool, error: str | None) -> None:
        client_span = self._pending_spans.pop(request_id, None)
        if client_span is not None:
            TRACER.finish_manual(
                client_span, status="ok" if ok else "error", error=error
            )

    @staticmethod
    def unwrap(frame: dict) -> dict:
        """Result of an ok frame; :class:`ServeError` for an error frame."""
        if frame.get("ok"):
            return frame.get("result", {})
        error = frame.get("error") or {}
        raise ServeError(
            error.get("code", "internal"),
            error.get("message", "unknown server error"),
            retryable=bool(error.get("retryable")),
        )

    def request(self, verb: str, **params: Any) -> dict:
        """One request, one response: send, wait, unwrap."""
        return self.unwrap(self.recv_for(self.send(verb, **params)))

    # ----------------------------------------------------------------- verbs

    def classify(
        self,
        formula: str | None = None,
        *,
        expression: str | None = None,
        props: list[str] | None = None,
        letters: str | None = None,
    ) -> dict:
        return self.request(
            "classify",
            formula=formula,
            expression=expression,
            props=props,
            letters=letters,
        )

    def explain(
        self,
        formula: str | None = None,
        *,
        expression: str | None = None,
        props: list[str] | None = None,
        letters: str | None = None,
    ) -> dict:
        return self.request(
            "explain",
            formula=formula,
            expression=expression,
            props=props,
            letters=letters,
        )

    def stats(self) -> dict:
        return self.request("stats")

    def health(self) -> dict:
        return self.request("health")

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> ServeClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
