"""``repro.serve`` — the long-lived classification service.

PRs 1–4 built the prerequisites of a serving process — a deduplicating
batch engine, structural caches, dense kernels, tracing — but classification
still ran one library call per process.  This package promotes it to an
always-on service:

* :mod:`repro.serve.protocol` — the versioned JSON-lines wire format
  (``classify`` / ``explain`` / ``stats`` / ``health`` verbs, typed error
  frames with a ``retryable`` bit);
* :mod:`repro.serve.store` — a persistent SQLite (WAL) result store keyed
  by the engine's structural hashes and stamped with the store schema and
  library version, so classifications survive restarts and are shared
  across worker processes instead of re-derived per process;
* :mod:`repro.serve.server` — the asyncio server core: batching windows
  over the :class:`~repro.engine.batch.EvaluationEngine`, per-client
  quotas, bounded inflight with retryable backpressure frames, and
  graceful degradation to serial in-process evaluation;
* :mod:`repro.serve.client` — the synchronous client the CLI
  (``classify --remote``), the tests and the bench harness use.

``python -m repro serve`` runs the server; see ``docs/SERVING.md`` for the
protocol specification and the operations guide.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.server import ClassificationServer, ServerConfig, start_in_thread
from repro.serve.store import STORE_SCHEMA, PersistentStore, store_key

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "parse_request",
    "ClassificationServer",
    "ServerConfig",
    "start_in_thread",
    "STORE_SCHEMA",
    "PersistentStore",
    "store_key",
    "ServeClient",
    "ServeError",
]
