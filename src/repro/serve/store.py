"""The persistent result store: classifications that survive restarts.

The in-memory :class:`~repro.engine.cache.CacheBank` dies with its process,
so every worker re-derives the same GPVW tableaux and Safra trees after
every restart.  This module is the durable tier under it: a single SQLite
file in WAL mode holding finished *wire payloads* (the JSON dicts the
protocol layer builds), keyed by a canonical structural hash of the request.

Design decisions, and why:

* **Payloads, not pickles.**  The store holds exactly what goes on the
  wire.  A store hit and a fresh computation are byte-identical to the
  client, the file is inspectable with the ``sqlite3`` CLI, and unpickling
  untrusted bytes never happens.
* **Canonical keys.**  Keys hash a *canonical text* rendering of the
  structural cache keys from :mod:`repro.engine.cache`: formula ``repr``
  round-trips structurally (PR 2), and frozenset symbols are rendered
  sorted, so the hash is stable across processes and hash-seed choices —
  ``PYTHONHASHSEED`` must not shard the store.
* **Version stamps checked on read.**  Every row carries the store schema
  version and ``repro.__version__``.  A row written by an incompatible
  release is *rejected and deleted* on read — counted in the
  ``serve.store.version_mismatch`` metric — and the caller recomputes.
  Stamping columns rather than baking versions into the hash is deliberate:
  a baked-in version would turn release skew into silent misses, while a
  checked column makes skew observable.
* **WAL for sharing.**  WAL mode allows concurrent readers (other worker
  processes attached to the same file) while one writer appends; a busy
  timeout rides out writer collisions.  Within a process a single lock
  serializes access — the store sits behind a batching window, so it is
  never the hot path.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any

import repro
from repro.engine.metrics import METRICS, MetricsRegistry
from repro.obs.spans import span

#: Bump when the stored payload shape changes incompatibly.
STORE_SCHEMA = 1


def canonical_text(value: Any) -> str:
    """A deterministic text rendering of a structural cache key.

    ``repr`` order of sets/frozensets depends on the process hash seed, so
    unordered containers are rendered element-sorted; tuples/lists keep
    their order (alphabet symbol order is meaningful).  Everything else
    relies on ``repr`` being structural, which holds for formulas (PR 2's
    round-trip fix) and all scalar types.
    """
    if isinstance(value, (frozenset, set)):
        return "{" + ",".join(sorted(canonical_text(v) for v in value)) + "}"
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(canonical_text(v) for v in value) + ")"
    if isinstance(value, str):
        return json.dumps(value, ensure_ascii=False)
    return repr(value)


def store_key(verb: str, *parts: Any) -> str:
    """The store's primary key: verb plus canonicalized structural parts."""
    text = "\x1f".join([verb, *(canonical_text(part) for part in parts)])
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class StoreStats:
    """A point-in-time view of one store's effectiveness (this process)."""

    path: str
    rows: int
    hits: int
    misses: int
    writes: int
    version_mismatches: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "rows": self.rows,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "version_mismatches": self.version_mismatches,
            "hit_rate": round(self.hit_rate, 4),
        }


class PersistentStore:
    """A durable ``key → payload`` map over SQLite (WAL).

    Safe for concurrent use from threads of one process (internal lock)
    and from multiple processes sharing the file (WAL + busy timeout).
    ``get``/``put`` never raise on storage trouble during serving — a
    broken disk degrades the store to always-miss, counted in
    ``serve.store.errors``, rather than failing requests.
    """

    def __init__(
        self,
        path: str,
        *,
        schema: int = STORE_SCHEMA,
        version: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.path = str(path)
        self.schema = schema
        self.version = version if version is not None else repro.__version__
        self.metrics = metrics or METRICS
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._version_mismatches = 0
        self._conn = sqlite3.connect(
            self.path, timeout=10.0, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=10000")
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS classifications (
                key     TEXT PRIMARY KEY,
                schema  INTEGER NOT NULL,
                version TEXT NOT NULL,
                verb    TEXT NOT NULL,
                payload TEXT NOT NULL,
                created REAL NOT NULL
            )
            """
        )
        self._conn.commit()

    # ------------------------------------------------------------------ core

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` (miss or stale).

        A row stamped by an incompatible schema or library version is
        deleted and reported as a miss, so the caller transparently
        recomputes and overwrites it with a current result.
        """
        # No span here: on the serve path the request tree's
        # ``serve.stage.store`` child times exactly this interval and the
        # root's ``source`` attribute carries hit/miss, so a span would
        # duplicate both — at several microseconds per warm request.
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT schema, version, payload FROM classifications"
                    " WHERE key = ?",
                    (key,),
                ).fetchone()
        except sqlite3.Error:
            self.metrics.counter("serve.store.errors").inc()
            row = None
        if row is None:
            with self._lock:
                self._misses += 1
            self.metrics.counter("serve.store.misses").inc()
            return None
        schema, version, payload = row
        if schema != self.schema or version != self.version:
            with self._lock:
                self._version_mismatches += 1
                self._misses += 1
                try:
                    self._conn.execute(
                        "DELETE FROM classifications WHERE key = ?", (key,)
                    )
                    self._conn.commit()
                except sqlite3.Error:
                    self.metrics.counter("serve.store.errors").inc()
            self.metrics.counter("serve.store.version_mismatch").inc()
            self.metrics.counter("serve.store.misses").inc()
            return None
        try:
            result = json.loads(payload)
        except json.JSONDecodeError:
            self.metrics.counter("serve.store.errors").inc()
            with self._lock:
                self._misses += 1
            self.metrics.counter("serve.store.misses").inc()
            return None
        with self._lock:
            self._hits += 1
        self.metrics.counter("serve.store.hits").inc()
        return result

    def put(self, key: str, verb: str, payload: dict[str, Any]) -> None:
        """Write-through one finished payload (stamped with this release)."""
        with span("serve.store.put"):
            text = json.dumps(payload, separators=(",", ":"), sort_keys=True)
            try:
                with self._lock:
                    self._conn.execute(
                        "INSERT OR REPLACE INTO classifications"
                        " (key, schema, version, verb, payload, created)"
                        " VALUES (?, ?, ?, ?, ?, ?)",
                        (key, self.schema, self.version, verb, text, time.time()),
                    )
                    self._conn.commit()
                    self._writes += 1
            except sqlite3.Error:
                self.metrics.counter("serve.store.errors").inc()
                return
            self.metrics.counter("serve.store.writes").inc()

    # ----------------------------------------------------------- maintenance

    def probe(self) -> bool:
        """Is the store answering queries right now?  (``/readyz`` hook.)

        One trivial read inside the lock; any :mod:`sqlite3` error —
        deleted file, corrupted page, poisoned connection — reports
        not-ready instead of raising.
        """
        with self._lock:
            try:
                self._conn.execute("SELECT 1").fetchone()
            except sqlite3.Error:
                return False
        return True

    def __len__(self) -> int:
        with self._lock:
            try:
                (count,) = self._conn.execute(
                    "SELECT COUNT(*) FROM classifications"
                ).fetchone()
            except sqlite3.Error:
                return 0
        return int(count)

    def stats(self) -> StoreStats:
        rows = len(self)
        with self._lock:
            return StoreStats(
                path=self.path,
                rows=rows,
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                version_mismatches=self._version_mismatches,
            )

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM classifications")
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.commit()
                self._conn.close()
            except sqlite3.Error:
                pass

    def __enter__(self) -> PersistentStore:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"PersistentStore({self.path!r}, rows={s.rows}, hits={s.hits},"
            f" misses={s.misses})"
        )
