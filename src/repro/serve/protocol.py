"""The wire format of the classification service: JSON lines over a stream.

One frame per line, UTF-8 JSON, ``\\n``-terminated.  Requests carry a
protocol version, a caller-chosen correlation id, a verb and the verb's
parameters; responses echo the id and carry either a ``result`` object or
a typed ``error`` object.  The format is deliberately boring — any
language with a socket and a JSON parser is a client.

Requests::

    {"v": 1, "id": 7, "verb": "classify", "formula": "G (p -> F q)"}
    {"v": 1, "id": 8, "verb": "classify", "expression": ".*b(ab)w", "letters": "ab"}
    {"v": 1, "id": 9, "verb": "explain",  "formula": "F G p"}
    {"v": 1, "id": 10, "verb": "stats"}
    {"v": 1, "id": 11, "verb": "health"}

Responses::

    {"v": 1, "id": 7, "ok": true,  "result": {"class": "recurrence", …}}
    {"v": 1, "id": 8, "ok": false, "error": {"code": "overloaded",
                                             "message": "…", "retryable": true}}

Error frames are part of the contract: every failure mode has a stable
``code``, and ``retryable`` tells well-behaved clients whether backing off
and resending the same frame can succeed (backpressure, quotas, draining)
or cannot (malformed input).  A request that never parsed far enough to
yield an id is answered with ``"id": null``.

Requests may carry an optional ``trace`` field (``{"id": …, "span": …}``)
naming the caller's open span; a tracing server parents its request span
on it and echoes the finished server-side spans back on the response as
``{"trace": {"id": …, "spans": […]}}``, which the client re-stitches via
``repro.obs`` payload adoption.  Malformed trace fields are ``bad-frame``
errors; the connection survives.

The payload builders at the bottom turn the library's rich result objects
(:class:`~repro.core.classifier.FormulaReport`,
:class:`~repro.obs.provenance.Explanation`, classification verdicts) into
plain JSON dicts; they are also what the persistent store persists, so a
store hit and a fresh computation are byte-identical on the wire.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.obs.spans import SpanContext

#: Protocol version spoken by this build; bumped on incompatible changes.
PROTOCOL_VERSION = 1

#: Trace ids on the wire are tracer-issued hex-ish tokens; anything longer
#: than this is not one of ours and is rejected before it can bloat spans.
MAX_TRACE_VALUE_CHARS = 120

#: Hard per-frame size limit (bytes, including the newline).  Formulas big
#: enough to hit this would take hours to determinize anyway; the limit
#: exists so one client cannot balloon server memory with a single line.
MAX_FRAME_BYTES = 256 * 1024

#: The verb set.  ``classify``/``explain`` do work; ``stats``/``health``
#: are answered inline by the server without touching the engine.
VERBS = ("classify", "explain", "stats", "health")

#: error code → retryable.  Retryable means: the identical frame may
#: succeed later (the server was loaded, draining, or rationing this
#: client), so clients should back off and resend.  Non-retryable means
#: the frame itself is wrong and resending is pointless.
ERROR_CODES: dict[str, bool] = {
    "bad-frame": False,      # not JSON / not an object / bad version or id
    "bad-request": False,    # unparsable formula/expression, bad params
    "unknown-verb": False,
    "oversized": False,      # frame exceeded MAX_FRAME_BYTES
    "overloaded": True,      # server-wide --max-inflight saturated
    "quota": True,           # this client's inflight quota saturated
    "draining": True,        # graceful shutdown in progress
    "evaluation": False,     # the job itself raised (deterministic)
    "internal": False,       # unexpected server-side failure
}


class ProtocolError(ReproError):
    """A frame violated the wire contract (carries the error-frame code)."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        self.code = code
        self.retryable = ERROR_CODES[code]
        super().__init__(message)


@dataclass(frozen=True, slots=True)
class Request:
    """One validated request frame."""

    id: Any
    verb: str
    params: dict[str, Any] = field(default_factory=dict)
    #: The caller's open span, when the frame carried a ``trace`` field —
    #: the server parents its request span on it so the two sides stitch
    #: into one tree (see ``docs/OBSERVABILITY.md``).
    trace: SpanContext | None = None


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(frame: dict[str, Any]) -> bytes:
    """One frame → one newline-terminated JSON line."""
    return json.dumps(frame, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """One line → one frame dict, or :class:`ProtocolError` (``bad-frame``)."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError("oversized", f"frame exceeds {MAX_FRAME_BYTES} bytes")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError("bad-frame", f"frame is not UTF-8: {error}") from None
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError("bad-frame", f"frame is not JSON: {error.msg}") from None
    if not isinstance(frame, dict):
        raise ProtocolError("bad-frame", "frame must be a JSON object")
    return frame


def trace_field(context: SpanContext) -> dict[str, str]:
    """The wire form of a span context (the request's ``trace`` field)."""
    return {"id": context.trace_id, "span": context.span_id}


def parse_trace_field(value: Any) -> SpanContext:
    """Validate a request ``trace`` field into a :class:`SpanContext`.

    Strict on purpose: a malformed trace is a ``bad-frame`` protocol error
    (non-retryable), never a silent drop — a client that *thinks* it is
    propagating context should find out it is not.
    """
    if not isinstance(value, dict):
        raise ProtocolError("bad-frame", "'trace' must be a JSON object")
    unknown = set(value) - {"id", "span"}
    if unknown:
        raise ProtocolError(
            "bad-frame",
            f"'trace' has unknown keys: {', '.join(sorted(unknown))}",
        )
    for name in ("id", "span"):
        part = value.get(name)
        if not isinstance(part, str) or not part:
            raise ProtocolError(
                "bad-frame", f"'trace.{name}' must be a non-empty string"
            )
        if len(part) > MAX_TRACE_VALUE_CHARS:
            raise ProtocolError(
                "bad-frame",
                f"'trace.{name}' exceeds {MAX_TRACE_VALUE_CHARS} characters",
            )
    return SpanContext(trace_id=value["id"], span_id=value["span"])


def parse_request(frame: dict[str, Any]) -> Request:
    """Validate a decoded frame into a :class:`Request`.

    The id is extracted before anything else is checked so that even a
    version-mismatched frame gets an error response the client can
    correlate.  Ids must be JSON scalars (no objects/arrays) — they come
    back verbatim in the response.
    """
    request_id = frame.get("id")
    if request_id is not None and not isinstance(request_id, (str, int, float, bool)):
        raise ProtocolError("bad-frame", "request id must be a JSON scalar")
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad-frame",
            f"unsupported protocol version {version!r} (this server speaks"
            f" v{PROTOCOL_VERSION})",
        )
    verb = frame.get("verb")
    if not isinstance(verb, str) or verb not in VERBS:
        raise ProtocolError(
            "unknown-verb", f"unknown verb {verb!r} (known: {', '.join(VERBS)})"
        )
    trace = None
    if frame.get("trace") is not None:
        trace = parse_trace_field(frame["trace"])
    params = {
        key: value
        for key, value in frame.items()
        if key not in ("v", "id", "verb", "trace")
    }
    if verb in ("classify", "explain"):
        has_formula = isinstance(params.get("formula"), str)
        has_expression = isinstance(params.get("expression"), str)
        if has_formula == has_expression:  # neither, or both
            raise ProtocolError(
                "bad-request",
                f"{verb} needs exactly one of 'formula' or 'expression' (a string)",
            )
        props = params.get("props")
        if props is not None and not (
            isinstance(props, list) and all(isinstance(p, str) for p in props)
        ):
            raise ProtocolError("bad-request", "'props' must be a list of strings")
        letters = params.get("letters")
        if letters is not None and not isinstance(letters, str):
            raise ProtocolError("bad-request", "'letters' must be a string")
    return Request(id=request_id, verb=verb, params=params, trace=trace)


# ---------------------------------------------------------------------------
# Response frames
# ---------------------------------------------------------------------------


def ok_response(request_id: Any, result: dict[str, Any]) -> dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, code: str, message: str) -> dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message, "retryable": ERROR_CODES[code]},
    }


# ---------------------------------------------------------------------------
# Result payloads
# ---------------------------------------------------------------------------


def report_payload(report) -> dict[str, Any]:
    """A :class:`~repro.core.classifier.FormulaReport` as plain JSON."""
    from repro.core.classes import TemporalClass

    canonical = report.canonical_class
    syntactic = report.syntactic
    return {
        "kind": "classification",
        "subject": repr(report.formula),
        "class": canonical.value,
        "borel": canonical.borel_name,
        "memberships": [
            c.value for c in TemporalClass if report.semantic.membership[c]
        ],
        "liveness": report.is_liveness,
        "uniform_liveness": report.is_uniform_liveness,
        "streett_index": report.streett_index,
        "obligation_degree": report.obligation_degree,
        "normal_form": syntactic.normal_form.value if syntactic.normal_form else None,
        "syntactic_class": syntactic.fragment_class.value,
        "automaton": {
            "states": report.automaton.num_states,
            "reachable": len(report.automaton.reachable),
            "acceptance": report.automaton.acceptance.kind.name.lower(),
            "pairs": len(report.automaton.acceptance.pairs),
        },
    }


def verdict_payload(subject: str, verdict) -> dict[str, Any]:
    """A bare classification :class:`~repro.core.classes.Verdict` as JSON
    (the ``classify`` result for ω-regular expressions)."""
    from repro.core.classes import TemporalClass

    return {
        "kind": "classification",
        "subject": subject,
        "class": verdict.canonical.value,
        "borel": verdict.canonical.borel_name,
        "memberships": [c.value for c in TemporalClass if verdict.membership[c]],
        "liveness": verdict.is_liveness,
    }


def explanation_payload(explanation) -> dict[str, Any]:
    """An :class:`~repro.obs.provenance.Explanation` as plain JSON."""
    return {
        "kind": "explanation",
        "subject": explanation.subject,
        "class": explanation.canonical.value,
        "borel": explanation.canonical.borel_name,
        "deciding_view": explanation.deciding_view,
        "route": explanation.route,
        "route_detail": explanation.route_detail,
        "normal_form": explanation.normal_form.value if explanation.normal_form else None,
        "liveness": explanation.is_liveness,
        "streett_index": explanation.streett_index,
        "obligation_degree": explanation.obligation_degree,
        "evidence": explanation.evidence,
        "reasons": [
            {
                "class": reason.temporal_class.value,
                "member": reason.member,
                "reason": reason.reason,
            }
            for reason in explanation.reasons
        ],
    }


def render_payload(payload: dict[str, Any]) -> str:
    """A human-readable rendering of a result payload (``classify --remote``)."""
    lines = [
        f"subject:        {payload.get('subject')}",
        f"class:          {payload.get('class')} ({payload.get('borel')})",
    ]
    if payload.get("memberships"):
        lines.append("memberships:    " + ", ".join(payload["memberships"]))
    if "liveness" in payload:
        lines.append(f"liveness:       {payload['liveness']}")
    if payload.get("streett_index") is not None:
        lines.append(f"streett index:  {payload['streett_index']}")
    if payload.get("kind") == "explanation":
        lines.append(f"deciding view:  {payload['deciding_view']}")
        lines.append(f"compile route:  {payload['route']} — {payload['route_detail']}")
        for reason in payload.get("reasons", ()):
            mark = "∈" if reason["member"] else "∉"
            lines.append(f"  {mark} {reason['class']:12s} {reason['reason']}")
    automaton = payload.get("automaton")
    if automaton:
        lines.append(
            f"automaton:      {automaton['states']} states,"
            f" {automaton['acceptance']} acceptance, {automaton['pairs']} pair(s)"
        )
    return "\n".join(lines)
