"""The serve smoke test: restart durability, end to end.

``python -m repro serve --smoke SPEC --store FILE`` (and the CI
``serve-smoke`` job) runs the acceptance scenario for the persistent
store:

1. **Cold phase** — start a server (fresh in-memory cache bank) on an
   ephemeral port with the given store file, run a mixed
   ``classify``/``explain`` workload derived from the spec corpus through
   :class:`~repro.serve.client.ServeClient`, assert every request
   succeeds, and shut the server down cleanly.
2. **Restart phase** — start a *new* server (fresh bank again — a real
   restart keeps no process memory) on the same store file and replay the
   identical workload.  Assert: every request succeeds, the persistent
   store's hit rate is at least :data:`HIT_RATE_FLOOR`, and **zero** new
   GPVW translations or Safra determinizations ran — repeated formulas
   must be answered from disk, not re-derived.

The workload alternates verbs per spec line, so both the ``classify`` and
``explain`` result shapes exercise the store.  ``monitor`` spec lines are
skipped (monitoring is stateful per word; it is not served).

Each phase also asserts the **stats wire contract**: the enriched ``stats``
payload (version, uptime, store hit rate, per-verb latency quantiles,
telemetry block) is pinned here, so removing a field breaks the smoke, not
a downstream dashboard.

:func:`run_telemetry_smoke` (``serve --telemetry-smoke``, CI ``obs-smoke``)
is the telemetry-plane acceptance scenario: a traced server with a sidecar,
a traced client workload, then assertions over ``/metrics``, ``/healthz``,
``/readyz``, ``/spans/recent``, a schema-validated ``/recorder/dump``, and
the end-to-end stitched span tree (client root → server request → stage
children).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.metrics import METRICS
from repro.engine.session import parse_spec
from repro.serve.client import ServeClient
from repro.serve.server import ServerConfig, start_in_thread

#: The restart phase must answer at least this share of requests from disk.
HIT_RATE_FLOOR = 0.9

#: Fields the enriched ``stats`` payload must always carry (satellite of
#: the telemetry plane: the wire contract the dashboard builds on).
STATS_CONTRACT_FIELDS = (
    "health",
    "caches",
    "store",
    "counters",
    "version",
    "uptime_s",
    "store_hit_rate",
    "latency_ms",
    "telemetry",
)


@dataclass(frozen=True)
class SmokeRequest:
    """One workload request: a verb plus its protocol parameters."""

    verb: str
    params: dict


@dataclass
class SmokePhase:
    """What one server lifetime did."""

    label: str
    requests: int = 0
    failures: list[str] = field(default_factory=list)
    store_hits: int = 0
    store_misses: int = 0
    safra_runs: int = 0
    gpvw_runs: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.store_hits + self.store_misses
        return self.store_hits / total if total else 0.0

    def line(self) -> str:
        return (
            f"{self.label:8s} requests={self.requests} failures={len(self.failures)}"
            f" store_hits={self.store_hits} store_misses={self.store_misses}"
            f" hit_rate={self.hit_rate:.1%} gpvw={self.gpvw_runs} safra={self.safra_runs}"
        )


@dataclass
class SmokeReport:
    """The two phases plus the combined verdict."""

    phases: list[SmokePhase]
    problems: list[str]

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        lines = [phase.line() for phase in self.phases]
        if self.problems:
            lines.extend(f"FAIL: {problem}" for problem in self.problems)
        elif any(phase.label == "restart" for phase in self.phases):
            lines.append(
                "ok: restart answered from the persistent store"
                " (no GPVW/Safra re-derivation)"
            )
        else:
            lines.append("ok: telemetry plane answered on every endpoint")
        return "\n".join(lines)


def workload_from_spec(path: str | Path) -> list[SmokeRequest]:
    """Spec corpus → mixed classify/explain workload (alternating verbs)."""
    jobs = parse_spec(Path(path).read_text(encoding="utf-8"))
    requests: list[SmokeRequest] = []
    for job in jobs:
        verb = "classify" if len(requests) % 2 == 0 else "explain"
        if job.kind == "classify-formula":
            requests.append(SmokeRequest(verb, {"formula": job.formula}))
        elif job.kind == "classify-omega":
            requests.append(
                SmokeRequest(verb, {"expression": job.expression, "letters": job.letters})
            )
        # monitor jobs are not a serving verb; skip them
    if not requests:
        raise ValueError(f"spec {path} contains no classifiable lines")
    return requests


def _derivation_counts() -> tuple[int, int]:
    snap = METRICS.snapshot()["timers"]
    gpvw = snap.get("gpvw.translate", {}).get("count", 0)
    safra = snap.get("safra.determinize", {}).get("count", 0)
    return gpvw, safra


def _run_phase(
    label: str,
    requests: list[SmokeRequest],
    store_path: str,
    *,
    executor: str = "serial",
    window_ms: float = 5.0,
) -> SmokePhase:
    phase = SmokePhase(label=label)
    gpvw_before, safra_before = _derivation_counts()
    config = ServerConfig(
        port=0, store_path=store_path, window_ms=window_ms, executor=executor
    )
    handle = start_in_thread(config)
    try:
        with ServeClient.connect(port=handle.port) as client:
            # Pipeline the whole workload: one window sees many requests.
            ids = [client.send(req.verb, **req.params) for req in requests]
            for req, request_id in zip(requests, ids):
                frame = client.recv_for(request_id)
                phase.requests += 1
                if not frame.get("ok"):
                    error = frame.get("error", {})
                    phase.failures.append(
                        f"{req.verb} {req.params}: [{error.get('code')}]"
                        f" {error.get('message')}"
                    )
            stats = client.stats()
        phase.failures.extend(check_stats_contract(stats))
        store = stats.get("store") or {}
        phase.store_hits = store.get("hits", 0)
        phase.store_misses = store.get("misses", 0)
    finally:
        handle.stop()
    gpvw_after, safra_after = _derivation_counts()
    phase.gpvw_runs = gpvw_after - gpvw_before
    phase.safra_runs = safra_after - safra_before
    return phase


def run_smoke(
    spec_path: str | Path,
    store_path: str | Path,
    *,
    executor: str = "serial",
    window_ms: float = 5.0,
    hit_rate_floor: float = HIT_RATE_FLOOR,
) -> SmokeReport:
    """The two-phase restart-durability scenario (see module docstring)."""
    requests = workload_from_spec(spec_path)
    store_path = str(store_path)
    cold = _run_phase(
        "cold", requests, store_path, executor=executor, window_ms=window_ms
    )
    restart = _run_phase(
        "restart", requests, store_path, executor=executor, window_ms=window_ms
    )
    problems: list[str] = []
    for phase in (cold, restart):
        for failure in phase.failures:
            problems.append(f"{phase.label}: {failure}")
    if restart.hit_rate < hit_rate_floor:
        problems.append(
            f"restart store hit rate {restart.hit_rate:.1%} below the"
            f" {hit_rate_floor:.0%} floor"
        )
    if restart.store_hits == 0:
        problems.append("restart phase had zero persistent-store hits")
    if restart.gpvw_runs or restart.safra_runs:
        problems.append(
            f"restart re-derived work: {restart.gpvw_runs} GPVW translations,"
            f" {restart.safra_runs} Safra determinizations (expected 0)"
        )
    return SmokeReport(phases=[cold, restart], problems=problems)


# ---------------------------------------------------------------------------
# The stats wire contract
# ---------------------------------------------------------------------------


def check_stats_contract(stats: dict) -> list[str]:
    """Assert the enriched ``stats`` payload shape; returns problems found."""
    problems = []
    for name in STATS_CONTRACT_FIELDS:
        if name not in stats:
            problems.append(f"stats payload missing field {name!r}")
    if not isinstance(stats.get("version"), str) or not stats.get("version"):
        problems.append("stats 'version' must be a non-empty string")
    if not isinstance(stats.get("uptime_s"), (int, float)):
        problems.append("stats 'uptime_s' must be a number")
    hit_rate = stats.get("store_hit_rate")
    if stats.get("store") is not None and not isinstance(hit_rate, (int, float)):
        problems.append("stats 'store_hit_rate' must be a number when a store is attached")
    latency = stats.get("latency_ms")
    if not isinstance(latency, dict):
        problems.append("stats 'latency_ms' must be an object")
    else:
        for verb, row in latency.items():
            for key in ("count", "p50", "p90", "p99", "max"):
                if key not in row:
                    problems.append(f"stats latency_ms[{verb!r}] missing {key!r}")
    telemetry = stats.get("telemetry")
    if not isinstance(telemetry, dict) or not {"trace", "sidecar", "recorder"} <= set(
        telemetry
    ):
        problems.append(
            "stats 'telemetry' must carry 'trace', 'sidecar' and 'recorder'"
        )
    return problems


# ---------------------------------------------------------------------------
# The telemetry-plane smoke
# ---------------------------------------------------------------------------


def _http_get(base: str, path: str, *, timeout: float = 10.0) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def run_telemetry_smoke(
    spec_path: str | Path,
    store_path: str | Path,
    *,
    window_ms: float = 5.0,
) -> SmokeReport:
    """The telemetry-plane acceptance scenario (see module docstring)."""
    from repro.obs.export import validate_jsonl_lines
    from repro.obs.spans import TRACER

    requests = workload_from_spec(spec_path)
    phase = SmokePhase(label="telemetry")
    problems: list[str] = []
    previously_enabled = TRACER.enabled
    TRACER.enable()
    config = ServerConfig(
        port=0,
        store_path=str(store_path),
        window_ms=window_ms,
        telemetry_port=0,
        trace=True,
    )
    handle = start_in_thread(config)
    try:
        with ServeClient.connect(port=handle.port) as client:
            ids = [client.send(req.verb, **req.params) for req in requests]
            for req, request_id in zip(requests, ids):
                frame = client.recv_for(request_id)
                phase.requests += 1
                if not frame.get("ok"):
                    error = frame.get("error", {})
                    phase.failures.append(
                        f"{req.verb} {req.params}: [{error.get('code')}]"
                        f" {error.get('message')}"
                    )
            stats = client.stats()
        phase.failures.extend(check_stats_contract(stats))
        base = f"http://127.0.0.1:{handle.server.telemetry_port}"

        code, body = _http_get(base, "/metrics")
        if code != 200:
            problems.append(f"/metrics answered {code}")
        elif "repro_serve_latency_ms_bucket" not in body:
            problems.append("/metrics is missing the serve latency histogram")
        elif "repro_serve_stage_ms_decode_bucket" not in body:
            problems.append("/metrics is missing the per-stage histograms")

        code, body = _http_get(base, "/healthz")
        if code != 200:
            problems.append(f"/healthz answered {code} while serving")
        code, body = _http_get(base, "/readyz")
        if code != 200:
            problems.append(f"/readyz answered {code} with a healthy store")

        code, body = _http_get(base, "/spans/recent?n=5")
        if code != 200:
            problems.append(f"/spans/recent answered {code}")
        else:
            recent = json.loads(body)
            entries = recent.get("requests", [])
            if not entries:
                problems.append("/spans/recent returned no requests")
            else:
                names = {
                    span["name"] for entry in entries for span in entry["spans"]
                }
                if "serve.request" not in names:
                    problems.append("recorded traces carry no serve.request root")
                if not any(name.startswith("serve.stage.") for name in names):
                    problems.append("recorded traces carry no stage children")

        code, body = _http_get(base, "/recorder/dump")
        if code != 200:
            problems.append(f"/recorder/dump answered {code}")
        else:
            schema_errors = validate_jsonl_lines(body.splitlines())
            if schema_errors:
                problems.append(
                    f"recorder dump failed schema validation: {schema_errors[0]}"
                )

        # The stitched tree: the client's root span must have adopted the
        # server's request span as a child in the same trace.
        spans = TRACER.finished()
        client_roots = [s for s in spans if s.name == "serve.client.request"]
        if not client_roots:
            problems.append("no client-side request spans were recorded")
        else:
            stitched = any(
                child.name == "serve.request"
                and child.parent_id == root.span_id
                and child.trace_id == root.trace_id
                for root in client_roots
                for child in spans
            )
            if not stitched:
                problems.append(
                    "no server request span stitched under a client span"
                    " (wire trace propagation broken)"
                )
    finally:
        handle.stop()
        if not previously_enabled:
            TRACER.disable()
    problems.extend(f"telemetry: {failure}" for failure in phase.failures)
    return SmokeReport(phases=[phase], problems=problems)
