"""The serve smoke test: restart durability, end to end.

``python -m repro serve --smoke SPEC --store FILE`` (and the CI
``serve-smoke`` job) runs the acceptance scenario for the persistent
store:

1. **Cold phase** — start a server (fresh in-memory cache bank) on an
   ephemeral port with the given store file, run a mixed
   ``classify``/``explain`` workload derived from the spec corpus through
   :class:`~repro.serve.client.ServeClient`, assert every request
   succeeds, and shut the server down cleanly.
2. **Restart phase** — start a *new* server (fresh bank again — a real
   restart keeps no process memory) on the same store file and replay the
   identical workload.  Assert: every request succeeds, the persistent
   store's hit rate is at least :data:`HIT_RATE_FLOOR`, and **zero** new
   GPVW translations or Safra determinizations ran — repeated formulas
   must be answered from disk, not re-derived.

The workload alternates verbs per spec line, so both the ``classify`` and
``explain`` result shapes exercise the store.  ``monitor`` spec lines are
skipped (monitoring is stateful per word; it is not served).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.metrics import METRICS
from repro.engine.session import parse_spec
from repro.serve.client import ServeClient
from repro.serve.server import ServerConfig, start_in_thread

#: The restart phase must answer at least this share of requests from disk.
HIT_RATE_FLOOR = 0.9


@dataclass(frozen=True)
class SmokeRequest:
    """One workload request: a verb plus its protocol parameters."""

    verb: str
    params: dict


@dataclass
class SmokePhase:
    """What one server lifetime did."""

    label: str
    requests: int = 0
    failures: list[str] = field(default_factory=list)
    store_hits: int = 0
    store_misses: int = 0
    safra_runs: int = 0
    gpvw_runs: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.store_hits + self.store_misses
        return self.store_hits / total if total else 0.0

    def line(self) -> str:
        return (
            f"{self.label:8s} requests={self.requests} failures={len(self.failures)}"
            f" store_hits={self.store_hits} store_misses={self.store_misses}"
            f" hit_rate={self.hit_rate:.1%} gpvw={self.gpvw_runs} safra={self.safra_runs}"
        )


@dataclass
class SmokeReport:
    """The two phases plus the combined verdict."""

    phases: list[SmokePhase]
    problems: list[str]

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        lines = [phase.line() for phase in self.phases]
        if self.problems:
            lines.extend(f"FAIL: {problem}" for problem in self.problems)
        else:
            lines.append(
                "ok: restart answered from the persistent store"
                " (no GPVW/Safra re-derivation)"
            )
        return "\n".join(lines)


def workload_from_spec(path: str | Path) -> list[SmokeRequest]:
    """Spec corpus → mixed classify/explain workload (alternating verbs)."""
    jobs = parse_spec(Path(path).read_text(encoding="utf-8"))
    requests: list[SmokeRequest] = []
    for job in jobs:
        verb = "classify" if len(requests) % 2 == 0 else "explain"
        if job.kind == "classify-formula":
            requests.append(SmokeRequest(verb, {"formula": job.formula}))
        elif job.kind == "classify-omega":
            requests.append(
                SmokeRequest(verb, {"expression": job.expression, "letters": job.letters})
            )
        # monitor jobs are not a serving verb; skip them
    if not requests:
        raise ValueError(f"spec {path} contains no classifiable lines")
    return requests


def _derivation_counts() -> tuple[int, int]:
    snap = METRICS.snapshot()["timers"]
    gpvw = snap.get("gpvw.translate", {}).get("count", 0)
    safra = snap.get("safra.determinize", {}).get("count", 0)
    return gpvw, safra


def _run_phase(
    label: str,
    requests: list[SmokeRequest],
    store_path: str,
    *,
    executor: str = "serial",
    window_ms: float = 5.0,
) -> SmokePhase:
    phase = SmokePhase(label=label)
    gpvw_before, safra_before = _derivation_counts()
    config = ServerConfig(
        port=0, store_path=store_path, window_ms=window_ms, executor=executor
    )
    handle = start_in_thread(config)
    try:
        with ServeClient.connect(port=handle.port) as client:
            # Pipeline the whole workload: one window sees many requests.
            ids = [client.send(req.verb, **req.params) for req in requests]
            for req, request_id in zip(requests, ids):
                frame = client.recv_for(request_id)
                phase.requests += 1
                if not frame.get("ok"):
                    error = frame.get("error", {})
                    phase.failures.append(
                        f"{req.verb} {req.params}: [{error.get('code')}]"
                        f" {error.get('message')}"
                    )
            stats = client.stats()
        store = stats.get("store") or {}
        phase.store_hits = store.get("hits", 0)
        phase.store_misses = store.get("misses", 0)
    finally:
        handle.stop()
    gpvw_after, safra_after = _derivation_counts()
    phase.gpvw_runs = gpvw_after - gpvw_before
    phase.safra_runs = safra_after - safra_before
    return phase


def run_smoke(
    spec_path: str | Path,
    store_path: str | Path,
    *,
    executor: str = "serial",
    window_ms: float = 5.0,
    hit_rate_floor: float = HIT_RATE_FLOOR,
) -> SmokeReport:
    """The two-phase restart-durability scenario (see module docstring)."""
    requests = workload_from_spec(spec_path)
    store_path = str(store_path)
    cold = _run_phase(
        "cold", requests, store_path, executor=executor, window_ms=window_ms
    )
    restart = _run_phase(
        "restart", requests, store_path, executor=executor, window_ms=window_ms
    )
    problems: list[str] = []
    for phase in (cold, restart):
        for failure in phase.failures:
            problems.append(f"{phase.label}: {failure}")
    if restart.hit_rate < hit_rate_floor:
        problems.append(
            f"restart store hit rate {restart.hit_rate:.1%} below the"
            f" {hit_rate_floor:.0%} floor"
        )
    if restart.store_hits == 0:
        problems.append("restart phase had zero persistent-store hits")
    if restart.gpvw_runs or restart.safra_runs:
        problems.append(
            f"restart re-derived work: {restart.gpvw_runs} GPVW translations,"
            f" {restart.safra_runs} Safra determinizations (expected 0)"
        )
    return SmokeReport(phases=[cold, restart], problems=problems)
