"""Canonical minimal automata for obligation properties.

Deterministic ω-automata have no minimal forms in general, but *weak*
automata (every SCC uniformly accepting or rejecting — exactly the
obligation class, cf. Löding) do: states can be identified whenever their
residual ω-languages coincide, and acceptance is determined per SCC of the
quotient by testing any lasso that loops inside it.

``minimal_weak_automaton`` therefore produces a canonical representative of
an obligation property: same-language inputs yield structurally identical
outputs (up to breadth-first numbering), which the test suite exploits as a
canonicity oracle.
"""

from __future__ import annotations

from repro.errors import ClassificationError
from repro.omega.acceptance import Acceptance
from repro.omega.automaton import DetAutomaton
from repro.omega.emptiness import _covering_loop, _word_between
from repro.omega.graph import is_nontrivial_component, restricted_sccs
from repro.words.lasso import LassoWord


def _rebased(aut: DetAutomaton, state: int) -> DetAutomaton:
    return DetAutomaton(
        aut.alphabet, [list(row) for row in aut._delta], state, aut.acceptance
    )


def residual_classes(aut: DetAutomaton) -> list[list[int]]:
    """Partition the reachable states by residual-language equality."""
    states = sorted(aut.reachable)
    classes: list[list[int]] = []
    representatives: list[DetAutomaton] = []
    for state in states:
        rebased = _rebased(aut, state)
        for index, representative in enumerate(representatives):
            if rebased.equivalent_to(representative):
                classes[index].append(state)
                break
        else:
            classes.append([state])
            representatives.append(rebased)
    return classes


def minimal_weak_automaton(aut: DetAutomaton) -> DetAutomaton:
    """The canonical minimal weak automaton of an obligation property.

    Raises :class:`ClassificationError` when the property is not an
    obligation property (no weak automaton exists then).
    """
    from repro.omega.classify import is_obligation

    if not is_obligation(aut):
        raise ClassificationError("only obligation properties have weak minimal forms")

    classes = residual_classes(aut)
    class_of = {state: index for index, members in enumerate(classes) for state in members}

    def successor(class_index: int, symbol) -> int:
        representative = classes[class_index][0]
        return class_of[aut.step(representative, symbol)]

    # Build the quotient structure first (breadth-first canonical numbering).
    from repro.finitary.dfa import explore

    rows, order = explore(aut.alphabet, class_of[aut.initial], successor)

    quotient = DetAutomaton(aut.alphabet, rows, 0, Acceptance.buchi([]))

    # Acceptance per SCC: loop a covering cycle and ask the original automaton.
    accepting_states: set[int] = set()
    for scc in restricted_sccs(range(quotient.num_states), quotient.successors):
        scc_set = frozenset(scc)
        internal = lambda s, inside=scc_set: [t for t in quotient.successors(s) if t in inside]
        if not is_nontrivial_component(scc, internal):
            continue
        anchor, loop = _covering_loop(quotient, scc_set)
        stem = _word_between(quotient, 0, anchor, None)
        assert stem is not None
        # Map the quotient word back through the original automaton.
        probe = LassoWord(stem.symbols, loop.symbols)
        if aut.accepts(probe):
            accepting_states |= scc_set
    return quotient.with_acceptance(Acceptance.buchi(sorted(accepting_states)))


def weak_state_complexity(aut: DetAutomaton) -> int:
    """The canonical state count of an obligation property."""
    return minimal_weak_automaton(aut).num_states
