"""Complete deterministic ω-automata (the paper's predicate automata, §5).

An automaton is ``⟨Q, q₀, T, acceptance⟩`` over a finite alphabet; the
transition table is total and deterministic, so every ω-word has exactly one
run and the Streett acceptance used here coincides with both acceptance
disciplines discussed in the paper ([Str82] vs [MP87]).

Membership is decided on ultimately-periodic words by computing the run's
infinity set exactly (simulate the stem, then pump the loop until the
loop-anchor state repeats).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Sequence
from functools import cached_property

from repro.errors import AutomatonError
from repro.finitary.dfa import DFA, explore
from repro.omega.acceptance import Acceptance, Kind, Pair
from repro.omega.graph import reachable_from
from repro.words.alphabet import Alphabet, Symbol
from repro.words.lasso import LassoWord


class DetAutomaton:
    """A complete deterministic ω-automaton with Streett or Rabin acceptance."""

    __slots__ = ("alphabet", "_delta", "initial", "acceptance", "__dict__")

    def __init__(
        self,
        alphabet: Alphabet,
        transitions: Sequence[Sequence[int]],
        initial: int,
        acceptance: Acceptance,
    ) -> None:
        self.alphabet = alphabet
        self._delta: tuple[tuple[int, ...], ...] = tuple(tuple(row) for row in transitions)
        self.initial = initial
        self.acceptance = acceptance
        n = len(self._delta)
        if not 0 <= initial < n:
            raise AutomatonError(f"initial state {initial} out of range")
        for state, row in enumerate(self._delta):
            if len(row) != len(alphabet):
                raise AutomatonError(f"state {state} has {len(row)} transitions, expected {len(alphabet)}")
            if any(not 0 <= t < n for t in row):
                raise AutomatonError("transition target out of range")
        acceptance.validate(n)

    @classmethod
    def trusted(
        cls,
        alphabet: Alphabet,
        transitions: Sequence[Sequence[int]],
        initial: int,
        acceptance: Acceptance,
    ) -> DetAutomaton:
        """Construct without re-validating the table.

        For rows produced by in-tree exploration (``explore``, the fastpath
        product kernels), which are complete and in-range by construction;
        skips the ``O(n·|Σ|)`` validation pass of ``__init__``.
        """
        aut = cls.__new__(cls)
        aut.alphabet = alphabet
        aut._delta = tuple(map(tuple, transitions))
        aut.initial = initial
        aut.acceptance = acceptance
        return aut

    # ------------------------------------------------------------------ core

    @property
    def num_states(self) -> int:
        return len(self._delta)

    @property
    def states(self) -> range:
        return range(len(self._delta))

    def step(self, state: int, symbol: Symbol) -> int:
        return self._delta[state][self.alphabet.index(symbol)]

    def run_word(self, word: Iterable[Symbol], start: int | None = None) -> int:
        state = self.initial if start is None else start
        for symbol in word:
            state = self.step(state, symbol)
        return state

    @cached_property
    def adjacency(self) -> tuple[frozenset[int], ...]:
        """Symbol-erased successor sets, used by all graph algorithms."""
        return tuple(frozenset(row) for row in self._delta)

    def successors(self, state: int) -> frozenset[int]:
        return self.adjacency[state]

    @cached_property
    def reachable(self) -> frozenset[int]:
        return reachable_from(self.initial, self.successors)

    # ------------------------------------------------------------ membership

    def infinity_set(self, lasso: LassoWord, start: int | None = None) -> frozenset[int]:
        """``inf(r)`` of the unique run over ``lasso``."""
        lasso.check_alphabet(self.alphabet)
        anchor = self.run_word(lasso.stem, start)
        anchor_index: dict[int, int] = {}
        segments: list[frozenset[int]] = []
        while anchor not in anchor_index:
            anchor_index[anchor] = len(segments)
            visited = []
            state = anchor
            for symbol in lasso.loop:
                state = self.step(state, symbol)
                visited.append(state)
            segments.append(frozenset(visited))
            anchor = state
        cycle_start = anchor_index[anchor]
        inf: frozenset[int] = frozenset()
        for segment in segments[cycle_start:]:
            inf |= segment
        return inf

    def accepts(self, lasso: LassoWord) -> bool:
        return self.acceptance.accepts_infinity_set(self.infinity_set(lasso))

    def __contains__(self, lasso: LassoWord) -> bool:
        return self.accepts(lasso)

    # -------------------------------------------------------------- builders

    @classmethod
    def build(
        cls,
        alphabet: Alphabet,
        initial: Hashable,
        successor: Callable[[Hashable, Symbol], Hashable],
        acceptance_of: Callable[[list[Hashable]], Acceptance],
        *,
        state_limit: int = 2_000_000,
    ) -> DetAutomaton:
        """Freeze an abstract deterministic system; ``acceptance_of`` receives
        the discovery-ordered abstract states and returns the acceptance over
        their integer indices."""
        rows, order = explore(alphabet, initial, successor, state_limit=state_limit)
        return cls(alphabet, rows, 0, acceptance_of(order))

    @classmethod
    def build_buchi(
        cls,
        alphabet: Alphabet,
        initial: Hashable,
        successor: Callable[[Hashable, Symbol], Hashable],
        accepting: Callable[[Hashable], bool],
    ) -> DetAutomaton:
        def acceptance(order: list[Hashable]) -> Acceptance:
            return Acceptance.buchi([i for i, s in enumerate(order) if accepting(s)])

        return cls.build(alphabet, initial, successor, acceptance)

    @classmethod
    def build_cobuchi(
        cls,
        alphabet: Alphabet,
        initial: Hashable,
        successor: Callable[[Hashable, Symbol], Hashable],
        persistent: Callable[[Hashable], bool],
    ) -> DetAutomaton:
        def acceptance(order: list[Hashable]) -> Acceptance:
            return Acceptance.cobuchi([i for i, s in enumerate(order) if persistent(s)])

        return cls.build(alphabet, initial, successor, acceptance)

    @classmethod
    def universal(cls, alphabet: Alphabet) -> DetAutomaton:
        """Accepts every ω-word (``Σ^ω``, the trivial property **T**)."""
        return cls(alphabet, [[0] * len(alphabet)], 0, Acceptance.buchi([0]))

    @classmethod
    def empty_language(cls, alphabet: Alphabet) -> DetAutomaton:
        return cls(alphabet, [[0] * len(alphabet)], 0, Acceptance.buchi([]))

    # --------------------------------------------------------------- algebra

    def complement(self) -> DetAutomaton:
        """Same core, dual acceptance — determinism makes this exact.

        Memoized per instance: the classification pass dualizes the same
        automaton several times, and the already-validated table need not be
        re-checked or re-copied.
        """
        cached = self.__dict__.get("_complement")
        if cached is None:
            cached = DetAutomaton.trusted(
                self.alphabet,
                self._delta,
                self.initial,
                self.acceptance.dual(self.num_states),
            )
            self.__dict__["_complement"] = cached
        return cached

    def with_acceptance(self, acceptance: Acceptance) -> DetAutomaton:
        return DetAutomaton(self.alphabet, self._delta, self.initial, acceptance)

    def trim(self) -> DetAutomaton:
        """Restrict to reachable states (renumbered breadth-first)."""
        rows, order = explore(self.alphabet, self.initial, self.step)
        index = {s: i for i, s in enumerate(order)}

        def remap(states: frozenset[int]) -> frozenset[int]:
            return frozenset(index[s] for s in states if s in index)

        return DetAutomaton(self.alphabet, rows, 0, self.acceptance.lift(remap))

    def intersection(self, other: DetAutomaton) -> DetAutomaton:
        """Product with conjoined acceptance; both sides must be
        Streett-presentable on their own cores (always true except multi-pair
        Rabin)."""
        mine = self.acceptance.as_streett_pairs(self.num_states)
        theirs = other.acceptance.as_streett_pairs(other.num_states)
        if mine is None or theirs is None:
            raise AutomatonError(
                "intersection needs Streett-presentable acceptance on both sides; "
                "complement or compare via is_subset_of instead"
            )
        return _combine(self, other, mine, theirs, Kind.STREETT)

    def union(self, other: DetAutomaton) -> DetAutomaton:
        """Product with disjoined acceptance; both sides must be
        Rabin-presentable on their own cores (always true except multi-pair
        Streett)."""
        mine = self.acceptance.as_rabin_pairs(self.num_states)
        theirs = other.acceptance.as_rabin_pairs(other.num_states)
        if mine is None or theirs is None:
            raise AutomatonError(
                "union needs Rabin-presentable acceptance on both sides; "
                "use De Morgan via complements or compare via is_subset_of"
            )
        return _combine(self, other, mine, theirs, Kind.RABIN)

    # ---------------------------------------------------- language predicates

    def is_empty(self) -> bool:
        from repro.omega.emptiness import is_empty

        return is_empty(self)

    def is_universal(self) -> bool:
        return self.complement().is_empty()

    def is_subset_of(self, other: DetAutomaton) -> bool:
        from repro.omega.emptiness import intersection_is_empty

        return intersection_is_empty(self, other, complement_second=True)

    def is_disjoint_from(self, other: DetAutomaton) -> bool:
        from repro.omega.emptiness import intersection_is_empty

        return intersection_is_empty(self, other)

    def equivalent_to(self, other: DetAutomaton) -> bool:
        return self.is_subset_of(other) and other.is_subset_of(self)

    def example_word(self) -> LassoWord | None:
        from repro.omega.emptiness import example_word

        return example_word(self)

    # ----------------------------------------------------- structural helpers

    def transition_dfa(self, accepting: Iterable[int]) -> DFA:
        """The transition core viewed as a DFA with the given accepting set."""
        return DFA(self.alphabet, self._delta, self.initial, accepting)

    def transitions(self) -> Iterable[tuple[int, Symbol, int]]:
        for state, row in enumerate(self._delta):
            for symbol, target in zip(self.alphabet, row):
                yield state, symbol, target

    def __repr__(self) -> str:
        return (
            f"DetAutomaton(states={self.num_states}, alphabet={len(self.alphabet)}, "
            f"acceptance={self.acceptance!r})"
        )


def product_core(
    a: DetAutomaton, b: DetAutomaton
) -> tuple[list[list[int]], list[tuple[int, int]]]:
    """Reachable synchronous product of two transition cores."""
    if not a.alphabet.is_compatible_with(b.alphabet):
        raise AutomatonError("product of automata over different alphabets")
    return explore(
        a.alphabet,
        (a.initial, b.initial),
        lambda pair, symbol: (a.step(pair[0], symbol), b.step(pair[1], symbol)),
    )


def _combine(
    a: DetAutomaton,
    b: DetAutomaton,
    a_pairs: tuple[Pair, ...],
    b_pairs: tuple[Pair, ...],
    kind: Kind,
) -> DetAutomaton:
    rows, order = product_core(a, b)

    def lift_a(states: frozenset[int]) -> frozenset[int]:
        return frozenset(i for i, (p, _q) in enumerate(order) if p in states)

    def lift_b(states: frozenset[int]) -> frozenset[int]:
        return frozenset(i for i, (_p, q) in enumerate(order) if q in states)

    pairs = [Pair(lift_a(p.left), lift_a(p.right)) for p in a_pairs]
    pairs += [Pair(lift_b(p.left), lift_b(p.right)) for p in b_pairs]
    return DetAutomaton(a.alphabet, rows, 0, Acceptance(kind, tuple(pairs)))
