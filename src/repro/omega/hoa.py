"""HOA (Hanoi Omega-Automata) format export and import.

The `HOA v1 format <http://adl.github.io/hoaf/>`_ is the interchange format
of the ω-automata ecosystem (Spot, Owl, Rabinizer…).  This module writes
deterministic automata with state-based Streett/Rabin acceptance and reads
back the same fragment, so results of this library can be cross-checked
against external tools and vice versa.

Alphabet encodings:

* a powerset alphabet ``2^{p,q}`` maps each proposition to one HOA AP and
  each symbol to the full conjunction cube ``[0&!1]``;
* an abstract letter alphabet ``{a,b,c}`` maps each *letter* to one AP with
  an exactly-one convention, encoded the same way.

The importer accepts the exporter's fragment: explicit labels, deterministic
transitions, state-based acceptance with ``Buchi``, ``co-Buchi``,
``Rabin k`` or ``Streett k`` acceptance.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.omega.acceptance import Acceptance, Kind, Pair
from repro.omega.automaton import DetAutomaton
from repro.words.alphabet import Alphabet, Symbol


def _ap_names(alphabet: Alphabet) -> tuple[list[str], bool]:
    """The HOA atomic propositions and whether the alphabet is a powerset."""
    symbols = list(alphabet)
    if all(isinstance(symbol, frozenset) for symbol in symbols):
        propositions = sorted({name for symbol in symbols for name in symbol})
        return propositions, True
    return [str(symbol) for symbol in symbols], False


def _cube(symbol: Symbol, propositions: list[str], powerset: bool) -> str:
    if powerset:
        members = symbol
    else:
        members = {str(symbol)}
    literals = []
    for index, name in enumerate(propositions):
        literals.append(str(index) if name in members else f"!{index}")
    return "&".join(literals) if literals else "t"


def _acceptance_header(acceptance: Acceptance) -> tuple[str, str, int]:
    """(acc-name line, Acceptance line, number of acceptance sets)."""
    pairs = acceptance.pairs
    k = len(pairs)
    if acceptance.kind is Kind.STREETT:
        if k == 1 and not pairs[0].right:
            return "Buchi", "1 Inf(0)", 1
        if k == 1 and not pairs[0].left:
            return "co-Buchi", "1 Fin(0)", 1
        terms = [f"(Fin({2 * i})|Inf({2 * i + 1}))" for i in range(k)]
        return f"Streett {k}", f"{2 * k} " + "&".join(terms), 2 * k
    terms = [f"(Fin({2 * i})&Inf({2 * i + 1}))" for i in range(k)]
    return f"Rabin {k}", f"{2 * k} " + "|".join(terms), 2 * k


def _state_sets(automaton: DetAutomaton) -> dict[int, list[int]]:
    """HOA acceptance-set memberships per state."""
    memberships: dict[int, list[int]] = {state: [] for state in automaton.states}
    acceptance = automaton.acceptance
    pairs = acceptance.pairs
    everything = frozenset(automaton.states)
    if acceptance.kind is Kind.STREETT and len(pairs) == 1 and not pairs[0].right:
        for state in pairs[0].left:
            memberships[state].append(0)
        return memberships
    if acceptance.kind is Kind.STREETT and len(pairs) == 1 and not pairs[0].left:
        for state in everything - pairs[0].right:
            memberships[state].append(0)
        return memberships
    for index, pair in enumerate(pairs):
        if acceptance.kind is Kind.STREETT:
            fin_set, inf_set = everything - pair.right, pair.left
        else:
            fin_set, inf_set = pair.right, pair.left
        for state in fin_set:
            memberships[state].append(2 * index)
        for state in inf_set:
            memberships[state].append(2 * index + 1)
    return memberships


def to_hoa(automaton: DetAutomaton, *, name: str = "repro") -> str:
    """Serialize a deterministic automaton to HOA v1."""
    propositions, powerset = _ap_names(automaton.alphabet)
    acc_name, acc_formula, _count = _acceptance_header(automaton.acceptance)
    memberships = _state_sets(automaton)
    lines = [
        "HOA: v1",
        f'name: "{name}"',
        f"States: {automaton.num_states}",
        f"Start: {automaton.initial}",
        f"AP: {len(propositions)} " + " ".join(f'"{p}"' for p in propositions),
        f"acc-name: {acc_name}",
        f"Acceptance: {acc_formula}",
        "properties: deterministic state-acc explicit-labels",
        "--BODY--",
    ]
    for state in automaton.states:
        sets = memberships[state]
        suffix = f" {{{' '.join(map(str, sets))}}}" if sets else ""
        lines.append(f"State: {state}{suffix}")
        for symbol in automaton.alphabet:
            cube = _cube(symbol, propositions, powerset)
            lines.append(f"  [{cube}] {automaton.step(state, symbol)}")
    lines.append("--END--")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Import
# ---------------------------------------------------------------------------

_HEADER_RE = re.compile(r"^(\S+):\s*(.*)$")


def _parse_label(cube: str, propositions: list[str]) -> frozenset[str]:
    present: set[str] = set()
    if cube.strip() == "t":
        return frozenset()
    for literal in cube.split("&"):
        literal = literal.strip()
        negated = literal.startswith("!")
        index = int(literal[1:] if negated else literal)
        if not negated:
            present.add(propositions[index])
    return frozenset(present)


def from_hoa(text: str, *, alphabet: Alphabet | None = None) -> DetAutomaton:
    """Parse the deterministic state-based-acceptance HOA fragment.

    When ``alphabet`` is omitted, a powerset alphabet over the declared APs
    is assumed; pass the original letter alphabet to invert the exactly-one
    encoding.
    """
    headers: dict[str, str] = {}
    body_lines: list[str] = []
    in_body = False
    saw_end = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "--BODY--":
            in_body = True
            continue
        if line == "--END--":
            saw_end = True
            break
        if in_body:
            body_lines.append(line)
        else:
            match = _HEADER_RE.match(line)
            if match:
                headers[match.group(1)] = match.group(2).strip()

    if headers.get("HOA") != "v1":
        raise ParseError("expected an 'HOA: v1' header")
    # A truncated document must fail on the missing marker, not on whichever
    # state happens to lack transitions afterwards.
    if not in_body:
        raise ParseError("truncated HOA document: missing '--BODY--' marker")
    if not saw_end:
        raise ParseError("truncated HOA document: missing '--END--' marker")
    try:
        num_states = int(headers["States"])
        initial = int(headers["Start"])
    except (KeyError, ValueError) as error:
        raise ParseError(f"missing or malformed States/Start header: {error}") from None
    if not 0 <= initial < num_states:
        raise ParseError(
            f"Start state {initial} is not among the {num_states} declared states"
        )
    ap_parts = headers.get("AP", "0").split()
    propositions = [part.strip('"') for part in ap_parts[1:]]

    acc_name = headers.get("acc-name", "")
    if alphabet is None:
        alphabet = Alphabet.powerset_of_propositions(propositions)
        powerset = True
    else:
        _names, powerset = _ap_names(alphabet)

    # Transitions and state acceptance-set memberships.
    transitions: dict[tuple[int, Symbol], int] = {}
    state_sets: dict[int, set[int]] = {state: set() for state in range(num_states)}
    current: int | None = None
    state_re = re.compile(r"^State:\s*(\d+)(?:\s*\{([\d\s]*)\})?")
    edge_re = re.compile(r"^\[([^\]]*)\]\s*(\d+)")
    for line in body_lines:
        state_match = state_re.match(line)
        if state_match:
            current = int(state_match.group(1))
            if current >= num_states:
                raise ParseError(
                    f"body declares state {current} but the header declares "
                    f"only {num_states} states"
                )
            if state_match.group(2):
                state_sets[current] = {int(x) for x in state_match.group(2).split()}
            continue
        edge_match = edge_re.match(line)
        if edge_match and current is not None:
            label = _parse_label(edge_match.group(1), propositions)
            for symbol in alphabet:
                symbol_set = symbol if powerset else frozenset({str(symbol)})
                if symbol_set == label:
                    key = (current, symbol)
                    if key in transitions:
                        raise ParseError(f"nondeterministic edge at state {current}")
                    target = int(edge_match.group(2))
                    if target >= num_states:
                        raise ParseError(
                            f"edge from state {current} targets undeclared "
                            f"state {target}"
                        )
                    transitions[key] = target

    rows = []
    for state in range(num_states):
        row = []
        for symbol in alphabet:
            if (state, symbol) not in transitions:
                raise ParseError(f"state {state} lacks a transition on {symbol!r}")
            row.append(transitions[(state, symbol)])
        rows.append(row)

    acceptance = _acceptance_from(acc_name, state_sets, num_states)
    return DetAutomaton(alphabet, rows, initial, acceptance)


def _acceptance_from(
    acc_name: str, state_sets: dict[int, set[int]], num_states: int
) -> Acceptance:
    def members(set_index: int) -> frozenset[int]:
        return frozenset(s for s in range(num_states) if set_index in state_sets[s])

    everything = frozenset(range(num_states))
    if acc_name == "Buchi":
        return Acceptance.buchi(members(0))
    if acc_name == "co-Buchi":
        return Acceptance.cobuchi(everything - members(0))
    match = re.match(r"^(Streett|Rabin)\s+(\d+)$", acc_name)
    if not match:
        raise ParseError(f"unsupported acc-name {acc_name!r}")
    kind, count = match.group(1), int(match.group(2))
    pairs = []
    for index in range(count):
        fin_set, inf_set = members(2 * index), members(2 * index + 1)
        if kind == "Streett":
            pairs.append(Pair(inf_set, everything - fin_set))
        else:
            pairs.append(Pair(inf_set, fin_set))
    return Acceptance(Kind.STREETT if kind == "Streett" else Kind.RABIN, tuple(pairs))
