"""Graph utilities for ω-automata: SCCs, cycles, reachability.

The "cycles" of the paper (§5) are sets of states ``C`` admitting a cyclic
path through *all* of them — exactly the non-trivial strongly connected
subsets.  The decision procedures of §5.1 quantify over *accessible cycles*,
which this module enumerates (per SCC, with memoized strong-connectivity
checks) and summarizes.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Iterator, Sequence


def strongly_connected_components(
    num_states: int, successors: Callable[[int], Iterable[int]]
) -> list[list[int]]:
    """Tarjan's algorithm, iterative.  Components come out in reverse
    topological order; each is a list of state indices."""
    index_counter = 0
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[list[int]] = []

    for root in range(num_states):
        if root in index:
            continue
        work: list[tuple[int, Iterator[int]]] = [(root, iter(successors(root)))]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edge_iter = work[-1]
            advanced = False
            for target in edge_iter:
                if target not in index:
                    index[target] = lowlink[target] = index_counter
                    index_counter += 1
                    stack.append(target)
                    on_stack.add(target)
                    work.append((target, iter(successors(target))))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], index[target])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def restricted_sccs(
    states: Iterable[int], successors: Callable[[int], Iterable[int]]
) -> list[list[int]]:
    """SCCs of the subgraph induced by ``states``."""
    members = sorted(set(states))
    position = {s: i for i, s in enumerate(members)}

    def local_successors(i: int) -> Iterator[int]:
        for target in successors(members[i]):
            if target in position:
                yield position[target]

    return [
        [members[i] for i in component]
        for component in strongly_connected_components(len(members), local_successors)
    ]


def is_nontrivial_component(
    component: Sequence[int], successors: Callable[[int], Iterable[int]]
) -> bool:
    """True when the component carries a cycle (size ≥ 2, or a self-loop)."""
    if len(component) > 1:
        return True
    state = component[0]
    return state in set(successors(state))


def is_cycle_set(states: Iterable[int], successors: Callable[[int], Iterable[int]]) -> bool:
    """The paper's notion of *cycle*: a cyclic path visits exactly ``states``.

    Equivalent to: the induced subgraph is strongly connected and carries at
    least one edge (so a covering closed walk exists).
    """
    members = set(states)
    if not members:
        return False
    components = restricted_sccs(members, successors)
    if len(components) != 1 or set(components[0]) != members:
        return False
    return is_nontrivial_component(components[0], lambda s: (t for t in successors(s) if t in members))


def reachable_from(
    start: int | Iterable[int], successors: Callable[[int], Iterable[int]]
) -> frozenset[int]:
    seeds = [start] if isinstance(start, int) else list(start)
    seen = set(seeds)
    queue = deque(seeds)
    while queue:
        state = queue.popleft()
        for target in successors(state):
            if target not in seen:
                seen.add(target)
                queue.append(target)
    return frozenset(seen)


def can_reach(
    num_states: int, targets: Iterable[int], successors: Callable[[int], Iterable[int]]
) -> frozenset[int]:
    """States from which some target is reachable (backward closure)."""
    predecessors: dict[int, set[int]] = {s: set() for s in range(num_states)}
    for state in range(num_states):
        for target in successors(state):
            predecessors[target].add(state)
    seen = set(targets)
    queue = deque(seen)
    while queue:
        state = queue.popleft()
        for pred in predecessors[state]:
            if pred not in seen:
                seen.add(pred)
                queue.append(pred)
    return frozenset(seen)


def enumerate_cycle_sets(
    scc: Sequence[int],
    successors: Callable[[int], Iterable[int]],
    *,
    limit: int | None = None,
) -> Iterator[frozenset[int]]:
    """All cycle sets (strongly connected subsets carrying a cycle) inside one SCC.

    Worst-case exponential in ``|scc|`` — the Wagner-index analyses that use
    this keep their automata small, and ``limit`` guards runaway cases.
    """
    members = sorted(scc)
    count = 0
    seen: set[frozenset[int]] = set()
    # Grow candidate subsets from each state; strong-connectivity is checked
    # per emitted subset.  Subsets are enumerated by bitmask over the SCC.
    n = len(members)
    if n > 20:
        raise ValueError(f"SCC of size {n} is too large for explicit cycle enumeration")
    for mask in range(1, 1 << n):
        subset = frozenset(members[i] for i in range(n) if mask >> i & 1)
        if subset in seen:
            continue
        seen.add(subset)
        if is_cycle_set(subset, successors):
            yield subset
            count += 1
            if limit is not None and count >= limit:
                return
