"""Deciding the class of an ω-regular property (§5.1, Landweber/Wagner).

Semantic (authoritative) checks, all polynomial:

* **safety** — ``Π = cl(Π)`` (equivalence with the safety-closure automaton);
* **guarantee** — the complement is safety;
* **recurrence** — Wagner's condition ``J ∈ F ∧ J ⊆ A ⇒ A ∈ F`` on
  accessible cycles, decided without cycle enumeration: a violation exists
  iff some Streett pair ``(R,P)`` admits a non-trivial SCC ``S`` of the
  reachable graph minus ``R`` with ``S ⊄ P`` that still contains an
  accepting cycle (then ``A := S`` rejects while ``J ⊆ S`` accepts);
* **persistence** — dually, some *good component* contains, for some pair
  ``(R,P)``, a non-trivial SCC of itself minus ``R`` not inside ``P``;
* **obligation** — recurrence ∧ persistence (the paper: obligation is
  exactly the intersection of the two classes);
* **reactivity** — universal for deterministic automata; the interesting
  quantity is the *index* (minimal number of Streett pairs), computed from
  Wagner's maximal alternating chains ``B₁ ⊂ J₁ ⊂ … ⊂ Jₙ`` by a recursive
  decomposition that always steps to strictly smaller arenas.

Rabin-kind automata are classified through their (same-core) complements
using the class dualities.  The module also provides the paper's *syntactic*
automaton-shape recognizers (safety/guarantee/obligation-by-rank/
recurrence/persistence automata of §5), which are sound certificates:
a κ-shaped automaton always denotes a κ-property, but a κ-property may be
presented by an automaton of the wrong shape — that gap is exactly what
Prop 5.1's normalizations (``repro.omega.transform``) close.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.classes import TemporalClass, Verdict
from repro.omega.acceptance import Kind
from repro.omega.automaton import DetAutomaton
from repro.omega.closure import is_liveness, is_safety_closed
from repro.omega.emptiness import streett_good_components
from repro.omega.graph import (
    is_nontrivial_component,
    reachable_from,
    restricted_sccs,
)

# ---------------------------------------------------------------------------
# Semantic classification
# ---------------------------------------------------------------------------


class _WagnerBackend:
    """SCC / good-component service for one automaton's analysis pass.

    The Wagner checks decompose many sub-arenas of the same graph; the dense
    route (selected once per pass) reuses one Tarjan scratch over the flat
    transition table and computes good components through the mask kernels
    in :mod:`repro.fastpath.scc`.  Component *sets* are identical either way
    — only the enumeration order may differ, and every caller below is
    order-independent (existence checks, maxima, DAG relabelings).
    """

    __slots__ = (
        "aut", "dense", "_scc", "_scratch", "_adjacency", "_vector", "_pair_masks"
    )

    @classmethod
    def of(cls, aut: DetAutomaton) -> "_WagnerBackend":
        """The backend for ``aut`` on the currently selected route.

        Memoized on the automaton (keyed by the route decision, so a
        ``forced``-mode differential run never reuses the other route's
        backend): one analysis pass asks for the same graph many times.
        """
        from repro.fastpath.config import kernel_selected

        dense = kernel_selected("wagner", aut.num_states * len(aut.alphabet))
        cache = aut.__dict__.setdefault("_wagner_backends", {})
        backend = cache.get(dense)
        if backend is None:
            backend = cls(aut, dense)
            cache[dense] = backend
        return backend

    def __init__(self, aut: DetAutomaton, dense: bool) -> None:
        self.aut = aut
        self.dense = dense
        if self.dense:
            from repro.fastpath import scc as _scc

            n = aut.num_states
            self._scc = _scc
            self._vector = _scc._vector_delta(n, aut._delta)  # noqa: SLF001
            self._adjacency = (
                aut._delta if self._vector is None else self._vector  # noqa: SLF001
            )
            self._scratch = _scc._TarjanScratch(n, self._adjacency)  # noqa: SLF001
            self._pair_masks = [
                (_scc.pack_mask(p.left, n), _scc.pack_mask(p.right, n))
                for p in aut.acceptance.pairs
            ]

    def sccs(self, states) -> list[list[int]]:
        """Restricted SCC member lists of the subgraph induced by ``states``.

        Large candidates route through the scipy SCC pass when available;
        the component *sets* are identical to Tarjan's, only the emission
        order (and the member order within a component) differs.
        """
        if self.dense:
            candidate = sorted(states)
            if (
                self._vector is not None
                and len(candidate) >= self._scc.VECTOR_MIN_STATES
            ):
                from repro.fastpath import vector

                labels, n_comp, _ = vector.strong_components(
                    self._vector, vector.as_state_array(candidate)
                )
                groups: list[list[int]] = [[] for _ in range(n_comp)]
                for state, component in zip(candidate, labels.tolist()):
                    groups[component].append(state)
                return groups
            return self._scratch.sccs(candidate)
        return restricted_sccs(states, self.aut.successors)

    def good_components(self, states) -> list[frozenset[int]]:
        """Maximal accepting sub-SCCs of the induced subgraph (Streett)."""
        if self.dense:
            n = self.aut.num_states
            scc = self._scc
            return [
                frozenset(scc.unpack_positions(mask))
                for mask in scc.streett_good_masks(
                    n,
                    scc.pack_mask(states, n),
                    self._adjacency,
                    self._pair_masks,
                    scratch=self._scratch,
                )
            ]
        return streett_good_components(
            states, self.aut.successors, self.aut.acceptance.pairs
        )


def is_safety(aut: DetAutomaton) -> bool:
    """Is the property topologically closed (= a safety property)?"""
    return is_safety_closed(aut)

def is_guarantee(aut: DetAutomaton) -> bool:
    """Is the property open — equivalently, is its complement safety?"""
    return is_safety_closed(aut.complement())


def _streett_violations_of_recurrence(aut: DetAutomaton) -> bool:
    """Is there an accepting cycle inside a rejecting super-cycle? (Streett kind)"""
    pairs = aut.acceptance.pairs
    reachable = aut.reachable
    backend = _WagnerBackend.of(aut)
    for pair in pairs:
        arena = reachable - pair.left
        for scc in backend.sccs(arena):
            scc_set = frozenset(scc)
            internal = lambda s, inside=scc_set: [t for t in aut.successors(s) if t in inside]
            if not is_nontrivial_component(scc, internal):
                continue
            if scc_set <= pair.right:
                continue  # the super-cycle would still be accepting on this pair
            if backend.good_components(scc_set):
                return True
    return False


def _streett_violations_of_persistence(aut: DetAutomaton) -> bool:
    """Is there a rejecting cycle inside an accepting super-cycle? (Streett kind)"""
    pairs = aut.acceptance.pairs
    backend = _WagnerBackend.of(aut)
    for component in backend.good_components(aut.reachable):
        for pair in pairs:
            arena = component - pair.left
            for scc in backend.sccs(arena):
                scc_set = frozenset(scc)
                internal = lambda s, inside=scc_set: [t for t in aut.successors(s) if t in inside]
                if is_nontrivial_component(scc, internal) and not scc_set <= pair.right:
                    return True
    return False


def is_recurrence(aut: DetAutomaton) -> bool:
    """Is the property a ``G_δ`` set (recurrence)?"""
    if aut.acceptance.kind is Kind.STREETT:
        return not _streett_violations_of_recurrence(aut)
    return not _streett_violations_of_persistence(aut.complement())


def is_persistence(aut: DetAutomaton) -> bool:
    """Is the property an ``F_σ`` set (persistence)?"""
    if aut.acceptance.kind is Kind.STREETT:
        return not _streett_violations_of_persistence(aut)
    return not _streett_violations_of_recurrence(aut.complement())


def is_obligation(aut: DetAutomaton) -> bool:
    """Obligation = recurrence ∩ persistence (§2, "the obligation class is
    precisely the intersection of the recurrence and persistence classes")."""
    return is_recurrence(aut) and is_persistence(aut)


def classify(aut: DetAutomaton) -> Verdict:
    """Full membership profile of the property across the hierarchy."""
    safety = is_safety(aut)
    guarantee = is_guarantee(aut)
    recurrence = is_recurrence(aut)
    persistence = is_persistence(aut)
    membership = {
        TemporalClass.SAFETY: safety,
        TemporalClass.GUARANTEE: guarantee,
        TemporalClass.OBLIGATION: recurrence and persistence,
        TemporalClass.RECURRENCE: recurrence,
        TemporalClass.PERSISTENCE: persistence,
        TemporalClass.REACTIVITY: True,
    }
    return Verdict(membership=membership, is_liveness=is_liveness(aut))


# ---------------------------------------------------------------------------
# Wagner's alternating chains and the reactivity index
# ---------------------------------------------------------------------------


def _chain_lengths(aut: DetAutomaton) -> tuple[int, int]:
    """``(longest chain topped by an accepting cycle, … by a rejecting cycle)``
    over all reachable arenas of a Streett-kind automaton.  Chains are
    strictly decreasing and alternate acceptance."""
    pairs = aut.acceptance.pairs
    successors = aut.successors
    backend = _WagnerBackend.of(aut)

    @lru_cache(maxsize=None)
    def top_accepting(arena: frozenset[int]) -> int:
        best = 0
        for component in backend.good_components(arena):
            best = max(best, 1 + top_rejecting(component))
        return best

    @lru_cache(maxsize=None)
    def top_rejecting(arena: frozenset[int]) -> int:
        best = 0
        for pair in pairs:
            shrunk = arena - pair.left
            for scc in backend.sccs(shrunk):
                scc_set = frozenset(scc)
                internal = lambda s, inside=scc_set: [t for t in successors(s) if t in inside]
                if not is_nontrivial_component(scc, internal) or scc_set <= pair.right:
                    continue
                best = max(best, 1 + top_accepting(scc_set))
        return best

    reachable = aut.reachable
    return top_accepting(reachable), top_rejecting(reachable)


def _start_oriented_lengths(aut: DetAutomaton) -> tuple[int, int]:
    """``(L_sa, L_sr)``: the longest alternating cycle chains whose *smallest*
    element is accepting resp. rejecting.

    A top-τ chain of length ℓ yields top-τ chains of every length ≤ ℓ
    (drop bottoms), so both quantities follow from the two top-oriented
    maxima by a parity argument.
    """
    if aut.acceptance.kind is Kind.STREETT:
        top_acc, top_rej = _chain_lengths(aut)
    else:
        # Complementing swaps accepting and rejecting cycles.
        comp_acc, comp_rej = _chain_lengths(aut.complement())
        top_acc, top_rej = comp_rej, comp_acc

    def largest_with_parity(bound: int, odd: bool) -> int:
        if bound <= 0:
            return 0
        return bound if (bound % 2 == 1) == odd else bound - 1

    start_acc = max(largest_with_parity(top_acc, odd=True), largest_with_parity(top_rej, odd=False))
    start_rej = max(largest_with_parity(top_acc, odd=False), largest_with_parity(top_rej, odd=True))
    return start_acc, start_rej


def streett_index(aut: DetAutomaton) -> int:
    """Wagner's Streett index: the minimal number of Streett pairs any
    deterministic automaton for the property needs — ``⌈L/2⌉`` for the
    longest alternating chain of accessible cycles starting with a
    *rejecting* one (e.g. ``◇□p ∧ □◇q`` has index 2 while its complement
    needs a single Rabin pair).  Index 0 means the property is universal
    (no rejecting cycle at all)."""
    _start_acc, start_rej = _start_oriented_lengths(aut)
    return (start_rej + 1) // 2


def rabin_index(aut: DetAutomaton) -> int:
    """Wagner's Rabin index: chains starting with an *accepting* cycle;
    index 0 means the empty property."""
    start_acc, _start_rej = _start_oriented_lengths(aut)
    return (start_acc + 1) // 2


# ---------------------------------------------------------------------------
# Obligation degree (the Obl_k subhierarchy)
# ---------------------------------------------------------------------------


def obligation_degree(aut: DetAutomaton) -> int | None:
    """The minimal ``k`` with the property in ``Obl_k``, or ``None`` when the
    property is not an obligation property at all.

    For an obligation property every non-trivial SCC is uniformly accepting
    or rejecting, so the degree is the maximal number of
    rejecting→accepting alternations along a path of the SCC DAG
    (Wagner's chains collapse to DAG paths here).
    """
    if not is_obligation(aut):
        return None
    reachable = sorted(aut.reachable)
    sccs = _WagnerBackend.of(aut).sccs(reachable)
    label: dict[int, str] = {}
    component_of: dict[int, int] = {}
    component_sets: list[frozenset[int]] = []
    for scc in sccs:
        scc_set = frozenset(scc)
        index = len(component_sets)
        component_sets.append(scc_set)
        for state in scc:
            component_of[state] = index
        internal = lambda s, inside=scc_set: [t for t in aut.successors(s) if t in inside]
        if not is_nontrivial_component(scc, internal):
            label[index] = "transient"
        elif aut.acceptance.accepts_infinity_set(scc_set):
            label[index] = "accepting"
        else:
            label[index] = "rejecting"

    # DAG edges between distinct components.
    edges: dict[int, set[int]] = {i: set() for i in range(len(component_sets))}
    for state in reachable:
        for target in aut.successors(state):
            if target in component_of and component_of[target] != component_of[state]:
                edges[component_of[state]].add(component_of[target])

    # Longest alternation ending at each component: count completed
    # (rejecting, later accepting) pairs along any path.
    @lru_cache(maxsize=None)
    def best(index: int, seen_rejecting: bool) -> int:
        kind = label[index]
        score = 0
        if kind == "accepting" and seen_rejecting:
            score = 1
            seen_rejecting_next = False
        else:
            seen_rejecting_next = seen_rejecting or kind == "rejecting"
        follow = max(
            (best(target, seen_rejecting_next) for target in edges[index]),
            default=0,
        )
        return score + follow

    start = component_of[aut.initial]
    degree = best(start, False)
    # A property with accepting behavior but no alternation still needs one
    # conjunct (A(Φ)∪E(∅) or similar) unless it is trivial.
    return max(degree, 1)


# ---------------------------------------------------------------------------
# The paper's syntactic automaton shapes (§5)
# ---------------------------------------------------------------------------


def _good_bad_split(aut: DetAutomaton) -> tuple[frozenset[int], frozenset[int]]:
    """``G = ⋂ᵢ (Rᵢ ∪ Pᵢ)`` and ``B = Q − G`` (§5.1) for Streett kind."""
    good = frozenset(aut.states)
    for pair in aut.acceptance.pairs:
        good &= pair.left | pair.right
    return good, frozenset(aut.states) - good


def is_safety_shaped(aut: DetAutomaton) -> bool:
    """No transition from a bad state to a good state (§5's safety automaton).

    A sound certificate: every safety-shaped automaton whose good region is
    also *accepting-closed* denotes a safety property.  The §5.1 check
    ``closure(B) ∩ G = ∅`` is exactly this condition.
    """
    if aut.acceptance.kind is not Kind.STREETT:
        return False
    good, bad = _good_bad_split(aut)
    closure = reachable_from(bad, aut.successors) if bad else frozenset()
    return not closure & good


def is_guarantee_shaped(aut: DetAutomaton) -> bool:
    """No transition from a good state to a bad state (§5's guarantee automaton)."""
    if aut.acceptance.kind is not Kind.STREETT:
        return False
    good, _bad = _good_bad_split(aut)
    closure = reachable_from(good, aut.successors) if good else frozenset()
    return closure <= good


def is_recurrence_shaped(aut: DetAutomaton) -> bool:
    """All persistent sets empty: a (generalized) Büchi automaton (§5: P = ∅)."""
    return aut.acceptance.kind is Kind.STREETT and all(
        not pair.right for pair in aut.acceptance.pairs
    )


def is_persistence_shaped(aut: DetAutomaton) -> bool:
    """All recurrent sets empty: a co-Büchi automaton (§5: R = ∅)."""
    return aut.acceptance.kind is Kind.STREETT and all(
        not pair.left for pair in aut.acceptance.pairs
    )


def is_simple_reactivity_shaped(aut: DetAutomaton) -> bool:
    """A single unrestricted Streett pair (§5's simple reactivity automaton)."""
    return aut.acceptance.kind is Kind.STREETT and len(aut.acceptance.pairs) == 1


def is_obligation_shaped(aut: DetAutomaton, degree: int | None = None) -> bool:
    """Does a rank function ``ρ : Q → 0..k`` as in §5 exist?

    Requirements: ranks never decrease along transitions, bad→good moves
    strictly increase the rank, and no good state of the top rank moves to a
    bad state.  Equivalently the run alternates B→G at most ``k`` times; we
    check realizability on the SCC DAG.
    """
    if aut.acceptance.kind is not Kind.STREETT:
        return False
    good, _ = _good_bad_split(aut)
    reachable = sorted(aut.reachable)
    sccs = _WagnerBackend.of(aut).sccs(reachable)
    component_of: dict[int, int] = {}
    mixed = False
    for index, scc in enumerate(sccs):
        for state in scc:
            component_of[state] = index
        if len({state in good for state in scc}) > 1:
            mixed = True
    if mixed:
        return False  # a single SCC mixing good and bad alternates unboundedly

    edges: dict[int, set[int]] = {i: set() for i in range(len(sccs))}
    for state in reachable:
        for target in aut.successors(state):
            edges[component_of[state]].add(component_of[target])
            edges[component_of[state]].discard(component_of[state])

    @lru_cache(maxsize=None)
    def alternations(index: int) -> int:
        is_good = sccs[index][0] in good
        best = 0
        for target in edges[index]:
            step = 1 if (not is_good) and sccs[target][0] in good else 0
            best = max(best, step + alternations(target))
        return best

    needed = max((alternations(component_of[q]) for q in [aut.initial]), default=0)
    return degree is None or needed <= degree
