"""ω-regular expressions — the notation the paper writes its examples in.

Syntax: finitary regular expressions (see :mod:`repro.finitary.regex`)
extended with the postfix ``w`` (the paper's ``^ω``), combined as

    omega  :=  term ('|' term)*
    term   :=  [finitary-regex] atom 'w'

so ``aw | a+bw`` denotes ``a^ω + a⁺b^ω``, ``(a*b)w`` denotes ``(a*b)^ω``
and ``a+b*.w`` denotes ``a⁺b*·Σ^ω``.  Compilation goes through an NBA
(segment-guessing construction for ``Φ^ω``, handoff construction for
``U·Π``) and Safra when a deterministic automaton is requested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError
from repro.finitary.regex import Concat, Regex, _Parser
from repro.omega.automaton import DetAutomaton
from repro.omega.buchi import NBA
from repro.words.alphabet import Alphabet, Symbol


@dataclass(frozen=True, slots=True)
class OmegaTerm:
    """``prefix · loop^ω`` (prefix may be None for a pure ω-iteration)."""

    prefix: Regex | None
    loop: Regex

    def __repr__(self) -> str:
        prefix = repr(self.prefix) if self.prefix is not None else ""
        return f"{prefix}({self.loop!r})w"


@dataclass(frozen=True, slots=True)
class OmegaRegex:
    """A union of ω-terms."""

    terms: tuple[OmegaTerm, ...]

    def __repr__(self) -> str:
        return " | ".join(repr(term) for term in self.terms)


class _OmegaParser(_Parser):
    """Reuses the finitary machinery but allows a postfix ``w``."""

    def parse_omega(self) -> OmegaRegex:
        terms = [self.omega_term()]
        while self.peek() == "|":
            self.take()
            terms.append(self.omega_term())
        if self.pos != len(self.text):
            raise ParseError(f"unexpected {self.peek()!r}", self.pos)
        return OmegaRegex(tuple(terms))

    def omega_term(self) -> OmegaTerm:
        parts: list[Regex] = []
        loop: Regex | None = None
        while (char := self.peek()) is not None and char not in ")|":
            node = self.postfix()
            if self.peek() == "w":
                self.take()
                loop = node
                break
            parts.append(node)
        if loop is None:
            raise ParseError("an ω-term needs a trailing '<atom>w' loop", self.pos)
        if (char := self.peek()) is not None and char not in "|":
            raise ParseError(f"nothing may follow the ω-loop, found {char!r}", self.pos)
        if not parts:
            return OmegaTerm(None, loop)
        prefix = parts[0] if len(parts) == 1 else Concat(tuple(parts))
        return OmegaTerm(prefix, loop)


def parse_omega_regex(text: str) -> OmegaRegex:
    return _OmegaParser(text.replace(" ", "")).parse_omega()


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def _loop_nba(loop: Regex, alphabet: Alphabet) -> NBA:
    """``Φ^ω`` by segment guessing on Φ's DFA: after any symbol landing in an
    accepting DFA state, the run may declare the segment finished and
    restart from the DFA's initial state; Büchi acceptance on the restarts."""
    dfa = loop.to_dfa(alphabet)
    # State encoding: 0..n-1 plain DFA states, n..2n-1 "just restarted"
    # copies (flagged for Büchi), with identical outgoing behaviour.
    n = dfa.num_states
    transitions: dict[tuple[int, Symbol], set[int]] = {}

    def add(source: int, symbol: Symbol, target: int) -> None:
        transitions.setdefault((source, symbol), set()).add(target)

    for flagged_offset in (0, n):
        for state in range(n):
            source = state + flagged_offset
            base = state
            for symbol in alphabet:
                target = dfa.step(base, symbol)
                add(source, symbol, target)
                if target in dfa.accepting:
                    # segment complete: next symbol starts from the initial
                    add(source, symbol, dfa.initial + n)
    initials = [dfa.initial + n]  # "restarted" marks segment starts
    accepting = list(range(n, 2 * n))
    return NBA(alphabet, 2 * n, {k: frozenset(v) for k, v in transitions.items()}, initials, accepting)


def _term_nba(term: OmegaTerm, alphabet: Alphabet) -> NBA:
    loop_nba = _loop_nba(term.loop, alphabet)
    if term.prefix is None:
        return loop_nba
    prefix_dfa = term.prefix.to_dfa(alphabet)
    offset = prefix_dfa.num_states
    transitions: dict[tuple[int, Symbol], set[int]] = {}
    for state in range(prefix_dfa.num_states):
        for symbol in alphabet:
            target = prefix_dfa.step(state, symbol)
            transitions.setdefault((state, symbol), set()).add(target)
            if state in prefix_dfa.accepting:
                # the finitary prefix ended here: hand the symbol to the loop
                for loop_initial in loop_nba.initials:
                    for loop_target in loop_nba.successors(loop_initial, symbol):
                        transitions.setdefault((state, symbol), set()).add(loop_target + offset)
    for (state, symbol), targets in loop_nba.transitions.items():
        transitions.setdefault((state + offset, symbol), set()).update(t + offset for t in targets)
    initials = [prefix_dfa.initial]
    if prefix_dfa.initial in prefix_dfa.accepting:  # ε ∈ prefix
        initials += [i + offset for i in loop_nba.initials]
    accepting = [s + offset for s in loop_nba.accepting]
    return NBA(
        alphabet,
        prefix_dfa.num_states + loop_nba.num_states,
        {k: frozenset(v) for k, v in transitions.items()},
        initials,
        accepting,
    )


def omega_regex_to_nba(expression: OmegaRegex, alphabet: Alphabet) -> NBA:
    """Disjoint union of the per-term NBAs."""
    parts = [_term_nba(term, alphabet) for term in expression.terms]
    transitions: dict[tuple[int, Symbol], set[int]] = {}
    initials: list[int] = []
    accepting: list[int] = []
    offset = 0
    for part in parts:
        for (state, symbol), targets in part.transitions.items():
            transitions[(state + offset, symbol)] = {t + offset for t in targets}
        initials += [i + offset for i in part.initials]
        accepting += [f + offset for f in part.accepting]
        offset += part.num_states
    return NBA(
        alphabet, offset, {k: frozenset(v) for k, v in transitions.items()}, initials, accepting
    )


def omega_language(text: str, alphabet: Alphabet) -> DetAutomaton:
    """Parse an ω-regular expression and determinize it (Safra)."""
    from repro.omega.safra import determinize

    nba = omega_regex_to_nba(parse_omega_regex(text), alphabet)
    return determinize(nba).trim()


__all__ = [
    "OmegaRegex",
    "OmegaTerm",
    "parse_omega_regex",
    "omega_regex_to_nba",
    "omega_language",
]
