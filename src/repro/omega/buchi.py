"""Nondeterministic Büchi automata over concrete alphabets.

The bridge between the temporal-logic view and the deterministic predicate
automata of §5: formulas compile to NBAs (GPVW tableau), NBAs determinize to
Rabin automata (Safra).  Membership of ultimately-periodic words is decided
by lasso search in the position-annotated transition graph.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.errors import AutomatonError
from repro.omega.graph import is_nontrivial_component, restricted_sccs
from repro.words.alphabet import Alphabet, Symbol
from repro.words.lasso import LassoWord


class NBA:
    """An NBA ``(Σ, Q, I, δ, F)`` over integer states."""

    __slots__ = ("alphabet", "num_states", "transitions", "initials", "accepting")

    def __init__(
        self,
        alphabet: Alphabet,
        num_states: int,
        transitions: dict[tuple[int, Symbol], frozenset[int]],
        initials: Iterable[int],
        accepting: Iterable[int],
    ) -> None:
        self.alphabet = alphabet
        self.num_states = num_states
        self.transitions = {key: frozenset(value) for key, value in transitions.items()}
        self.initials = frozenset(initials)
        self.accepting = frozenset(accepting)
        for (state, symbol), targets in self.transitions.items():
            if not 0 <= state < num_states or any(not 0 <= t < num_states for t in targets):
                raise AutomatonError("NBA transition out of range")
            if symbol not in alphabet:
                raise AutomatonError(f"NBA transition on foreign symbol {symbol!r}")

    def successors(self, state: int, symbol: Symbol) -> frozenset[int]:
        return self.transitions.get((state, symbol), frozenset())

    def post(self, states: Iterable[int], symbol: Symbol) -> frozenset[int]:
        result: set[int] = set()
        for state in states:
            result |= self.successors(state, symbol)
        return frozenset(result)

    # ------------------------------------------------------------ membership

    def accepts(self, lasso: LassoWord) -> bool:
        """Lasso search: does some run visit an accepting state infinitely often?

        Nodes of the search graph are ``(NBA state, offset into the loop)``;
        a run exists iff from some state reachable on the stem there is a
        reachable non-trivial SCC containing an accepting-state node.
        """
        lasso.check_alphabet(self.alphabet)
        current = self.initials
        for symbol in lasso.stem:
            current = self.post(current, symbol)
        if not current:
            return False
        loop = lasso.loop
        period = len(loop)

        nodes: dict[tuple[int, int], int] = {}
        order: list[tuple[int, int]] = []

        def node_id(state: int, offset: int) -> int:
            key = (state, offset)
            if key not in nodes:
                nodes[key] = len(order)
                order.append(key)
            return nodes[key]

        edges: dict[int, set[int]] = {}
        queue: deque[tuple[int, int]] = deque()
        for state in current:
            node_id(state, 0)
            queue.append((state, 0))
        seen = set(queue)
        while queue:
            state, offset = queue.popleft()
            source = node_id(state, offset)
            edges.setdefault(source, set())
            for target in self.successors(state, loop[offset]):
                key = (target, (offset + 1) % period)
                edges[source].add(node_id(*key))
                if key not in seen:
                    seen.add(key)
                    queue.append(key)

        successors = lambda n: edges.get(n, ())
        for scc in restricted_sccs(range(len(order)), successors):
            scc_set = frozenset(scc)
            internal = lambda n, inside=scc_set: [t for t in successors(n) if t in inside]
            if not is_nontrivial_component(scc, internal):
                continue
            if any(order[n][0] in self.accepting for n in scc):
                return True
        return False

    def is_empty(self) -> bool:
        """Classic NBA emptiness: a reachable accepting state on a cycle."""
        reachable: set[int] = set(self.initials)
        queue = deque(self.initials)
        edges: dict[int, set[int]] = {}
        while queue:
            state = queue.popleft()
            targets: set[int] = set()
            for symbol in self.alphabet:
                targets |= self.successors(state, symbol)
            edges[state] = targets
            for target in targets:
                if target not in reachable:
                    reachable.add(target)
                    queue.append(target)
        successors = lambda s: edges.get(s, ())
        for scc in restricted_sccs(reachable, successors):
            scc_set = frozenset(scc)
            internal = lambda s, inside=scc_set: [t for t in successors(s) if t in inside]
            if is_nontrivial_component(scc, internal) and scc_set & self.accepting:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"NBA(states={self.num_states}, initials={sorted(self.initials)}, "
            f"accepting={sorted(self.accepting)})"
        )
