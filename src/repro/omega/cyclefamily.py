"""The literal §5.1 procedures: explicit accessible-cycle families.

The paper phrases its decision procedures over the family

    F = { J : J an accessible cycle, J ∩ Rᵢ ≠ ∅ or J ⊆ Pᵢ for each i }

and chains of cycles inside it.  This module implements those definitions
*verbatim*, by enumerating the accessible cycle sets (strongly connected
subsets carrying a covering cycle) — exponential in the SCC size, so it is
guarded by a size limit and used as an executable specification: the test
suite cross-validates the polynomial algorithms of
:mod:`repro.omega.classify` against these on random small automata.
"""

from __future__ import annotations

from repro.omega.automaton import DetAutomaton
from repro.omega.graph import enumerate_cycle_sets, restricted_sccs

_DEFAULT_LIMIT = 18


def accessible_cycles(aut: DetAutomaton, *, limit: int = _DEFAULT_LIMIT) -> list[frozenset[int]]:
    """All accessible cycle sets (the paper's *accessible cycles*)."""
    cycles: list[frozenset[int]] = []
    for scc in restricted_sccs(aut.reachable, aut.successors):
        if len(scc) > limit:
            raise ValueError(f"SCC of size {len(scc)} exceeds the enumeration limit {limit}")
        cycles.extend(enumerate_cycle_sets(scc, aut.successors))
    return cycles


def accepting_family(aut: DetAutomaton, *, limit: int = _DEFAULT_LIMIT) -> list[frozenset[int]]:
    """The family ``F`` of accessible cycles accepted by the automaton."""
    return [
        cycle
        for cycle in accessible_cycles(aut, limit=limit)
        if aut.acceptance.accepts_infinity_set(cycle)
    ]


def literal_is_recurrence(aut: DetAutomaton, *, limit: int = _DEFAULT_LIMIT) -> bool:
    """§5.1 verbatim: for every ``J ∈ F`` and accessible cycle ``A ⊇ J``,
    ``A ∈ F``."""
    cycles = accessible_cycles(aut, limit=limit)
    accepted = {c for c in cycles if aut.acceptance.accepts_infinity_set(c)}
    for accepted_cycle in accepted:
        for candidate in cycles:
            if accepted_cycle < candidate and candidate not in accepted:
                return False
    return True


def literal_is_persistence(aut: DetAutomaton, *, limit: int = _DEFAULT_LIMIT) -> bool:
    """§5.1 verbatim: for every ``J ∈ F`` and accessible cycle ``B ⊆ J``,
    ``B ∈ F``."""
    cycles = accessible_cycles(aut, limit=limit)
    accepted = {c for c in cycles if aut.acceptance.accepts_infinity_set(c)}
    for accepted_cycle in accepted:
        for candidate in cycles:
            if candidate < accepted_cycle and candidate not in accepted:
                return False
    return True


def literal_is_reactivity_simple(aut: DetAutomaton, *, limit: int = _DEFAULT_LIMIT) -> bool:
    """§5.1 verbatim: no chain of accessible cycles ``B ⊆ J ⊆ A`` with
    ``J ∈ F`` but ``B, A ∉ F`` — the condition for a single Streett pair."""
    cycles = accessible_cycles(aut, limit=limit)
    accepted = {c for c in cycles if aut.acceptance.accepts_infinity_set(c)}
    for middle in accepted:
        has_smaller_rejected = any(b < middle and b not in accepted for b in cycles)
        has_larger_rejected = any(middle < a and a not in accepted for a in cycles)
        if has_smaller_rejected and has_larger_rejected:
            return False
    return True


def literal_chain_index(aut: DetAutomaton, *, limit: int = _DEFAULT_LIMIT) -> int:
    """Wagner's minimal Streett-pair count, by explicit chain enumeration.

    The index is ``⌈L/2⌉`` for the longest strictly increasing chain of
    accessible cycles that alternates acceptance and *starts with a
    rejecting cycle*.  (The paper displays the chain as
    ``B₁ ⊂ J₁ ⊂ … ⊂ Jₙ`` — terminated by an accepting cycle — which
    undercounts by one when a maximal chain ends on an unmatched rejecting
    cycle: the classic Rabin-1/Streett-2 language ``max-even parity on
    three colors`` has the chain {odd} ⊂ {odd, even} ⊂ {odd, even, top-odd}
    and needs two pairs.  See EXPERIMENTS.md, reading clarifications.)

    Exponential in the cycle-family size; used to cross-validate the
    recursive arena decomposition of :func:`repro.omega.classify.streett_index`.
    """
    cycles = accessible_cycles(aut, limit=limit)
    accepted = {c for c in cycles if aut.acceptance.accepts_infinity_set(c)}
    ordered = sorted(cycles, key=len)
    index_of = {cycle: i for i, cycle in enumerate(ordered)}

    from functools import lru_cache

    @lru_cache(maxsize=None)
    def longest_from(position: int) -> int:
        cycle = ordered[position]
        want_accepting = cycle not in accepted
        best = 0
        for candidate in ordered:
            if len(candidate) <= len(cycle) or not cycle < candidate:
                continue
            if (candidate in accepted) != want_accepting:
                continue
            best = max(best, 1 + longest_from(index_of[candidate]))
        return best

    best_length = 0
    for start in ordered:
        if start in accepted:
            continue
        best_length = max(best_length, 1 + longest_from(index_of[start]))
    return (best_length + 1) // 2


def cross_validate(aut: DetAutomaton, *, limit: int = _DEFAULT_LIMIT) -> dict[str, bool]:
    """Compare the literal procedures against the polynomial ones."""
    from repro.omega.classify import is_persistence, is_recurrence, streett_index

    return {
        "recurrence": literal_is_recurrence(aut, limit=limit) == is_recurrence(aut),
        "persistence": literal_is_persistence(aut, limit=limit) == is_persistence(aut),
        "index": literal_chain_index(aut, limit=limit) == streett_index(aut),
    }
