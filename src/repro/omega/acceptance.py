"""Acceptance conditions for deterministic ω-automata.

The paper's automata carry a Streett list ``L = (R₁,P₁)…(Rₖ,Pₖ)``: a run is
accepting iff for each ``i`` either ``inf(r) ∩ Rᵢ ≠ ∅`` or ``inf(r) ⊆ Pᵢ``.
The dual (complement) condition is Rabin acceptance: some pair ``(Eᵢ,Fᵢ)``
has ``inf(r) ∩ Eᵢ ≠ ∅`` and ``inf(r) ∩ Fᵢ = ∅``.  Büchi and co-Büchi are the
one-pair special cases.  Both kinds live here so complementation is a pair
transformation instead of a state-space construction.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from enum import Enum

from repro.errors import AutomatonError


class Kind(Enum):
    STREETT = "streett"
    RABIN = "rabin"


@dataclass(frozen=True, slots=True)
class Pair:
    """One acceptance pair.

    Streett reading: ``(R, P)`` — recurrent set, persistent set.
    Rabin reading: ``(E, F)`` — must-meet set, must-avoid set.
    """

    left: frozenset[int]
    right: frozenset[int]

    @classmethod
    def of(cls, left: Iterable[int], right: Iterable[int]) -> Pair:
        return cls(frozenset(left), frozenset(right))


@dataclass(frozen=True, slots=True)
class Acceptance:
    """A list of pairs interpreted as Streett (conjunction) or Rabin (disjunction)."""

    kind: Kind
    pairs: tuple[Pair, ...]

    # ------------------------------------------------------------- factories

    @classmethod
    def streett(cls, pairs: Iterable[tuple[Iterable[int], Iterable[int]]]) -> Acceptance:
        return cls(Kind.STREETT, tuple(Pair.of(left, right) for left, right in pairs))

    @classmethod
    def rabin(cls, pairs: Iterable[tuple[Iterable[int], Iterable[int]]]) -> Acceptance:
        return cls(Kind.RABIN, tuple(Pair.of(left, right) for left, right in pairs))

    @classmethod
    def buchi(cls, accepting: Iterable[int]) -> Acceptance:
        """``inf ∩ F ≠ ∅`` as the Streett pair ``(F, ∅)``."""
        return cls.streett([(accepting, ())])

    @classmethod
    def cobuchi(cls, persistent: Iterable[int]) -> Acceptance:
        """``inf ⊆ P`` as the Streett pair ``(∅, P)``."""
        return cls.streett([((), persistent)])

    # ------------------------------------------------------------- semantics

    def accepts_infinity_set(self, inf: frozenset[int]) -> bool:
        if self.kind is Kind.STREETT:
            return all(inf & pair.left or inf <= pair.right for pair in self.pairs)
        return any(inf & pair.left and not inf & pair.right for pair in self.pairs)

    # ---------------------------------------------------------------- algebra

    def dual(self, num_states: int) -> Acceptance:
        """The acceptance of the complement automaton (same transition core)."""
        everything = frozenset(range(num_states))
        if self.kind is Kind.STREETT:
            # ¬[inf∩R≠∅ ∨ inf⊆P] = inf∩(Q−P)≠∅ ∧ inf∩R=∅
            return Acceptance(
                Kind.RABIN, tuple(Pair(everything - p.right, p.left) for p in self.pairs)
            )
        # ¬[inf∩E≠∅ ∧ inf∩F=∅] = inf∩F≠∅ ∨ inf⊆(Q−E)
        return Acceptance(
            Kind.STREETT, tuple(Pair(p.right, everything - p.left) for p in self.pairs)
        )

    def as_streett_pairs(self, num_states: int) -> tuple[Pair, ...] | None:
        """Streett-pair presentation, or ``None`` when it would need new states.

        Streett acceptance is returned as-is; a *single* Rabin pair ``(E,F)``
        becomes ``(E,∅) ∧ (∅, Q−F)``.  Multi-pair Rabin (a disjunction) has
        no same-structure Streett presentation in general.
        """
        if self.kind is Kind.STREETT:
            return self.pairs
        if len(self.pairs) == 1:
            (pair,) = self.pairs
            everything = frozenset(range(num_states))
            return (Pair(pair.left, frozenset()), Pair(frozenset(), everything - pair.right))
        return None

    def as_rabin_pairs(self, num_states: int) -> tuple[Pair, ...] | None:
        """Rabin-pair presentation, or ``None`` when it would need new states.

        Rabin acceptance is returned as-is; a *single* Streett pair ``(R,P)``
        becomes the disjunction ``(R,∅) ∨ (Q, Q−P)``.
        """
        if self.kind is Kind.RABIN:
            return self.pairs
        if len(self.pairs) == 0:
            # Empty Streett conjunction accepts everything: Rabin (Q, ∅).
            everything = frozenset(range(num_states))
            return (Pair(everything, frozenset()),)
        if len(self.pairs) == 1:
            (pair,) = self.pairs
            everything = frozenset(range(num_states))
            return (Pair(pair.left, frozenset()), Pair(everything, everything - pair.right))
        return None

    def lift(self, mapper: Callable[[frozenset[int]], frozenset[int]]) -> Acceptance:
        """Transform every pair's state sets (used when embedding into products)."""
        return Acceptance(self.kind, tuple(Pair(mapper(p.left), mapper(p.right)) for p in self.pairs))

    def restricted_to(self, states: frozenset[int]) -> Acceptance:
        return self.lift(lambda s: s & states)

    def validate(self, num_states: int) -> None:
        for pair in self.pairs:
            for state_set in (pair.left, pair.right):
                if any(not 0 <= s < num_states for s in state_set):
                    raise AutomatonError("acceptance set mentions an out-of-range state")

    def __repr__(self) -> str:
        pairs = ", ".join(f"({sorted(p.left)},{sorted(p.right)})" for p in self.pairs)
        return f"{self.kind.value}[{pairs}]"
