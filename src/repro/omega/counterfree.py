"""Counter-freedom (McNaughton–Papert) — the bridge from automata back to
temporal logic (Prop 5.4, [Zuc86]).

An automaton *counts* if some finite word σ and state q satisfy
``δ(q, σⁿ) = q`` for some ``n > 1`` while ``δ(q, σ) ≠ q``.  Equivalently,
some element of the transition monoid has a functional cycle of length > 1.
A property specifiable by a deterministic automaton is expressible in
temporal logic iff some counter-free automaton recognizes it; the
formula-derived automata in this library are counter-free by construction,
which the test suite verifies.
"""

from __future__ import annotations

from collections import deque

from repro.finitary.dfa import DFA
from repro.omega.automaton import DetAutomaton

_MONOID_LIMIT = 250_000


def transition_monoid(automaton: DetAutomaton | DFA) -> set[tuple[int, ...]]:
    """All state transformations induced by non-empty words (the transition
    semigroup), generated breadth-first from the single-symbol maps."""
    n = automaton.num_states
    generators = [
        tuple(automaton.step(q, symbol) for q in range(n)) for symbol in automaton.alphabet
    ]
    seen: set[tuple[int, ...]] = set(generators)
    queue: deque[tuple[int, ...]] = deque(generators)
    while queue:
        current = queue.popleft()
        for generator in generators:
            composed = tuple(generator[current[q]] for q in range(n))
            if composed not in seen:
                if len(seen) >= _MONOID_LIMIT:
                    raise MemoryError("transition monoid exceeds the exploration limit")
                seen.add(composed)
                queue.append(composed)
    return seen


def _long_cycle(transformation: tuple[int, ...]) -> tuple[int, int] | None:
    """A (state, period>1) on a functional cycle of the transformation, if any."""
    for start in range(len(transformation)):
        positions = {start: 0}
        current, step = start, 0
        while True:
            current = transformation[current]
            step += 1
            if current in positions:
                period = step - positions[current]
                if period > 1:
                    return current, period
                break
            positions[current] = step
    return None


def is_counter_free(automaton: DetAutomaton | DFA) -> bool:
    """True iff no word can cycle states with period > 1 (no modular counting)."""
    return all(_long_cycle(t) is None for t in transition_monoid(automaton))


def counting_witness(automaton: DetAutomaton | DFA) -> tuple[int, int] | None:
    """A ``(state, period)`` witnessing counting, or ``None`` if counter-free:
    some word σ satisfies ``δ(state, σ^period) = state`` with period > 1."""
    for transformation in transition_monoid(automaton):
        witness = _long_cycle(transformation)
        if witness is not None:
            return witness
    return None
