"""Emptiness, inclusion and witness extraction for deterministic ω-automata.

The primitives:

* **Streett good components** — recursive SCC pruning (the classic Streett
  emptiness algorithm).  A sub-SCC on which every pair ``(R,P)`` has
  ``S∩R≠∅`` or ``S⊆P`` is an accepting cycle; conversely every accepting
  cycle survives the pruning, so the union of good components is exactly
  the set of states lying on accepting cycles.
* **Rabin accepting states** — per pair ``(E,F)``: the non-trivial SCCs of
  the graph minus ``F`` that touch ``E``.
* **Mixed-product emptiness** — ``L(A) ∩ L(B)`` (or ``∩ ¬L(B)``) is checked
  on the synchronous product by distributing Rabin disjunctions into cases;
  each case is a pure Streett check after deleting the must-avoid states
  (which may still be traversed on the way to the cycle, so reachability is
  evaluated in the full product).

Everything here is polynomial except nothing — no cycle enumeration is used.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence

from repro.engine.metrics import METRICS, trace
from repro.obs.spans import span
from repro.omega.acceptance import Acceptance, Kind, Pair
from repro.omega.automaton import DetAutomaton
from repro.omega.graph import can_reach, is_nontrivial_component, restricted_sccs
from repro.words.alphabet import Symbol
from repro.words.finite import FiniteWord
from repro.words.lasso import LassoWord

Successors = Callable[[int], Iterable[int]]


def streett_good_components(
    states: Iterable[int], successors: Successors, pairs: Sequence[Pair]
) -> list[frozenset[int]]:
    """Maximal accepting sub-SCCs of the induced subgraph under Streett pairs."""
    METRICS.counter("emptiness.streett_calls").inc()
    good: list[frozenset[int]] = []
    pending: list[frozenset[int]] = [frozenset(states)]
    while pending:
        candidate = pending.pop()
        for scc in restricted_sccs(candidate, successors):
            scc_set = frozenset(scc)
            internal = lambda s, inside=scc_set: [t for t in successors(s) if t in inside]
            if not is_nontrivial_component(scc, internal):
                continue
            violating = [
                p for p in pairs if not (scc_set & p.left) and not (scc_set <= p.right)
            ]
            if not violating:
                good.append(scc_set)
                continue
            restricted = scc_set
            for pair in violating:
                restricted &= pair.right
            if restricted:
                pending.append(restricted)
    return good


def rabin_accepting_cycle_states(
    states: Iterable[int], successors: Successors, pairs: Sequence[Pair]
) -> frozenset[int]:
    """States on a cycle meeting some ``E_i`` and avoiding the matching ``F_i``."""
    states_set = frozenset(states)
    result: set[int] = set()
    for pair in pairs:
        allowed = states_set - pair.right
        for scc in restricted_sccs(allowed, successors):
            scc_set = frozenset(scc)
            internal = lambda s, inside=scc_set: [t for t in successors(s) if t in inside]
            if scc_set & pair.left and is_nontrivial_component(scc, internal):
                result |= scc_set
    return frozenset(result)


def accepting_cycle_states(aut: DetAutomaton) -> frozenset[int]:
    """All states lying on some accepting cycle (reachability not required)."""
    if aut.acceptance.kind is Kind.STREETT:
        good = streett_good_components(aut.states, aut.successors, aut.acceptance.pairs)
        return frozenset().union(*good) if good else frozenset()
    return rabin_accepting_cycle_states(aut.states, aut.successors, aut.acceptance.pairs)


def nonempty_states(aut: DetAutomaton) -> frozenset[int]:
    """States ``q`` whose residual language ``L_q`` is non-empty.

    Large automata route through the mask-based dense kernel
    (:func:`repro.fastpath.scc.nonempty_states_dense`), which computes the
    identical state set; see ``docs/PERFORMANCE.md``.
    """
    from repro.fastpath.config import kernel_selected

    with span("emptiness.nonempty_states", states=aut.num_states) as obs_span:
        start = time.perf_counter()
        if kernel_selected("emptiness", aut.num_states * len(aut.alphabet)):
            from repro.fastpath.scc import nonempty_states_dense

            route = "dense"
            result = nonempty_states_dense(aut)
        else:
            route = "reference"
            result = can_reach(aut.num_states, accepting_cycle_states(aut), aut.successors)
        elapsed = time.perf_counter() - start
        METRICS.timer("emptiness.nonempty_states").observe(elapsed)
        obs_span.set_attribute("live", len(result))
        trace(
            "emptiness.nonempty_states",
            states=aut.num_states,
            live=len(result),
            seconds=elapsed,
            route=route,
        )
    return result


def is_empty(aut: DetAutomaton) -> bool:
    return aut.initial not in nonempty_states(aut)


# --------------------------------------------------------------------------
# Witness extraction
# --------------------------------------------------------------------------


def _word_between(aut: DetAutomaton, source: int, target: int, allowed: frozenset[int] | None) -> FiniteWord | None:
    """A shortest symbol word steering ``source → target`` (staying inside
    ``allowed`` when given; the source itself is exempt).  Returns ``None``
    if unreachable, the empty word if ``source == target``."""
    if source == target:
        return FiniteWord.empty()
    parents: dict[int, tuple[int, Symbol]] = {}
    seen = {source}
    queue: deque[int] = deque([source])
    while queue:
        state = queue.popleft()
        for symbol in aut.alphabet:
            nxt = aut.step(state, symbol)
            if nxt in seen or (allowed is not None and nxt not in allowed):
                continue
            seen.add(nxt)
            parents[nxt] = (state, symbol)
            if nxt == target:
                symbols: list[Symbol] = []
                node = target
                while node != source:
                    node, symbol_back = parents[node]
                    symbols.append(symbol_back)
                return FiniteWord(reversed(symbols))
            queue.append(nxt)
    return None


def _covering_loop(aut: DetAutomaton, component: frozenset[int]) -> tuple[int, FiniteWord]:
    """An anchor state and a non-empty word looping anchor → anchor whose run
    visits every state of the strongly connected ``component``."""
    anchor = min(component)
    word = FiniteWord.empty()
    current = anchor
    for target in sorted(component):
        leg = _word_between(aut, current, target, component)
        assert leg is not None, "component not strongly connected"
        word += leg
        current = target
    back = _word_between(aut, current, anchor, component)
    assert back is not None
    word += back
    if len(word) == 0:
        # Singleton component: take any self-loop symbol.
        symbol = next(s for s in aut.alphabet if aut.step(anchor, s) == anchor)
        word = FiniteWord((symbol,))
    return anchor, word


def example_word(aut: DetAutomaton) -> LassoWord | None:
    """Some accepted lasso word, or ``None`` when the language is empty."""
    if aut.acceptance.kind is Kind.STREETT:
        components = streett_good_components(aut.states, aut.successors, aut.acceptance.pairs)
    else:
        components = []
        for pair in aut.acceptance.pairs:
            allowed = frozenset(aut.states) - pair.right
            for scc in restricted_sccs(allowed, aut.successors):
                scc_set = frozenset(scc)
                internal = lambda s, inside=scc_set: [t for t in aut.successors(s) if t in inside]
                if scc_set & pair.left and is_nontrivial_component(scc, internal):
                    components.append(scc_set)
    for component in components:
        anchor, loop = _covering_loop(aut, component)
        stem = _word_between(aut, aut.initial, anchor, None)
        if stem is not None:
            return LassoWord(stem.symbols, loop.symbols)
    return None


# --------------------------------------------------------------------------
# Products with mixed acceptance
# --------------------------------------------------------------------------


def _acceptance_cases(acc: Acceptance) -> list[tuple[tuple[Pair, ...], tuple[Pair, ...]]]:
    """Present an acceptance condition as a disjunction of
    ``(streett-pairs, rabin-conjunct-pairs)`` cases."""
    if acc.kind is Kind.STREETT:
        return [(acc.pairs, ())]
    return [((), (pair,)) for pair in acc.pairs]


class ProductCheck:
    """The synchronous product of N automata, some complemented, with the
    conjunction of their (dualized) acceptance conditions distributed into
    pure Streett cases.  Decides emptiness of ``⋂ᵢ Lᵢ`` and extracts lassos."""

    def __init__(self, automata: Sequence[DetAutomaton], complemented: Sequence[bool]) -> None:
        if len(automata) != len(complemented):
            raise ValueError("one complement flag per automaton is required")
        first = automata[0]
        from repro.fastpath.config import kernel_selected

        work = len(first.alphabet)
        for aut in automata:
            work *= aut.num_states
        # One route per ProductCheck: the same selection drives the explore,
        # the case representation (frozensets vs masks) and the witness.
        self._dense = kernel_selected("product", work)
        if self._dense:
            from repro.fastpath.product import explore_vector_dense
            from repro.fastpath.tables import flat_table_over

            rows, order = explore_vector_dense(
                [
                    flat_table_over(aut._delta, aut.alphabet, first.alphabet)  # noqa: SLF001
                    for aut in automata
                ],
                [aut.num_states for aut in automata],
                len(first.alphabet),
                [aut.initial for aut in automata],
            )
        else:
            from repro.finitary.dfa import explore

            rows, order = explore(
                first.alphabet,
                tuple(aut.initial for aut in automata),
                lambda vector, symbol: tuple(
                    aut.step(state, symbol) for aut, state in zip(automata, vector)
                ),
            )
        self.automaton = DetAutomaton.trusted(
            first.alphabet, rows, 0, Acceptance.streett([])
        )
        self.order = order
        num_product_states = len(order)

        # buckets[side][q] lists the product states whose side-th component
        # is q, so lifting a set costs its output size, not O(N) per set.
        buckets: list[list[list[int]]] = [
            [[] for _ in range(aut.num_states)] for aut in automata
        ]
        for i, vector in enumerate(order):
            for side, component in enumerate(vector):
                buckets[side][component].append(i)

        if self._dense:
            # Masks throughout — frozenset cases are never materialized.
            def lift(pairs: Iterable[Pair], side: int) -> tuple[tuple[int, int], ...]:
                side_buckets = buckets[side]
                buffer_size = num_product_states // 8 + 1

                def lift_mask(states: frozenset[int]) -> int:
                    buffer = bytearray(buffer_size)
                    for state in states:
                        for i in side_buckets[state]:
                            buffer[i >> 3] |= 1 << (i & 7)
                    return int.from_bytes(buffer, "little")

                return tuple((lift_mask(p.left), lift_mask(p.right)) for p in pairs)
        else:

            def lift(pairs: Iterable[Pair], side: int) -> tuple[Pair, ...]:
                side_buckets = buckets[side]

                def lift_set(states: frozenset[int]) -> frozenset[int]:
                    lifted: list[int] = []
                    for state in states:
                        lifted.extend(side_buckets[state])
                    return frozenset(lifted)

                return tuple(Pair(lift_set(p.left), lift_set(p.right)) for p in pairs)

        per_automaton_cases = []
        for side, (aut, flip) in enumerate(zip(automata, complemented)):
            acc = aut.acceptance.dual(aut.num_states) if flip else aut.acceptance
            per_automaton_cases.append(
                [(lift(streett, side), lift(rabin, side)) for streett, rabin in _acceptance_cases(acc)]
            )

        # Cartesian distribution of the per-automaton disjunctions.  Each
        # case pairs the Streett obligations with the Rabin conjuncts, in
        # the route's set representation (Pair of frozensets / mask pairs).
        self.cases = [((), ())]
        for automaton_cases in per_automaton_cases:
            self.cases = [
                (streett + case_streett, rabin + case_rabin)
                for streett, rabin in self.cases
                for case_streett, case_rabin in automaton_cases
            ]

    def witness_component(self) -> frozenset[int] | None:
        with span(
            "emptiness.product_check",
            states=self.automaton.num_states,
            route="dense" if self._dense else "reference",
        ):
            start = time.perf_counter()
            try:
                return self._witness_component()
            finally:
                METRICS.timer("emptiness.product_check").observe(
                    time.perf_counter() - start
                )

    def _witness_component(self) -> frozenset[int] | None:
        aut = self.automaton
        METRICS.counter(
            f"fastpath.product_emptiness.{'hit' if self._dense else 'fallback'}"
        ).inc()
        if self._dense:
            return self._witness_component_dense()
        reachable = aut.reachable
        for streett, rabin_conjuncts in self.cases:
            # inf must avoid every Rabin F and meet every Rabin E: delete the
            # F states from the cycle arena, add (E, ∅) as extra Streett pairs.
            removed: frozenset[int] = frozenset()
            extra: list[Pair] = []
            for pair in rabin_conjuncts:
                removed |= pair.right
                extra.append(Pair(pair.left, frozenset()))
            arena = reachable - removed
            for component in streett_good_components(
                arena, aut.successors, tuple(streett) + tuple(extra)
            ):
                return component
        return None

    def _witness_component_dense(self) -> frozenset[int] | None:
        """Mask-based twin of :meth:`_witness_component`.

        The emptiness verdict is identical; when non-empty, the returned
        component may be a different (equally valid) accepting sub-SCC than
        the reference route would enumerate first.
        """
        from repro.fastpath.bitset import to_frozenset
        from repro.fastpath.scc import (
            prepared_adjacency,
            reachable_mask,
            streett_good_masks,
        )

        aut = self.automaton
        n = aut.num_states
        adjacency = prepared_adjacency(n, aut._delta)  # noqa: SLF001 — rows double as adjacency
        reachable = reachable_mask(n, aut.initial, adjacency)
        for streett, rabin_conjuncts in self.cases:
            removed = 0
            pairs = list(streett)
            for left, right in rabin_conjuncts:
                removed |= right
                pairs.append((left, 0))
            arena = reachable & ~removed
            good = streett_good_masks(n, arena, adjacency, pairs)
            if good:
                return to_frozenset(good[0])
        return None

    def witness_lasso(self) -> LassoWord | None:
        component = self.witness_component()
        if component is None:
            return None
        anchor, loop = _covering_loop(self.automaton, component)
        stem = _word_between(self.automaton, self.automaton.initial, anchor, None)
        assert stem is not None, "witness component must be reachable"
        return LassoWord(stem.symbols, loop.symbols)


def product_is_empty(automata: Sequence[DetAutomaton], complemented: Sequence[bool]) -> bool:
    """Is ``⋂ᵢ (Lᵢ or ¬Lᵢ)`` empty?  Arbitrarily many automata, mixed kinds."""
    return ProductCheck(automata, complemented).witness_component() is None


def product_example(
    automata: Sequence[DetAutomaton], complemented: Sequence[bool]
) -> LassoWord | None:
    return ProductCheck(automata, complemented).witness_lasso()


def intersection_is_empty(a: DetAutomaton, b: DetAutomaton, *, complement_second: bool = False) -> bool:
    """Is ``L(a) ∩ L(b)`` (or ``L(a) ∩ ¬L(b)``) empty?"""
    return product_is_empty([a, b], [False, complement_second])


def intersection_example(
    a: DetAutomaton, b: DetAutomaton, *, complement_second: bool = False
) -> LassoWord | None:
    """A lasso in ``L(a) ∩ L(b)`` (or ``L(a) ∩ ¬L(b)``), or ``None``."""
    return product_example([a, b], [False, complement_second])


def difference_example(a: DetAutomaton, b: DetAutomaton) -> LassoWord | None:
    """A lasso accepted by ``a`` but not ``b`` — an inclusion counterexample."""
    return intersection_example(a, b, complement_second=True)


def equals_intersection(target: DetAutomaton, parts: Sequence[DetAutomaton]) -> bool:
    """Does ``L(target) = ⋂ L(part)`` hold?  Avoids building explicit
    intersection automata, so it works for any acceptance kinds."""
    for part in parts:
        if not target.is_subset_of(part):
            return False
    flags = [False] * len(parts) + [True]
    return product_is_empty(list(parts) + [target], flags)


def equals_union(target: DetAutomaton, parts: Sequence[DetAutomaton]) -> bool:
    """Does ``L(target) = ⋃ L(part)`` hold?  By De Morgan on complements."""
    for part in parts:
        if not part.is_subset_of(target):
            return False
    flags = [True] * len(parts) + [False]
    return product_is_empty(list(parts) + [target], flags)
