"""Human-readable renderings of automata: text tables and Graphviz DOT."""

from __future__ import annotations

from repro.finitary.dfa import DFA
from repro.omega.acceptance import Kind
from repro.omega.automaton import DetAutomaton


def _symbol_groups(automaton: DetAutomaton | DFA, state: int) -> dict[int, list[str]]:
    """Targets grouped with the symbols that reach them (labels compressed)."""
    groups: dict[int, list[str]] = {}
    for symbol in automaton.alphabet:
        target = automaton.step(state, symbol)
        if isinstance(symbol, frozenset):
            label = "{" + ",".join(sorted(symbol)) + "}"
        else:
            label = str(symbol)
        groups.setdefault(target, []).append(label)
    return groups


def describe(automaton: DetAutomaton) -> str:
    """A compact textual table of the automaton."""
    lines = [
        f"{automaton.acceptance.kind.value} automaton, "
        f"{automaton.num_states} states, initial {automaton.initial}"
    ]
    for index, pair in enumerate(automaton.acceptance.pairs):
        left_name, right_name = ("R", "P") if automaton.acceptance.kind is Kind.STREETT else ("E", "F")
        lines.append(
            f"  pair {index}: {left_name}={sorted(pair.left)} {right_name}={sorted(pair.right)}"
        )
    for state in automaton.states:
        edges = ", ".join(
            f"{'|'.join(labels)}→{target}" for target, labels in _symbol_groups(automaton, state).items()
        )
        lines.append(f"  {state}: {edges}")
    return "\n".join(lines)


def to_dot(automaton: DetAutomaton | DFA, *, name: str = "automaton") -> str:
    """Graphviz DOT source.

    ω-automata annotate states with their acceptance-pair memberships
    (``R0``/``P0`` or ``E0``/``F0``); DFAs use double circles for accepting
    states.
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;", '  __init [shape=point, label=""];']
    if isinstance(automaton, DetAutomaton):
        left_name, right_name = (
            ("R", "P") if automaton.acceptance.kind is Kind.STREETT else ("E", "F")
        )
        for state in automaton.states:
            tags = []
            for index, pair in enumerate(automaton.acceptance.pairs):
                if state in pair.left:
                    tags.append(f"{left_name}{index}")
                if state in pair.right:
                    tags.append(f"{right_name}{index}")
            label = str(state) + (f"\\n{','.join(tags)}" if tags else "")
            lines.append(f'  q{state} [shape=circle, label="{label}"];')
        initial = automaton.initial
    else:
        for state in automaton.states:
            shape = "doublecircle" if state in automaton.accepting else "circle"
            lines.append(f'  q{state} [shape={shape}, label="{state}"];')
        initial = automaton.initial
    lines.append(f"  __init -> q{initial};")
    for state in automaton.states:
        for target, labels in _symbol_groups(automaton, state).items():
            label = "|".join(labels).replace('"', "'")
            lines.append(f'  q{state} -> q{target} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
