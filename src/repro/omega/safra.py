"""Safra's determinization: NBA → deterministic Rabin automaton.

Macrostates are Safra trees: ordered trees of named nodes, each carrying a
set of NBA states, children partitioning (a subset of) the parent, younger
siblings ordered to the right.  One step:

1. remove all marks;
2. every node whose label meets the NBA's accepting set sprouts a youngest
   child carrying that intersection (fresh smallest free name);
3. every label advances through the NBA transition on the input symbol;
4. horizontal merge — a state appearing under two siblings is deleted from
   the younger subtree;
5. nodes with empty labels die (with their subtrees);
6. vertical merge — a node whose label equals the union of its children's
   labels deletes all descendants and becomes *marked* (``!``).

Acceptance (Rabin, one pair per node name ``n``): some ``n`` is eventually
never deleted and marked infinitely often — ``E_n`` = macrostates with ``n``
marked, ``F_n`` = macrostates without ``n`` in the tree.

At most ``2·|Q|`` names are ever needed (a live tree has at most ``|Q|``
nodes, plus transient children within a step).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.omega.acceptance import Acceptance, Kind, Pair
from repro.omega.automaton import DetAutomaton
from repro.omega.buchi import NBA
from repro.words.alphabet import Symbol

FrozenTree = tuple  # (name, frozenset[int], tuple[FrozenTree, ...])


@dataclass
class _Node:
    name: int
    label: set[int]
    children: list["_Node"]

    def freeze(self) -> FrozenTree:
        return (self.name, frozenset(self.label), tuple(c.freeze() for c in self.children))

    @classmethod
    def thaw(cls, frozen: FrozenTree) -> "_Node":
        name, label, children = frozen
        return cls(name, set(label), [cls.thaw(c) for c in children])

    def all_nodes(self) -> list["_Node"]:
        result = [self]
        for child in self.children:
            result.extend(child.all_nodes())
        return result

    def remove_states(self, states: set[int]) -> None:
        self.label -= states
        for child in self.children:
            child.remove_states(states)


def _used_names(node: _Node) -> set[int]:
    return {n.name for n in node.all_nodes()}


def _safra_step(
    frozen: FrozenTree | None, symbol: Symbol, nba: NBA
) -> tuple[FrozenTree | None, frozenset[int]]:
    """One Safra transition; returns the new tree and the marked names."""
    if frozen is None:
        return None, frozenset()
    root = _Node.thaw(frozen)

    # Step 2: branch on accepting intersections (fresh smallest free names).
    used = _used_names(root)
    next_name = 0

    def fresh_name() -> int:
        nonlocal next_name
        while next_name in used:
            next_name += 1
        used.add(next_name)
        return next_name

    for node in root.all_nodes():
        hit = node.label & nba.accepting
        if hit:
            node.children.append(_Node(fresh_name(), set(hit), []))

    # Step 3: powerset update of every label.
    for node in root.all_nodes():
        node.label = set(nba.post(node.label, symbol))

    # Step 4: horizontal merge — keep each state only in the oldest sibling.
    def horizontal(node: _Node) -> None:
        seen: set[int] = set()
        for child in node.children:
            child.remove_states(seen)
            seen |= child.label
        for child in node.children:
            horizontal(child)

    horizontal(root)

    # Step 5: remove empty nodes (subtrees die with them).
    def prune(node: _Node) -> None:
        node.children = [c for c in node.children if c.label]
        for child in node.children:
            prune(child)

    prune(root)
    if not root.label:
        return None, frozenset()

    # Step 6: vertical merge and marking.
    marked: set[int] = set()

    def vertical(node: _Node) -> None:
        for child in node.children:
            vertical(child)
        union: set[int] = set()
        for child in node.children:
            union |= child.label
        if node.children and union == node.label:
            node.children = []
            marked.add(node.name)

    vertical(root)
    return root.freeze(), frozenset(marked)


def determinize(nba: NBA) -> DetAutomaton:
    """Safra's construction; the result is a deterministic Rabin automaton
    accepting exactly the NBA's language."""
    from repro.obs.spans import span

    with span("safra.determinize", nba_states=nba.num_states) as obs_span:
        return _determinize(nba, obs_span)


def _determinize(nba: NBA, obs_span) -> DetAutomaton:
    import time

    from repro.engine.metrics import METRICS, trace
    from repro.fastpath.config import kernel_selected

    start = time.perf_counter()
    # Tree work per macrostate grows with the (up to exponential) number of
    # Safra nodes, so the work proxy is deliberately superlinear in |Q|.
    if kernel_selected("safra", nba.num_states ** 2 * len(nba.alphabet)):
        from repro.fastpath.safra import determinize_dense

        result = determinize_dense(nba)
    else:
        result = _determinize_reference(nba)
    elapsed = time.perf_counter() - start
    METRICS.timer("safra.determinize").observe(elapsed)
    METRICS.histogram("safra.macrostates").observe(result.num_states)
    obs_span.set_attribute("dra_states", result.num_states)
    obs_span.set_attribute("pairs", len(result.acceptance.pairs))
    trace(
        "safra.determinize",
        nba_states=nba.num_states,
        dra_states=result.num_states,
        pairs=len(result.acceptance.pairs),
        seconds=elapsed,
    )
    return result


def _determinize_reference(nba: NBA) -> DetAutomaton:
    from repro.finitary.dfa import explore

    if nba.initials:
        initial_tree: FrozenTree | None = (0, frozenset(nba.initials), ())
    else:
        initial_tree = None
    initial = (initial_tree, frozenset())

    def successor(state, symbol):
        tree, _marks = state
        return _safra_step(tree, symbol, nba)

    rows, order = explore(nba.alphabet, initial, successor)

    def names_in(tree: FrozenTree | None) -> frozenset[int]:
        if tree is None:
            return frozenset()
        name, _label, children = tree
        result = {name}
        for child in children:
            result |= names_in(child)
        return frozenset(result)

    all_names: set[int] = set()
    for tree, marks in order:
        all_names |= names_in(tree) | marks

    pairs = []
    for name in sorted(all_names):
        marked_states = frozenset(i for i, (_t, marks) in enumerate(order) if name in marks)
        absent_states = frozenset(
            i for i, (tree, _m) in enumerate(order) if name not in names_in(tree)
        )
        if marked_states:
            pairs.append(Pair(marked_states, absent_states))
    if not pairs:
        pairs.append(Pair(frozenset(), frozenset()))  # empty language
    return DetAutomaton(nba.alphabet, rows, 0, Acceptance(Kind.RABIN, tuple(pairs)))


def formula_to_dra(formula, alphabet) -> DetAutomaton:
    """Convenience: LTL+Past → NBA (GPVW) → deterministic Rabin (Safra),
    shrunk by the color-respecting quotient."""
    from repro.logic.translate import formula_to_nba
    from repro.omega.reduce import quotient_reduce

    return quotient_reduce(determinize(formula_to_nba(formula, alphabet)))
