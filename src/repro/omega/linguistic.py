"""The linguistic view (§2): building infinitary properties from finitary ones.

The four operators take a finitary property ``Φ ⊆ Σ⁺`` (a
:class:`~repro.finitary.language.FinitaryLanguage`) to a deterministic
ω-automaton over the same alphabet:

* ``A(Φ)`` — every non-empty prefix lies in Φ          (safety / closed),
* ``E(Φ)`` — some prefix lies in Φ                     (guarantee / open),
* ``R(Φ)`` — infinitely many prefixes lie in Φ         (recurrence / G_δ),
* ``P(Φ)`` — all but finitely many prefixes lie in Φ   (persistence / F_σ).

Because Φ's DFA is deterministic and complete, "the prefix of length *k* is
in Φ" is equivalent to "the run sits in an accepting DFA state after *k*
steps", which turns the four operators into the four classic acceptance
disciplines on (almost) the same transition core.
"""

from __future__ import annotations

from repro.finitary.language import FinitaryLanguage
from repro.omega.automaton import DetAutomaton
from repro.words.alphabet import Symbol

_TRAP = "linguistic-trap"
_SINK = "linguistic-sink"


def a_of(phi: FinitaryLanguage) -> DetAutomaton:
    """``A(Φ)``: redirect any step that exits Φ into a rejecting trap;
    accept iff the trap is never entered (a safety automaton)."""
    dfa = phi.dfa

    def successor(state: int | str, symbol: Symbol) -> int | str:
        if state == _TRAP:
            return _TRAP
        target = dfa.step(state, symbol)
        return target if target in dfa.accepting else _TRAP

    return DetAutomaton.build_cobuchi(dfa.alphabet, dfa.initial, successor, lambda s: s != _TRAP)


def e_of(phi: FinitaryLanguage) -> DetAutomaton:
    """``E(Φ) = Φ·Σ^ω``: latch into an accepting sink on the first Φ-prefix
    (a guarantee automaton)."""
    dfa = phi.dfa

    def successor(state: int | str, symbol: Symbol) -> int | str:
        if state == _SINK:
            return _SINK
        target = dfa.step(state, symbol)
        return _SINK if target in dfa.accepting else target

    return DetAutomaton.build_buchi(dfa.alphabet, dfa.initial, successor, lambda s: s == _SINK)


def r_of(phi: FinitaryLanguage) -> DetAutomaton:
    """``R(Φ)``: Büchi acceptance on Φ's own DFA — the run revisits accepting
    DFA states exactly as often as prefixes fall in Φ (a recurrence automaton)."""
    dfa = phi.dfa
    return DetAutomaton.build_buchi(dfa.alphabet, dfa.initial, dfa.step, lambda s: s in dfa.accepting)


def p_of(phi: FinitaryLanguage) -> DetAutomaton:
    """``P(Φ)``: co-Büchi acceptance on Φ's own DFA — eventually the run stays
    inside the accepting DFA states (a persistence automaton)."""
    dfa = phi.dfa
    return DetAutomaton.build_cobuchi(dfa.alphabet, dfa.initial, dfa.step, lambda s: s in dfa.accepting)


def apply_operator(name: str, phi: FinitaryLanguage) -> DetAutomaton:
    """Dispatch ``name ∈ {'A','E','R','P'}`` — convenient for table-driven tests."""
    table = {"A": a_of, "E": e_of, "R": r_of, "P": p_of}
    try:
        return table[name.upper()](phi)
    except KeyError:
        raise ValueError(f"unknown linguistic operator {name!r}; expected A, E, R or P") from None
