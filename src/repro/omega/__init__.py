"""ω-automata: the automata view of the hierarchy (§5).

Deterministic predicate automata with Streett/Rabin acceptance, the
linguistic operators ``A/E/R/P``, emptiness and inclusion checking, the
Landweber–Wagner classification procedures, Safra determinization, and
counter-freedom.
"""

from repro.omega.acceptance import Acceptance, Kind, Pair
from repro.omega.automaton import DetAutomaton
from repro.omega.closure import (
    is_liveness,
    is_safety_closed,
    is_uniform_liveness,
    liveness_extension,
    pref_language,
    safety_closure,
    safety_liveness_decomposition,
)
from repro.omega.emptiness import (
    accepting_cycle_states,
    difference_example,
    equals_intersection,
    equals_union,
    intersection_example,
    intersection_is_empty,
    is_empty,
    nonempty_states,
    product_example,
    product_is_empty,
)
from repro.omega.linguistic import a_of, apply_operator, e_of, p_of, r_of
from repro.omega.omega_regex import omega_language, parse_omega_regex
from repro.omega.reduce import quotient_reduce
from repro.omega.render import describe, to_dot
from repro.omega.weakmin import minimal_weak_automaton

__all__ = [
    "Acceptance",
    "Kind",
    "Pair",
    "DetAutomaton",
    "a_of",
    "e_of",
    "r_of",
    "p_of",
    "apply_operator",
    "omega_language",
    "parse_omega_regex",
    "quotient_reduce",
    "describe",
    "to_dot",
    "minimal_weak_automaton",
    "accepting_cycle_states",
    "difference_example",
    "equals_intersection",
    "equals_union",
    "intersection_example",
    "intersection_is_empty",
    "is_empty",
    "nonempty_states",
    "product_example",
    "product_is_empty",
    "is_liveness",
    "is_safety_closed",
    "is_uniform_liveness",
    "liveness_extension",
    "pref_language",
    "safety_closure",
    "safety_liveness_decomposition",
]
