"""State-space reduction for deterministic ω-automata.

Deterministic ω-automata have no canonical minimal form in general, but the
*color-respecting quotient* — partition refinement where two states may
merge only if they agree on membership in every acceptance set and have
merged successors on every symbol — always preserves the language (the
quotient run carries the same acceptance-set visitation profile, so every
infinity set keeps its verdict).  Safra outputs shrink substantially.
"""

from __future__ import annotations

from repro.omega.acceptance import Acceptance, Pair
from repro.omega.automaton import DetAutomaton


def _quotient_blocks_reference(
    trimmed: DetAutomaton, states: list[int], colors: list[tuple[bool, ...]]
) -> dict[int, int]:
    """Partition refinement over ``step`` calls (the reference route)."""
    block: dict[int, int] = {}
    signatures: dict[tuple, int] = {}
    for state, color in zip(states, colors):
        block[state] = signatures.setdefault(color, len(signatures))

    while True:
        new_signatures: dict[tuple, int] = {}
        new_block: dict[int, int] = {}
        for state in states:
            signature = (
                block[state],
                tuple(block[trimmed.step(state, symbol)] for symbol in trimmed.alphabet),
            )
            new_block[state] = new_signatures.setdefault(signature, len(new_signatures))
        if new_block == block:
            break
        block = new_block
    return block


def _color_of(aut: DetAutomaton, state: int) -> tuple[bool, ...]:
    profile: list[bool] = []
    for pair in aut.acceptance.pairs:
        profile.append(state in pair.left)
        profile.append(state in pair.right)
    return tuple(profile)


def quotient_reduce(aut: DetAutomaton) -> DetAutomaton:
    """The coarsest color-respecting bisimulation quotient (reachable part)."""
    from repro.fastpath.config import kernel_selected

    trimmed = aut.trim()
    states = list(trimmed.states)
    colors = [_color_of(trimmed, state) for state in states]

    if kernel_selected("quotient", trimmed.num_states * len(trimmed.alphabet)):
        from repro.fastpath.reduce import quotient_blocks_dense

        block = dict(
            enumerate(quotient_blocks_dense(trimmed._delta, colors))  # noqa: SLF001
        )
    else:
        block = _quotient_blocks_reference(trimmed, states, colors)

    representatives: dict[int, int] = {}
    for state in states:
        representatives.setdefault(block[state], state)

    def successor(class_id: int, symbol) -> int:
        return block[trimmed.step(representatives[class_id], symbol)]

    num_classes = len(representatives)
    rows = [
        [successor(class_id, symbol) for symbol in trimmed.alphabet]
        for class_id in range(num_classes)
    ]

    def lift(member_set: frozenset[int]) -> frozenset[int]:
        # Color-respecting blocks are uniform w.r.t. every acceptance set.
        return frozenset(
            class_id
            for class_id, representative in representatives.items()
            if representative in member_set
        )

    pairs = tuple(Pair(lift(p.left), lift(p.right)) for p in trimmed.acceptance.pairs)
    return DetAutomaton(
        trimmed.alphabet,
        rows,
        block[trimmed.initial],
        Acceptance(trimmed.acceptance.kind, pairs),
    )
