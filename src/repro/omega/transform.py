"""Normalizing automata into the paper's κ-shapes (Proposition 5.1).

Given a deterministic automaton whose property is *known* (or required) to
lie in class κ, build a language-equivalent automaton with the syntactic
κ-shape of §5:

* safety    — bad states become an absorbing trap, acceptance = "stay good";
* guarantee — dual through complementation;
* recurrence — the paper's persistent-cycle absorption (``R'ᵢ = Rᵢ ∪ Aᵢ``,
  ``P'ᵢ = ∅``) followed by counter degeneralization into a single Büchi set;
* persistence — dual through complementation;
* obligation — product of the recurrence (Büchi) and persistence (co-Büchi)
  forms, reduced to a weak automaton by labelling each SCC with the verdict
  of its strongly connected cycles (sound because obligation properties have
  equi-accepting SCCs).

Each construction raises :class:`ClassificationError` when the property is
not in the requested class, so the functions double as verified casts.
"""

from __future__ import annotations

from repro.errors import ClassificationError
from repro.omega import classify as classify_mod
from repro.omega.acceptance import Acceptance, Kind
from repro.omega.automaton import DetAutomaton
from repro.omega.closure import live_states
from repro.omega.emptiness import streett_good_components
from repro.omega.graph import is_nontrivial_component, restricted_sccs
from repro.words.alphabet import Symbol

_TRAP = "normalized-trap"


def to_safety_automaton(aut: DetAutomaton) -> DetAutomaton:
    """A safety-shaped automaton for a safety property: dead states collapse
    into one absorbing trap; acceptance is co-Büchi on the live region."""
    if not classify_mod.is_safety(aut):
        raise ClassificationError("property is not a safety property")
    live = live_states(aut)

    def successor(state: int | str, symbol: Symbol) -> int | str:
        if state == _TRAP:
            return _TRAP
        target = aut.step(state, symbol)
        return target if target in live else _TRAP

    initial = aut.initial if aut.initial in live else _TRAP
    return DetAutomaton.build_cobuchi(aut.alphabet, initial, successor, lambda s: s != _TRAP)


def to_guarantee_automaton(aut: DetAutomaton) -> DetAutomaton:
    """A guarantee-shaped automaton: the complement's safety normal form,
    re-complemented — good states become an absorbing accepting sink."""
    if not classify_mod.is_guarantee(aut):
        raise ClassificationError("property is not a guarantee property")
    safety_form = to_safety_automaton(aut.complement())
    # safety_form is co-Büchi on the non-trap states P; its complement is the
    # Büchi automaton on the (absorbing) trap — exactly the guarantee shape.
    (pair,) = safety_form.acceptance.pairs
    trap_states = frozenset(safety_form.states) - pair.right
    return safety_form.with_acceptance(Acceptance.buchi(trap_states))


def _persistent_cycle_states(aut: DetAutomaton, pair_index: int) -> frozenset[int]:
    """States on accepting cycles avoiding ``R_i`` (the paper's ``A_i``)."""
    pairs = aut.acceptance.pairs
    arena = aut.reachable - pairs[pair_index].left
    components = streett_good_components(arena, aut.successors, pairs)
    result: set[int] = set()
    for component in components:
        result |= component
    return frozenset(result)


def _streett_persistence_to_cobuchi(aut: DetAutomaton) -> DetAutomaton:
    """Native co-Büchi construction for a persistence-class Streett automaton.

    Under persistence, a run is accepting iff its infinity set lies inside a
    single *good component* (every sub-cycle of an accepting cycle accepts).
    The good components are pairwise disjoint, so it suffices to watch a
    stability bit: the current state belongs to the same good component as
    the previous one.  Co-Büchi acceptance on the stable states then says
    "eventually trapped in one good component".
    """
    components = streett_good_components(aut.states, aut.successors, aut.acceptance.pairs)
    membership: dict[int, int] = {}
    for index, component in enumerate(components):
        for state in component:
            membership[state] = index

    def successor(state: tuple[int, bool], symbol: Symbol) -> tuple[int, bool]:
        q, _stable = state
        target = aut.step(q, symbol)
        here, there = membership.get(q), membership.get(target)
        return target, there is not None and there == here

    return DetAutomaton.build_cobuchi(
        aut.alphabet, (aut.initial, False), successor, lambda state: state[1]
    )


def _streett_recurrence_to_buchi(aut: DetAutomaton) -> DetAutomaton:
    """Phase 1 of the paper's proof (absorb persistent cycles: ``R'ᵢ = Rᵢ ∪
    Aᵢ``, ``P'ᵢ = ∅``) followed by round-robin degeneralization."""
    pairs = aut.acceptance.pairs
    if not pairs:
        return DetAutomaton.universal(aut.alphabet)
    recurrent_sets = [
        pairs[i].left | _persistent_cycle_states(aut, i) for i in range(len(pairs))
    ]
    k = len(recurrent_sets)

    def successor(state: tuple[int, int], symbol: Symbol) -> tuple[int, int]:
        q, counter = state
        if counter == k:  # a completed round restarts the counter
            counter = 0
        target = aut.step(q, symbol)
        next_counter = counter + 1 if target in recurrent_sets[counter] else counter
        return target, next_counter

    # Counter value k marks "every R'ᵢ seen since the last wrap": visiting it
    # infinitely often is the conjunction of the k Büchi requirements.
    return DetAutomaton.build_buchi(
        aut.alphabet, (aut.initial, 0), successor, lambda state: state[1] == k
    )


def to_recurrence_automaton(aut: DetAutomaton) -> DetAutomaton:
    """A Büchi automaton for a recurrence property.

    Streett kind: the paper's persistent-cycle absorption plus counter
    degeneralization.  Rabin kind: the complement is a persistence-class
    Streett automaton; its native co-Büchi form dualizes into a Büchi one.
    """
    if not classify_mod.is_recurrence(aut):
        raise ClassificationError("property is not a recurrence property")
    if aut.acceptance.kind is Kind.STREETT:
        return _streett_recurrence_to_buchi(aut)
    cobuchi = _streett_persistence_to_cobuchi(aut.complement())
    (pair,) = cobuchi.acceptance.pairs
    return cobuchi.with_acceptance(
        Acceptance.buchi(frozenset(cobuchi.states) - pair.right)
    )


def to_persistence_automaton(aut: DetAutomaton) -> DetAutomaton:
    """A co-Büchi automaton for a persistence property (dual constructions)."""
    if not classify_mod.is_persistence(aut):
        raise ClassificationError("property is not a persistence property")
    if aut.acceptance.kind is Kind.STREETT:
        return _streett_persistence_to_cobuchi(aut)
    buchi = _streett_recurrence_to_buchi(aut.complement())
    (pair,) = buchi.acceptance.pairs
    return buchi.with_acceptance(
        Acceptance.cobuchi(frozenset(buchi.states) - pair.left)
    )


def to_obligation_automaton(aut: DetAutomaton) -> DetAutomaton:
    """A *weak* automaton (every SCC uniformly accepting or rejecting) for an
    obligation property, with Büchi acceptance on the accepting SCCs."""
    if not classify_mod.is_obligation(aut):
        raise ClassificationError("property is not an obligation property")
    trimmed = aut.trim()
    sccs = restricted_sccs(range(trimmed.num_states), trimmed.successors)
    accepting_states: set[int] = set()
    for scc in sccs:
        scc_set = frozenset(scc)
        internal = lambda s, inside=scc_set: [t for t in trimmed.successors(s) if t in inside]
        if not is_nontrivial_component(scc, internal):
            continue
        # Obligation ⟹ all cycles of the SCC agree with the full SCC cycle.
        if trimmed.acceptance.accepts_infinity_set(scc_set):
            accepting_states |= scc_set
    return trimmed.with_acceptance(Acceptance.buchi(sorted(accepting_states)))


def to_simple_reactivity_automaton(aut: DetAutomaton) -> DetAutomaton:
    """A one-pair Streett automaton, when the property's index allows it.

    Recurrence/persistence properties reuse their dedicated constructions;
    the genuinely mixed case runs the paper's anticipation product
    (:func:`reactivity_product`)."""
    if classify_mod.streett_index(aut) > 1:
        raise ClassificationError("property needs more than one Streett pair")
    if aut.acceptance.kind is Kind.STREETT and len(aut.acceptance.pairs) == 1:
        return aut
    if classify_mod.is_recurrence(aut):
        buchi = to_recurrence_automaton(aut)
        (pair,) = buchi.acceptance.pairs
        return buchi.with_acceptance(Acceptance.streett([(pair.left, pair.right)]))
    if classify_mod.is_persistence(aut):
        cobuchi = to_persistence_automaton(aut)
        (pair,) = cobuchi.acceptance.pairs
        return cobuchi.with_acceptance(Acceptance.streett([(pair.left, pair.right)]))
    return reactivity_product(aut)


def reactivity_product(aut: DetAutomaton) -> DetAutomaton:
    """The paper's ``Q' = Q × Q^m × 2 × n × 2`` construction (Prop 5.1,
    reactivity case), for properties of Streett index 1.

    Wagner's characterization partitions the accepting cycle family into
    *upward-witnessing* sets ``A₁…A_m`` (every accessible cycle containing
    ``Aᵢ`` accepts) and *downward-witnessing* sets ``B₁…B_n`` (every
    accessible cycle inside ``B_j`` accepts).  The product automaton
    anticipates, per ``Aᵢ``, the next ``Aᵢ``-state to be visited — matching
    the anticipated state infinitely often means ``inf ⊇ Aᵢ`` — and scans
    the ``B_j`` round-robin — a stabilized scan means ``inf ⊆ B_j``.  The
    single pair is (matches, stable-scan states).

    Uses explicit cycle-family enumeration, so it is restricted to small
    automata (like the paper's construction, it is a proof artifact).
    """
    from repro.omega.cyclefamily import accessible_cycles

    cycles = accessible_cycles(aut)
    accepted = [c for c in cycles if aut.acceptance.accepts_infinity_set(c)]
    cycle_set = set(cycles)
    accepted_set = set(accepted)

    def upward(candidate: frozenset[int]) -> bool:
        return all(c in accepted_set for c in cycle_set if candidate <= c)

    def downward(candidate: frozenset[int]) -> bool:
        return all(c in accepted_set for c in cycle_set if c <= candidate)

    a_type = [c for c in accepted if upward(c)]
    b_type = [c for c in accepted if downward(c)]
    for member in accepted:
        if member not in set(a_type) | set(b_type):
            raise ClassificationError(
                "the accepting family violates Wagner's simple-reactivity "
                "characterization (index > 1)"
            )
    # Minimal upward witnesses and maximal downward witnesses suffice.
    a_list = sorted(
        (c for c in a_type if not any(o < c for o in a_type)), key=sorted
    )
    b_list = sorted(
        (c for c in b_type if not any(c < o for o in b_type)), key=sorted
    )
    a_order = [sorted(c) for c in a_list]
    n_b = max(1, len(b_list))
    b_sets = [frozenset(b) for b in b_list] or [frozenset()]

    # State: (q, anticipated index per Aᵢ, scan index j).  The two flags of
    # the paper's construction are recovered from the transition itself, so
    # they are folded into the state as booleans.
    State = tuple  # (q, tuple[int, ...], int, bool, bool)
    initial: State = (aut.initial, tuple(0 for _ in a_order), 0, False, False)

    def successor(state: State, symbol) -> State:
        q, anticipated, scan, _match, _stable = state
        target = aut.step(q, symbol)
        new_anticipated = []
        matched = False
        for index, pointer in enumerate(anticipated):
            expected = a_order[index][pointer]
            if target == expected:
                new_anticipated.append((pointer + 1) % len(a_order[index]))
                matched = True
            else:
                new_anticipated.append(pointer)
        if target in b_sets[scan]:
            new_scan, stable = scan, True
        else:
            new_scan, stable = (scan + 1) % n_b, False
        return (target, tuple(new_anticipated), new_scan, matched, stable)

    def acceptance(order: list[State]) -> Acceptance:
        recurrent = [i for i, s in enumerate(order) if s[3]]
        persistent = [i for i, s in enumerate(order) if s[4]]
        return Acceptance.streett([(recurrent, persistent)])

    return DetAutomaton.build(aut.alphabet, initial, successor, acceptance)


def normalize(aut: DetAutomaton, target: "str" = "auto") -> DetAutomaton:
    """Normalize to the lowest κ-shape the property admits (or to ``target``).

    ``target`` may be ``'safety' | 'guarantee' | 'obligation' | 'recurrence'
    | 'persistence' | 'auto'``.
    """
    table = {
        "safety": to_safety_automaton,
        "guarantee": to_guarantee_automaton,
        "obligation": to_obligation_automaton,
        "recurrence": to_recurrence_automaton,
        "persistence": to_persistence_automaton,
    }
    if target != "auto":
        try:
            return table[target](aut)
        except KeyError:
            raise ValueError(f"unknown normalization target {target!r}") from None
    for name in ("safety", "guarantee", "obligation", "recurrence", "persistence"):
        try:
            return table[name](aut)
        except ClassificationError:
            continue
    return aut
