"""Prefix languages, safety closure, and the safety–liveness decomposition.

On a deterministic automaton the *dead* states (empty residual language) are
closed under successors, which makes the paper's operators one-liners:

* ``Pref(Π)``            — finite words whose run ends in a live state;
* ``cl(Π) = A(Pref(Π))`` — same core, accept iff the run never goes dead;
* liveness (= density)   — every reachable state is live;
* ``L(Π) = Π ∪ E(¬Pref(Π))`` — same core, acceptance extended so that any
  run falling into the dead region is accepted.

Together these give the Alpern–Schneider decomposition ``Π = Π_S ∩ Π_L``
exactly as proved in §2 of the paper.
"""

from __future__ import annotations

from repro.errors import ClassificationError
from repro.finitary.language import FinitaryLanguage
from repro.omega.acceptance import Acceptance, Kind, Pair
from repro.omega.automaton import DetAutomaton
from repro.omega.emptiness import nonempty_states, streett_good_components
from repro.omega.graph import can_reach
from repro.words.alphabet import Symbol


def live_states(aut: DetAutomaton) -> frozenset[int]:
    """States with a non-empty residual language."""
    return nonempty_states(aut)


def dead_states(aut: DetAutomaton) -> frozenset[int]:
    return frozenset(aut.states) - nonempty_states(aut)


def pref_language(aut: DetAutomaton) -> FinitaryLanguage:
    """``Pref(Π)`` as a finitary language (non-empty prefixes of Π-words)."""
    return FinitaryLanguage(aut.transition_dfa(live_states(aut)))


def safety_closure(aut: DetAutomaton) -> DetAutomaton:
    """``cl(Π) = A(Pref(Π))`` on the same transition core (a safety automaton)."""
    live = live_states(aut)
    return aut.with_acceptance(Acceptance.cobuchi(live))


def is_safety_closed(aut: DetAutomaton) -> bool:
    """``Π = cl(Π)`` — the paper's characterization of the safety class."""
    return aut.equivalent_to(safety_closure(aut))


def is_liveness(aut: DetAutomaton) -> bool:
    """``Pref(Π) = Σ⁺`` ⟺ Π is topologically dense (§2/§3)."""
    return aut.reachable <= live_states(aut)


def liveness_extension(aut: DetAutomaton) -> DetAutomaton:
    """``L(Π) = Π ∪ E(¬Pref(Π))`` on the same transition core.

    The dead region is successor-closed, so "some prefix outside Pref(Π)"
    means "the run eventually lives in the dead region"; widening every
    acceptance set by the dead states (Streett) or adding the pair
    ``(dead, ∅)`` (Rabin) realizes the union without new states.
    """
    dead = dead_states(aut)
    acc = aut.acceptance
    if acc.kind is Kind.STREETT:
        pairs = tuple(Pair(p.left | dead, p.right | dead) for p in acc.pairs)
        if not pairs:
            # The empty Streett condition is already universal.
            pairs = ()
        return aut.with_acceptance(Acceptance(Kind.STREETT, pairs))
    return aut.with_acceptance(Acceptance(Kind.RABIN, acc.pairs + (Pair(dead, frozenset()),)))


def safety_liveness_decomposition(aut: DetAutomaton) -> tuple[DetAutomaton, DetAutomaton]:
    """``(Π_S, Π_L)`` with ``Π = Π_S ∩ Π_L``, ``Π_S`` safety, ``Π_L`` liveness."""
    return safety_closure(aut), liveness_extension(aut)


def is_uniform_liveness(aut: DetAutomaton) -> bool:
    """Is there a single ``σ' ∈ Σ^ω`` with ``Σ⁺·σ' ⊆ Π``?

    Decided on the product of one automaton copy per state reachable in at
    least one step: the shared suffix must be accepted from all of them.
    Requires Streett-presentable acceptance (all of the paper's examples).
    """
    base_pairs = aut.acceptance.as_streett_pairs(aut.num_states)
    if base_pairs is None:
        raise ClassificationError(
            "uniform-liveness check needs Streett-presentable acceptance; "
            "complement the automaton or reduce its Rabin pairs first"
        )
    starts = sorted({aut.step(q, s) for q in aut.reachable for s in aut.alphabet})

    def successor(vector: tuple[int, ...], symbol: Symbol) -> tuple[int, ...]:
        return tuple(aut.step(q, symbol) for q in vector)

    from repro.finitary.dfa import explore

    rows, order = explore(aut.alphabet, tuple(starts), successor)

    def lift(states: frozenset[int], position: int) -> frozenset[int]:
        return frozenset(i for i, vec in enumerate(order) if vec[position] in states)

    pairs = [
        Pair(lift(p.left, position), lift(p.right, position))
        for position in range(len(starts))
        for p in base_pairs
    ]
    good = streett_good_components(range(len(rows)), lambda s: frozenset(rows[s]), pairs)
    if not good:
        return False
    reachable_states = can_reach(len(rows), frozenset().union(*good), lambda s: frozenset(rows[s]))
    return 0 in reachable_states
