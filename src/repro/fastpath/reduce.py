"""Dense partition refinement for the bisimulation quotient.

The reference refinement loop in :func:`repro.omega.reduce.quotient_reduce`
recomputes every successor through ``DetAutomaton.step`` — an
``alphabet.index`` probe plus two tuple reads per edge, repeated each
round.  This twin works on the raw transition rows with list-indexed block
arrays, so a refinement round is one list read per edge.

Block ids are assigned by first occurrence of each signature while scanning
states ``0..n-1`` — exactly the reference's ``setdefault`` order over the
same state iteration — so the final partition (and hence the quotient
automaton built from it) is bit-identical.
"""

from __future__ import annotations

from collections.abc import Sequence


def quotient_blocks_dense(
    delta: Sequence[Sequence[int]],
    colors: Sequence[tuple],
) -> list[int]:
    """Coarsest color-respecting bisimulation blocks, as ``block[state]``.

    ``delta`` holds one successor row per state (symbol-indexed), ``colors``
    the per-state acceptance profile seeding the partition.
    """
    n = len(delta)
    rows = [list(row) for row in delta]
    signatures: dict = {}
    block = [signatures.setdefault(color, len(signatures)) for color in colors]

    while True:
        new_signatures: dict = {}
        setdefault = new_signatures.setdefault
        new_block = [
            setdefault(
                (block[state], *[block[target] for target in rows[state]]),
                len(new_signatures),
            )
            for state in range(n)
        ]
        if new_block == block:
            return block
        block = new_block
