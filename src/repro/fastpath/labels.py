"""Alphabet/label compression: partition symbols into equivalence classes.

Two symbols are *transition-equivalent* for an automaton when every state
moves the same way under both — the columns of the transition structure are
equal.  Spot performs exactly this compression on BDD-labelled edges; over
explicit alphabets it is a partition of symbol indices, computed once per
automaton in ``O(n·|Σ|)``:

* powerset alphabets (``Σ = 2^AP``) routinely carry many equivalent
  symbols — a formula over ``p`` classified over ``2^{p,q,r}`` steps
  identically on the four symbols agreeing on ``p``;
* every *step-shaped* kernel (Safra determinization, GPVW expansion, any
  BFS exploration) only needs one successor computation per class, with
  rows re-expanded through :meth:`LabelPartition.expand_row`.

Invariants the compression preserves (tested in
``tests/test_label_compression.py`` and the qa ``fastpath`` oracle):

* **lossless** — columns within a class are *equal*, not merely similar,
  so ``expand(compress(A))`` is structurally identical to ``A`` (same
  table, same initial state, same acceptance);
* **order-preserving** — classes are numbered by the first symbol of each
  class in alphabet order, so a kernel iterating classes discovers new
  states in exactly the order the per-symbol reference iteration would;
* **degenerate-safe** — a one-class partition (all columns equal) and the
  identity partition (all columns distinct) are both representable and
  round-trip.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.words.alphabet import Alphabet, Symbol


def ensure_alphabet(alphabet) -> Alphabet:
    """Coerce a duck-typed alphabet (e.g. a plain string) to ``Alphabet``.

    The reference routes only iterate alphabets and test membership, so the
    public API tolerates any ordered iterable; the partition kernels index
    into ``symbols`` and therefore need the real class.  ``Alphabet``
    preserves first-seen order, so coercion never reorders symbols.
    """
    return alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)


class LabelPartition:
    """A partition of an alphabet's symbols into transition-equivalence
    classes, numbered by first occurrence in alphabet order."""

    __slots__ = ("alphabet", "class_of", "members")

    def __init__(
        self,
        alphabet: Alphabet,
        class_of: Sequence[int],
        members: Sequence[Sequence[int]],
    ) -> None:
        self.alphabet = alphabet
        #: symbol index → class id.
        self.class_of: tuple[int, ...] = tuple(class_of)
        #: class id → ascending symbol indices of the class.
        self.members: tuple[tuple[int, ...], ...] = tuple(
            tuple(group) for group in members
        )

    @classmethod
    def from_columns(
        cls, alphabet: Alphabet, columns: Sequence[Hashable]
    ) -> "LabelPartition":
        """Group symbol indices whose column keys compare equal."""
        first_seen: dict[Hashable, int] = {}
        class_of: list[int] = []
        members: list[list[int]] = []
        for position, column in enumerate(columns):
            class_id = first_seen.get(column)
            if class_id is None:
                class_id = len(members)
                first_seen[column] = class_id
                members.append([])
            class_of.append(class_id)
            members[class_id].append(position)
        return cls(alphabet, class_of, members)

    @property
    def num_classes(self) -> int:
        return len(self.members)

    @property
    def is_trivial(self) -> bool:
        """True when no two symbols were merged (the identity partition)."""
        return len(self.members) == len(self.class_of)

    def representatives(self) -> tuple[Symbol, ...]:
        """The first symbol of each class, in class order."""
        symbols = self.alphabet.symbols
        return tuple(symbols[group[0]] for group in self.members)

    def representative_alphabet(self) -> Alphabet:
        """The compressed alphabet: one representative symbol per class."""
        return Alphabet(self.representatives())

    def expand_row(self, row: Sequence[int]) -> list[int]:
        """Lift a per-class row back to a per-symbol row."""
        return [row[c] for c in self.class_of]

    def __repr__(self) -> str:
        return (
            f"LabelPartition({self.num_classes} classes over"
            f" {len(self.class_of)} symbols)"
        )


def det_partition(automaton) -> LabelPartition:
    """Transition-equivalence classes of a deterministic table
    (:class:`~repro.omega.automaton.DetAutomaton` or
    :class:`~repro.finitary.dfa.DFA`)."""
    delta = automaton._delta  # noqa: SLF001 — fastpath is the in-tree twin
    alphabet = ensure_alphabet(automaton.alphabet)
    k = len(alphabet)
    columns = [tuple(row[a] for row in delta) for a in range(k)]
    return LabelPartition.from_columns(alphabet, columns)


def nba_partition(nba) -> LabelPartition:
    """Transition-equivalence classes of an NBA's (sparse) relation."""
    alphabet = ensure_alphabet(nba.alphabet)
    k = len(alphabet)
    empty = frozenset()
    columns: list[tuple] = []
    for a, symbol in enumerate(alphabet):
        columns.append(
            tuple(
                nba.transitions.get((state, symbol), empty)
                for state in range(nba.num_states)
            )
        )
    del a, k
    return LabelPartition.from_columns(alphabet, columns)


def compress_det(automaton):
    """Shrink a deterministic ω-automaton onto its representative alphabet.

    Returns ``(compressed, partition)``: the compressed automaton has one
    column per class (states and acceptance untouched), and
    :func:`expand_det` with the partition restores the original exactly.
    """
    from repro.omega.automaton import DetAutomaton

    partition = det_partition(automaton)
    delta = automaton._delta  # noqa: SLF001
    rows = [[row[group[0]] for group in partition.members] for row in delta]
    compressed = DetAutomaton.trusted(
        partition.representative_alphabet(), rows, automaton.initial, automaton.acceptance
    )
    return compressed, partition


def expand_det(compressed, partition: LabelPartition):
    """Inverse of :func:`compress_det`: re-expand per-class columns to the
    base alphabet.  ``expand_det(*compress_det(A))`` is structurally
    identical to ``A``."""
    from repro.omega.automaton import DetAutomaton

    delta = compressed._delta  # noqa: SLF001
    rows = [partition.expand_row(row) for row in delta]
    return DetAutomaton.trusted(
        partition.alphabet, rows, compressed.initial, compressed.acceptance
    )
