"""Iterative SCC and ω-emptiness kernels over masks and adjacency arrays.

The same recursive-pruning Streett emptiness as
:func:`repro.omega.emptiness.streett_good_components`, with the set algebra
(``S∩R≠∅``, ``S⊆P``, candidate restriction) collapsed to big-int mask
arithmetic, and Tarjan run with flat ``index``/``lowlink`` arrays over the
transition rows instead of dicts over frozenset-valued closures.

Representation notes:

* masks are used for whole-set operations (one machine op per 64 states),
  but *per-element* membership tests on a large mask cost ``O(n/64)`` per
  shift — so inside the Tarjan loop membership is tracked in flat
  bytearrays, and masks are packed/unpacked through byte buffers
  (:func:`repro.fastpath.bitset.pack_mask`) rather than bit-by-bit;
* the pruning recursion reuses one set of scratch arrays, resetting only
  the entries its candidate touched, so a deep recursion over shrinking
  candidates does ``O(|candidate|)`` work per round, not ``O(n)``;
* when numpy + scipy are importable (optional — see
  :mod:`repro.fastpath.vector`), pruning rounds over *large* candidates are
  routed to C SCC/BFS passes instead of the interpreted Tarjan loop; the
  small tail rounds of a deep pruning stay on the scratch arrays, whose
  per-round overhead is lower.  ``REPRO_FASTPATH_VECTOR=off`` pins
  everything to pure Python.

The *sets* these kernels compute — the union of accepting-cycle states, the
backward closure, the emptiness verdict — are identical to the reference
route's.  The *enumeration order* of good components may differ (Tarjan tie
order depends on edge iteration order), so witnesses extracted from a dense
run may be different, equally valid, lassos.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.fastpath.bitset import pack_mask, unpack_positions
from repro.fastpath.config import vector_enabled
from repro.fastpath import vector

#: Candidate size below which the pure Tarjan scratch beats the fixed
#: per-round cost of building a scipy CSR subgraph.
VECTOR_MIN_STATES = 192


def _vector_delta(num_states: int, adjacency):
    """The adjacency as a numpy table when the vector backend applies."""
    if (
        vector.HAVE_VECTOR
        and num_states >= VECTOR_MIN_STATES
        and vector_enabled()
    ):
        return vector.delta_array(adjacency)
    return None


def prepared_adjacency(num_states: int, adjacency):
    """Pre-convert an adjacency for repeated kernel calls on one graph.

    When the vector backend will be used, returns the numpy table so each
    kernel's own conversion is a no-op; otherwise returns the input
    unchanged.  Every kernel accepts either form.
    """
    delta = _vector_delta(num_states, adjacency)
    return adjacency if delta is None else delta


class _TarjanScratch:
    """Reusable arrays for repeated restricted-SCC passes on one graph.

    ``index`` doubles as the membership filter: states outside the current
    candidate keep the sentinel ``num_states`` (≥ 0, never ``on_stack``), so
    the hot loop needs one list read per edge instead of a separate
    allowed-set lookup.
    """

    __slots__ = ("adjacency", "num_states", "index", "lowlink", "on_stack")

    def __init__(self, num_states: int, adjacency: Sequence[Sequence[int]]) -> None:
        self.num_states = num_states
        tolist = getattr(adjacency, "tolist", None)
        if tolist is not None:  # numpy table — nested lists iterate faster here
            adjacency = tolist()
        self.adjacency = adjacency
        self.index = [num_states] * num_states
        self.lowlink = [0] * num_states
        self.on_stack = bytearray(num_states)

    def sccs(
        self, candidate: Sequence[int], *, nontrivial_only: bool = False
    ) -> list[list[int]]:
        """SCC member lists of the subgraph induced by ``candidate``, in
        Tarjan emission order (reverse topological).

        With ``nontrivial_only`` the trivial components (singletons without
        a self-loop) are dropped at pop time — the pruning loops skip them
        anyway, and most components of a heavily pruned graph are trivial.
        """
        adjacency = self.adjacency
        index = self.index
        lowlink = self.lowlink
        on_stack = self.on_stack
        for state in candidate:
            index[state] = -1

        stack: list[int] = []
        components: list[list[int]] = []
        counter = 0
        for root in candidate:
            if index[root] >= 0:
                continue
            work = [(root, iter(adjacency[root]))]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack[root] = 1
            while work:
                node, successors = work[-1]
                advanced = False
                low = lowlink[node]
                for target in successors:
                    target_index = index[target]
                    if target_index < 0:
                        lowlink[node] = low
                        index[target] = lowlink[target] = counter
                        counter += 1
                        stack.append(target)
                        on_stack[target] = 1
                        work.append((target, iter(adjacency[target])))
                        advanced = True
                        break
                    if target_index < low and on_stack[target]:
                        low = target_index
                if advanced:
                    continue
                lowlink[node] = low
                work.pop()
                if work:
                    parent = work[-1][0]
                    if low < lowlink[parent]:
                        lowlink[parent] = low
                if low == index[node]:
                    member = stack.pop()
                    on_stack[member] = 0
                    if member == node:
                        if not nontrivial_only or node in adjacency[node]:
                            components.append([node])
                        continue
                    members = [member]
                    while member != node:
                        member = stack.pop()
                        on_stack[member] = 0
                        members.append(member)
                    components.append(members)
        sentinel = self.num_states
        for state in candidate:
            index[state] = sentinel
        return components


def restricted_sccs_masked(
    num_states: int, mask: int, adjacency: Sequence[Sequence[int]]
) -> list[tuple[int, list[int]]]:
    """SCCs of the subgraph induced by ``mask``: ``(scc_mask, members)``
    pairs in Tarjan emission order (reverse topological)."""
    scratch = _TarjanScratch(num_states, adjacency)
    return [
        (pack_mask(members, num_states), members)
        for members in scratch.sccs(unpack_positions(mask))
    ]


def _is_nontrivial(members: list[int], adjacency) -> bool:
    if len(members) > 1:
        return True
    state = members[0]
    return state in adjacency[state]


def streett_good_masks(
    num_states: int,
    initial_mask: int,
    adjacency: Sequence[Sequence[int]],
    pairs: Sequence[tuple[int, int]],
    *,
    scratch: "_TarjanScratch | None" = None,
) -> list[int]:
    """Maximal accepting sub-SCC masks under Streett pairs ``(left, right)``.

    The mask twin of ``streett_good_components``: a sub-SCC ``S`` is good
    when every pair satisfies ``S & left`` or ``S & ~right == 0``.

    Rounds over large candidates run through the scipy SCC backend when it
    is available; the fixpoint itself — and therefore the resulting set of
    good masks — is the same either way.
    """
    delta = _vector_delta(num_states, adjacency)
    pair_bools = None
    good: list[int] = []
    pending: list = [unpack_positions(initial_mask)]
    while pending:
        candidate = pending.pop()
        if delta is not None and len(candidate) >= VECTOR_MIN_STATES:
            if pair_bools is None:
                pair_bools = [
                    (
                        vector.bools_from_mask(left, num_states),
                        vector.bools_from_mask(right, num_states),
                    )
                    for left, right in pairs
                ]
            found, rest = vector.streett_round(
                delta, vector.as_state_array(candidate), pair_bools, num_states
            )
            good.extend(found)
            pending.extend(rest)
            continue
        if scratch is None:
            scratch = _TarjanScratch(num_states, adjacency)
        if not isinstance(candidate, list):
            candidate = candidate.tolist()
        for members in scratch.sccs(candidate, nontrivial_only=True):
            scc_mask = pack_mask(members, num_states)
            restricted = scc_mask
            violated = False
            for left, right in pairs:
                if not scc_mask & left and scc_mask & ~right:
                    violated = True
                    restricted &= right
            if not violated:
                good.append(scc_mask)
            elif restricted:
                pending.append(unpack_positions(restricted))
    return good


def rabin_cycle_mask(
    num_states: int,
    initial_mask: int,
    adjacency: Sequence[Sequence[int]],
    pairs: Sequence[tuple[int, int]],
) -> int:
    """States on a cycle meeting some ``E_i`` while avoiding its ``F_i``."""
    delta = _vector_delta(num_states, adjacency)
    scratch = None
    result = 0
    for left, right in pairs:
        allowed = unpack_positions(initial_mask & ~right)
        if delta is not None and len(allowed) >= VECTOR_MIN_STATES:
            result |= vector.rabin_pair_mask(
                delta,
                vector.as_state_array(allowed),
                vector.bools_from_mask(left, num_states),
                num_states,
            )
            continue
        if scratch is None:
            scratch = _TarjanScratch(num_states, adjacency)
        for members in scratch.sccs(allowed, nontrivial_only=True):
            scc_mask = pack_mask(members, num_states)
            if scc_mask & left:
                result |= scc_mask
    return result


def reachable_mask(
    num_states: int, initial: int, adjacency: Sequence[Sequence[int]]
) -> int:
    """Forward closure from ``initial``, as a bitmask."""
    delta = _vector_delta(num_states, adjacency)
    if delta is not None:
        return vector.forward_closure_mask(delta, initial, num_states)
    seen = bytearray(num_states)
    seen[initial] = 1
    reached = [initial]
    frontier = [initial]
    while frontier:
        next_frontier: list[int] = []
        for state in frontier:
            for target in adjacency[state]:
                if not seen[target]:
                    seen[target] = 1
                    reached.append(target)
                    next_frontier.append(target)
        frontier = next_frontier
    return pack_mask(reached, num_states)


def can_reach_mask(
    num_states: int, target_mask: int, adjacency: Sequence[Sequence[int]]
) -> int:
    """Backward closure: states from which ``target_mask`` is reachable."""
    delta = _vector_delta(num_states, adjacency)
    if delta is not None:
        return vector.backward_closure_mask(delta, target_mask, num_states)
    predecessors: list[list[int]] = [[] for _ in range(num_states)]
    for state in range(num_states):
        for successor in adjacency[state]:
            predecessors[successor].append(state)
    seen = bytearray(num_states)
    reached = unpack_positions(target_mask)
    for state in reached:
        seen[state] = 1
    frontier = list(reached)
    while frontier:
        next_frontier: list[int] = []
        for state in frontier:
            for pred in predecessors[state]:
                if not seen[pred]:
                    seen[pred] = 1
                    reached.append(pred)
                    next_frontier.append(pred)
        frontier = next_frontier
    return pack_mask(reached, num_states)


def nonempty_states_dense(aut) -> frozenset[int]:
    """The dense twin of ``repro.omega.emptiness.nonempty_states``.

    The transition rows double as the adjacency (duplicate successors cost a
    revisited ``seen`` check, far less than deduplicating every row).
    """
    from repro.omega.acceptance import Kind

    n = aut.num_states
    adjacency = prepared_adjacency(n, aut._delta)  # noqa: SLF001 — in-tree twin
    full = (1 << n) - 1
    pairs = [
        (pack_mask(p.left, n), pack_mask(p.right, n)) for p in aut.acceptance.pairs
    ]
    if aut.acceptance.kind is Kind.STREETT:
        target = 0
        for component in streett_good_masks(n, full, adjacency, pairs):
            target |= component
    else:
        target = rabin_cycle_mask(n, full, adjacency, pairs)
    return frozenset(unpack_positions(can_reach_mask(n, target, adjacency)))
