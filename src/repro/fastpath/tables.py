"""Flat transition tables: the dense twin of ``Sequence[Sequence[int]]``.

A complete deterministic transition structure over ``n`` states and ``k``
symbols is one flat list of ``n·k`` small ints, row-major:
``table[state * k + a]`` is the successor of ``state`` on the symbol with
index ``a``.  (A plain list beats ``array('l')`` here: array reads box a
fresh int object per access, while list reads return cached small ints.)
Nondeterministic structures flatten to ``n·k`` bitmasks instead (see
:func:`nfa_masks`).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.fastpath.bitset import bits, mask_of
from repro.words.alphabet import Alphabet


def flat_table(rows: Sequence[Sequence[int]]) -> list[int]:
    """Flatten a row-per-state table into one row-major list."""
    flat: list[int] = []
    for row in rows:
        flat.extend(row)
    return flat


def flat_table_over(
    rows: Sequence[Sequence[int]], own: Alphabet, base: Alphabet
) -> list[int]:
    """Flatten ``rows`` with columns re-ordered to ``base``'s symbol order.

    Product kernels iterate symbols in the *first* automaton's alphabet
    order; each other automaton's table must present its columns in that
    same order (the alphabets contain the same symbols, possibly permuted).
    """
    if own is base or own.symbols == base.symbols:
        return flat_table(rows)
    columns = [own.index(symbol) for symbol in base]
    flat: list[int] = []
    for row in rows:
        flat.extend(row[column] for column in columns)
    return flat


def nfa_masks(nfa) -> tuple[list[int], int, int]:
    """Dense view of an :class:`repro.finitary.nfa.NFA`.

    Returns ``(closure_delta, initial_mask, accept_mask)`` where
    ``closure_delta[s*k + a]`` is the bitmask of
    ``ε-closure(δ(s, symbol_a))`` — so one subset-construction step is a
    single OR-reduction over the member bits of the current subset mask.
    """
    n = nfa.num_states
    k = len(nfa.alphabet)

    # Per-state ε-closure masks (reflexive-transitive, by BFS per state).
    epsilon = [mask_of(nfa.epsilon.get(s, ())) for s in range(n)]
    closure = [0] * n
    for s in range(n):
        seen = 1 << s
        frontier = seen
        while frontier:
            step = 0
            for t in bits(frontier):
                step |= epsilon[t]
            frontier = step & ~seen
            seen |= step
        closure[s] = seen

    closure_delta = [0] * (n * k)
    for (state, symbol), targets in nfa.transitions.items():
        mask = 0
        for target in targets:
            mask |= closure[target]
        closure_delta[state * k + nfa.alphabet.index(symbol)] = mask

    initial_mask = 0
    for s in nfa.initials:
        initial_mask |= closure[s]
    return closure_delta, initial_mask, mask_of(nfa.accepting)


def adjacency_lists(rows: Sequence[Sequence[int]]) -> list[list[int]]:
    """Symbol-erased, deduplicated successor lists (ascending per state)."""
    return [sorted(set(row)) for row in rows]
