"""Dense synchronous products: integer-coded state vectors, flat tables.

The reference route explores products over tuples of ints with per-symbol
``alphabet.index`` lookups and frozenset/tuple hashing.  These kernels
encode a state vector as one integer in mixed radix (``code = p·n₁ + q``
for a pair) and drive the exploration off flat per-automaton tables, so the
inner loop is pure integer arithmetic plus one small-int dict probe.

Exploration order is *identical* to :func:`repro.finitary.dfa.explore` —
same BFS, symbols in the base alphabet's order, states numbered by
discovery — so the produced tables match the reference row for row.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import AutomatonError
from repro.fastpath.tables import flat_table, flat_table_over

_BUILD_LIMIT = 2_000_000

#: Largest code space for which the pair kernel trades the interning dict
#: for a flat slot array (4M entries ≈ 32 MB of small-int pointers).
_FLAT_INDEX_LIMIT = 1 << 22


def explore_pair_dense(
    table_a,
    n_a: int,
    table_b,
    n_b: int,
    k: int,
    initial_a: int,
    initial_b: int,
    *,
    state_limit: int = _BUILD_LIMIT,
) -> tuple[list[list[int]], list[tuple[int, int]]]:
    """BFS product of two flat tables; returns (rows, order-of-pairs).

    The reachable code space ``n_a·n_b`` is usually small enough to intern
    through a flat slot array — one list index per probe instead of hashing
    every successor code — with per-symbol successor codes produced by
    zipping the two table row slices.
    """
    scaled_a = [target * n_b for target in table_a]
    initial = initial_a * n_b + initial_b
    total = n_a * n_b
    if total <= _FLAT_INDEX_LIMIT:
        from repro.fastpath import vector
        from repro.fastpath.config import vector_enabled

        if vector.HAVE_VECTOR and vector_enabled():
            return _explore_pair_vector(
                scaled_a, table_b, n_b, k, initial, total, state_limit
            )
    order: list[int] = [initial]
    rows: list[list[int]] = []
    head = 0
    if total <= _FLAT_INDEX_LIMIT:
        slots = [-1] * total
        slots[initial] = 0
        while head < len(order):
            code = order[head]
            head += 1
            base_a = (code // n_b) * k
            base_b = (code % n_b) * k
            row: list[int] = []
            append = row.append
            for successor_a, successor_b in zip(
                scaled_a[base_a : base_a + k], table_b[base_b : base_b + k]
            ):
                successor = successor_a + successor_b
                slot = slots[successor]
                if slot < 0:
                    if len(order) >= state_limit:
                        raise AutomatonError(
                            f"automaton construction exceeded {state_limit} states"
                        )
                    slot = len(order)
                    slots[successor] = slot
                    order.append(successor)
                append(slot)
            rows.append(row)
        return rows, [divmod(code, n_b) for code in order]

    index: dict[int, int] = {initial: 0}
    while head < len(order):
        code = order[head]
        head += 1
        base_a = (code // n_b) * k
        base_b = (code % n_b) * k
        row = []
        append = row.append
        for successor_a, successor_b in zip(
            scaled_a[base_a : base_a + k], table_b[base_b : base_b + k]
        ):
            successor = successor_a + successor_b
            slot = index.get(successor)
            if slot is None:
                if len(order) >= state_limit:
                    raise AutomatonError(
                        f"automaton construction exceeded {state_limit} states"
                    )
                slot = len(order)
                index[successor] = slot
                order.append(successor)
            append(slot)
        rows.append(row)
    return rows, [divmod(code, n_b) for code in order]


def _explore_pair_vector(
    scaled_a, table_b, n_b: int, k: int, initial: int, total: int, state_limit: int
) -> tuple[list[list[int]], list[tuple[int, int]]]:
    """Level-synchronous BFS of the pair product in numpy.

    Processing one whole frontier at a time is equivalent to the sequential
    queue: the tables are static, frontier states sit in slot order, and new
    codes are numbered by first occurrence in the row-major successor matrix
    — exactly the order the per-state loop would discover them in.
    """
    import numpy as _np

    rows_a = _np.asarray(scaled_a, dtype=_np.int64).reshape(-1, k)
    rows_b = _np.asarray(table_b, dtype=_np.int64).reshape(-1, k)
    slots = _np.full(total, -1, dtype=_np.int64)
    slots[initial] = 0
    count = 1
    frontier = _np.asarray([initial], dtype=_np.int64)
    level_codes = [frontier]
    row_chunks = []
    while frontier.size:
        successors = rows_a[frontier // n_b] + rows_b[frontier % n_b]
        flat = successors.ravel()
        undiscovered = flat[slots[flat] < 0]
        values, first_position = _np.unique(undiscovered, return_index=True)
        fresh = values[_np.argsort(first_position, kind="stable")]
        if count + fresh.size > state_limit:
            raise AutomatonError(
                f"automaton construction exceeded {state_limit} states"
            )
        slots[fresh] = _np.arange(count, count + fresh.size)
        count += fresh.size
        row_chunks.append(slots[successors])
        level_codes.append(fresh)
        frontier = fresh
    rows = _np.concatenate(row_chunks).tolist()
    codes = _np.concatenate(level_codes)
    order = list(zip((codes // n_b).tolist(), (codes % n_b).tolist()))
    return rows, order


def explore_vector_dense(
    tables: Sequence,
    sizes: Sequence[int],
    k: int,
    initials: Sequence[int],
    *,
    state_limit: int = _BUILD_LIMIT,
) -> tuple[list[list[int]], list[tuple[int, ...]]]:
    """BFS product of N flat tables; returns (rows, order-of-vectors)."""
    m = len(tables)
    if m == 2:
        rows, order = explore_pair_dense(
            tables[0], sizes[0], tables[1], sizes[1], k,
            initials[0], initials[1], state_limit=state_limit,
        )
        return rows, order

    # Mixed-radix strides (last component is the fastest-varying digit);
    # pre-scaling each table by its stride makes a successor code a plain
    # sum of m table reads.
    strides = [1] * m
    for i in range(m - 2, -1, -1):
        strides[i] = strides[i + 1] * sizes[i + 1]
    scaled = [
        [target * stride for target in table]
        for table, stride in zip(tables, strides)
    ]

    def encode(vector: Sequence[int]) -> int:
        code = 0
        for size, component in zip(sizes, vector):
            code = code * size + component
        return code

    def decode(code: int) -> tuple[int, ...]:
        components = [0] * m
        for i in range(m - 1, -1, -1):
            code, components[i] = divmod(code, sizes[i])
        return tuple(components)

    component_range = range(m)
    initial = encode(initials)
    index: dict[int, int] = {initial: 0}
    order: list[int] = [initial]
    rows: list[list[int]] = []
    head = 0
    while head < len(order):
        vector = decode(order[head])
        head += 1
        bases = [component * k for component in vector]
        row: list[int] = []
        append = row.append
        for a in range(k):
            successor = 0
            for i in component_range:
                successor += scaled[i][bases[i] + a]
            slot = index.get(successor)
            if slot is None:
                if len(order) >= state_limit:
                    raise AutomatonError(
                        f"automaton construction exceeded {state_limit} states"
                    )
                slot = len(order)
                index[successor] = slot
                order.append(successor)
            append(slot)
        rows.append(row)
    return rows, [decode(code) for code in order]


def dfa_product_dense(dfa_a, dfa_b, combine: Callable[[bool, bool], bool]):
    """The reference ``DFA._product`` over dense tables (same state order)."""
    from repro.finitary.dfa import DFA

    k = len(dfa_a.alphabet)
    rows, order = explore_pair_dense(
        flat_table(dfa_a._delta),  # noqa: SLF001 — fastpath is the in-tree twin
        dfa_a.num_states,
        flat_table_over(dfa_b._delta, dfa_b.alphabet, dfa_a.alphabet),  # noqa: SLF001
        dfa_b.num_states,
        k,
        dfa_a.initial,
        dfa_b.initial,
    )
    accept_a = dfa_a.accepting
    accept_b = dfa_b.accepting
    accepting = [
        i for i, (p, q) in enumerate(order) if combine(p in accept_a, q in accept_b)
    ]
    return DFA.trusted(dfa_a.alphabet, rows, 0, accepting)
