"""Bitset subset construction: NFA → complete DFA, masks as subset keys.

Structurally identical to the reference route
(:meth:`repro.finitary.nfa.NFA.determinize`): the same breadth-first
exploration from the ε-closed initial subset, symbols in alphabet order,
states numbered in discovery order — only the subset representation changes
from ``frozenset`` to ``int`` mask, turning each successor computation into
an OR-reduction and each dedup lookup into an integer dict hit.
"""

from __future__ import annotations

from repro.errors import AutomatonError
from repro.fastpath.tables import nfa_masks


def determinize_dense(nfa, *, state_limit: int = 2_000_000):
    """The subset construction over bitmask subsets (∅ is the trap).

    Returns a :class:`repro.finitary.dfa.DFA` equal, table for table, to
    the reference ``NFA.determinize()`` result.
    """
    from repro.finitary.dfa import DFA

    k = len(nfa.alphabet)
    closure_delta, initial_mask, accept_mask = nfa_masks(nfa)

    index: dict[int, int] = {initial_mask: 0}
    order: list[int] = [initial_mask]
    rows: list[list[int]] = []
    head = 0
    while head < len(order):
        subset = order[head]
        head += 1
        # Decode the member row offsets once, not once per symbol.
        bases: list[int] = []
        members = subset
        while members:
            low = members & -members
            bases.append((low.bit_length() - 1) * k)
            members ^= low
        row: list[int] = []
        append = row.append
        for a in range(k):
            target = 0
            for base in bases:
                target |= closure_delta[base + a]
            slot = index.get(target)
            if slot is None:
                if len(order) >= state_limit:
                    raise AutomatonError(
                        f"automaton construction exceeded {state_limit} states"
                    )
                slot = len(order)
                index[target] = slot
                order.append(target)
            append(slot)
        rows.append(row)

    accepting = [i for i, subset in enumerate(order) if subset & accept_mask]
    return DFA.trusted(nfa.alphabet, rows, 0, accepting)
