"""Fastpath route selection: auto thresholds, forcing, and hit counters.

Three knobs, checked in this order:

1. :func:`forced` — a context manager used by benchmarks and differential
   tests to pin one route for the current process, overriding everything;
2. ``REPRO_FASTPATH`` — ``auto`` (default), ``on`` (always dense) or
   ``off`` (always reference);
3. ``REPRO_FASTPATH_THRESHOLD`` — the work-unit cutoff for ``auto`` mode
   (default :data:`DEFAULT_THRESHOLD`).  "Work units" are
   ``states × alphabet`` for single-automaton kernels and the product of
   the state counts times the alphabet for product kernels — a proxy for
   the table size the kernel will touch.

Every selection decision increments ``fastpath.<kernel>.hit`` or
``fastpath.<kernel>.fallback`` in the global metrics registry, so a
``METRICS.report()`` after any workload shows exactly which kernels ran
dense and which fell back.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.engine.metrics import METRICS
from repro.obs.spans import annotate

MODE_ENV = "REPRO_FASTPATH"
THRESHOLD_ENV = "REPRO_FASTPATH_THRESHOLD"
VECTOR_ENV = "REPRO_FASTPATH_VECTOR"

#: Default ``auto``-mode cutoff, in work units (``states × |Σ|``).  Small
#: enough that the paper-scale examples stay on the audited reference route
#: while anything benchmark-sized goes dense.
DEFAULT_THRESHOLD = 256

_MODES = ("auto", "on", "off")

#: Process-local override installed by :func:`forced`; beats the env var.
_forced_mode: str | None = None


def fastpath_mode() -> str:
    """The effective mode: ``auto``, ``on`` or ``off``."""
    if _forced_mode is not None:
        return _forced_mode
    raw = os.environ.get(MODE_ENV, "auto").strip().lower()
    return raw if raw in _MODES else "auto"


def fastpath_threshold() -> int:
    """The ``auto``-mode work-unit cutoff (≥ 1)."""
    raw = os.environ.get(THRESHOLD_ENV)
    if raw is None:
        return DEFAULT_THRESHOLD
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_THRESHOLD
    return max(1, value)


@contextmanager
def forced(mode: str) -> Iterator[None]:
    """Pin the fastpath mode for a block (``on``/``off``/``auto``).

    Used by the benchmark runner to time both routes and by the qa oracle
    to cross-check them; nests, restoring the previous override on exit.
    """
    if mode not in _MODES:
        raise ValueError(f"fastpath mode must be one of {_MODES}, got {mode!r}")
    global _forced_mode
    previous = _forced_mode
    _forced_mode = mode
    try:
        yield
    finally:
        _forced_mode = previous


def vector_enabled() -> bool:
    """Whether the numpy/scipy SCC backend may be used (when importable).

    ``REPRO_FASTPATH_VECTOR=off`` pins the dense route to the pure-Python
    kernels — the qa oracle uses this to cross-check both backends; any
    other value (or unset) leaves the choice to availability + round size.
    """
    return os.environ.get(VECTOR_ENV, "auto").strip().lower() != "off"


def kernel_selected(kernel: str, work: int) -> bool:
    """Decide the route for one kernel invocation and count the decision."""
    mode = fastpath_mode()
    if mode == "on":
        chosen = True
    elif mode == "off":
        chosen = False
    else:
        chosen = work >= fastpath_threshold()
    METRICS.counter(f"fastpath.{kernel}.{'hit' if chosen else 'fallback'}").inc()
    annotate(f"fastpath.{kernel}.route", "dense" if chosen else "reference")
    return chosen
