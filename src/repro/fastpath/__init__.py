"""Dense, integer-indexed kernels for the automaton hot paths.

Every decision procedure in the paper — the §5.1 class-membership checks,
the Props 5.3/5.4 logic↔automata translations, the linguistic A/E/R/P
constructions — bottoms out in the same few automaton algorithms: subset
construction, DFA minimization, synchronous products, and SCC-based
ω-emptiness.  The reference implementations (``repro.finitary``,
``repro.omega``) work over dict-of-frozenset representations that are easy
to audit but slow; this package re-implements the kernels over *dense*
structures:

* flat transition tables — one flat list of ``n·|Σ|`` integers,
  indexed ``table[state * k + symbol]``;
* bitset state sets — Python ``int`` masks, so union/intersection/
  complement are single big-int operations and membership is a shift;
* an array-based Hopcroft partition-refinement minimizer;
* iterative Tarjan SCC + mask-based Streett/Rabin pruning for emptiness;
* a flat-node, bitmask-labelled Safra determinization twin and an
  interned-signature GPVW tableau twin for the ω-side translations;
* Spot-style alphabet/label compression (``labels``): transition-equal
  symbols are partitioned into classes once per automaton so step-shaped
  kernels pay one successor computation per class, not per symbol;
* a signature-interning quotient-reduction (bisimulation) twin.

The kernels are wired transparently behind the public entry points
(:meth:`repro.finitary.nfa.NFA.determinize`,
:meth:`repro.finitary.dfa.DFA.minimized`, the DFA set-algebra products,
:func:`repro.omega.emptiness.nonempty_states` and
:class:`repro.omega.emptiness.ProductCheck`): above a work threshold the
dense kernel runs, below it the reference route runs, and the
``REPRO_FASTPATH`` environment variable (or :func:`fastpath.config.forced`)
forces either path.  Selection is instrumented through
``repro.engine.metrics`` as ``fastpath.<kernel>.hit`` / ``.fallback``
counters.

Correctness contract: the subset-construction, minimization and product
kernels return automata *structurally identical* to the reference route
(same BFS state numbering, same tables); the emptiness kernels return the
same state *sets* (witness components may be enumerated in a different
order).  The ``qa`` differential oracles cross-check every kernel against
the reference on each fuzz run.
"""

from __future__ import annotations

from repro.fastpath.config import (
    DEFAULT_THRESHOLD,
    fastpath_mode,
    fastpath_threshold,
    forced,
    kernel_selected,
)
from repro.fastpath.gpvw import enumerate_dense, valuation_partition
from repro.fastpath.labels import (
    LabelPartition,
    compress_det,
    det_partition,
    ensure_alphabet,
    expand_det,
    nba_partition,
)
from repro.fastpath.minimize import minimized_dense
from repro.fastpath.product import (
    dfa_product_dense,
    explore_pair_dense,
    explore_vector_dense,
)
from repro.fastpath.reduce import quotient_blocks_dense
from repro.fastpath.safra import determinize_dense as safra_determinize_dense
from repro.fastpath.scc import (
    nonempty_states_dense,
    streett_good_masks,
)
from repro.fastpath.subset import determinize_dense

__all__ = [
    "DEFAULT_THRESHOLD",
    "LabelPartition",
    "compress_det",
    "det_partition",
    "determinize_dense",
    "dfa_product_dense",
    "ensure_alphabet",
    "enumerate_dense",
    "expand_det",
    "explore_pair_dense",
    "explore_vector_dense",
    "fastpath_mode",
    "fastpath_threshold",
    "forced",
    "kernel_selected",
    "minimized_dense",
    "nba_partition",
    "nonempty_states_dense",
    "quotient_blocks_dense",
    "safra_determinize_dense",
    "streett_good_masks",
    "valuation_partition",
]
