"""Vectorized SCC/BFS backends for the ω-emptiness kernels.

The pure-Python kernels in :mod:`repro.fastpath.scc` bottom out at the cost
of one interpreted loop iteration per edge visit.  When numpy + scipy are
importable (they are optional — nothing in this package *requires* them),
the large SCC and closure passes can instead run through
``scipy.sparse.csgraph``: ``connected_components(connection="strong")`` is
a C implementation of Pearce's SCC algorithm, and ``breadth_first_order``
is a C BFS.  The per-pair Streett/Rabin checks then become ``bincount``
reductions over the component labelling.

Semantics are identical to the pure kernels — SCC decompositions are
unique, so the *set* of good component masks, the closures, and the
verdicts all match bit for bit; only the enumeration order of components
can differ, which the dense route already documents as acceptable.

Every entry point assumes a rectangular adjacency (every row the same
length, as transition tables are); callers keep the pure route for anything
else.  ``HAVE_VECTOR`` is False when the imports fail and every caller must
check it first.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised implicitly by every vector test
    import numpy as _np
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import breadth_first_order as _breadth_first_order
    from scipy.sparse.csgraph import connected_components as _connected_components
except ImportError:  # pragma: no cover - container without numpy/scipy
    _np = None

HAVE_VECTOR = _np is not None


def bools_from_mask(mask: int, num_states: int):
    """A boolean numpy array with ``arr[i] == bool(mask >> i & 1)``."""
    raw = mask.to_bytes((num_states + 7) // 8 or 1, "little")
    return _np.unpackbits(
        _np.frombuffer(raw, dtype=_np.uint8), count=num_states, bitorder="little"
    ).astype(bool)


def mask_from_states(states, num_states: int) -> int:
    """The int mask of a numpy array of state ids (inverse of flatnonzero)."""
    flags = _np.zeros(num_states, dtype=_np.uint8)
    flags[states] = 1
    return int.from_bytes(_np.packbits(flags, bitorder="little").tobytes(), "little")


def as_state_array(states):
    """A list (or array) of state ids as an int64 numpy array."""
    return _np.asarray(states, dtype=_np.int64)


def delta_array(adjacency):
    """The adjacency as an ``(n, k)`` int array, or None if it is ragged."""
    try:
        delta = _np.asarray(adjacency, dtype=_np.int64)
    except (ValueError, TypeError):
        return None
    return delta if delta.ndim == 2 else None


def strong_components(delta, candidate):
    """SCC labelling of the subgraph of ``delta`` induced by ``candidate``.

    Returns ``(labels, n_comp, nontrivial)`` where ``labels`` maps local
    positions (indices into ``candidate``) to component ids and
    ``nontrivial[c]`` is True when component ``c`` carries a cycle (more
    than one member, or a singleton with a self-loop).
    """
    m = candidate.size
    new_id = _np.full(delta.shape[0], -1, dtype=_np.int64)
    new_id[candidate] = _np.arange(m)
    sub = new_id[delta[candidate]]  # (m, k); -1 marks edges leaving the subgraph
    keep = sub >= 0
    # The edge list is already row-sorted (row i's edges are row i of ``sub``),
    # so the CSR arrays can be assembled directly — no COO round trip.
    indptr = _np.zeros(m + 1, dtype=_np.int64)
    _np.cumsum(keep.sum(axis=1), out=indptr[1:])
    indices = sub.ravel()[keep.ravel()]
    graph = _csr_matrix(
        (_np.ones(indices.size, dtype=_np.int32), indices, indptr), shape=(m, m)
    )
    n_comp, labels = _connected_components(
        graph, directed=True, connection="strong"
    )
    nontrivial = _np.bincount(labels, minlength=n_comp) > 1
    selfloop = (sub == _np.arange(m)[:, None]).any(axis=1)
    nontrivial[labels[selfloop]] = True
    return labels, n_comp, nontrivial


def streett_round(delta, candidate, pair_bools, num_states):
    """One pruning round of the Streett fixpoint, vectorized.

    ``candidate`` is a numpy array of state ids; ``pair_bools`` the Streett
    pairs as ``(left, right)`` boolean arrays over all states.  Returns
    ``(good_masks, next_candidates)``: masks of the good components found
    this round and the restricted member arrays still to be pruned —
    exactly what one iteration of the pure pending-loop produces.
    """
    labels, n_comp, nontrivial = strong_components(delta, candidate)
    violated = _np.zeros(n_comp, dtype=bool)
    keep_state = _np.ones(candidate.size, dtype=bool)
    for left, right in pair_bools:
        has_left = _np.bincount(labels[left[candidate]], minlength=n_comp) > 0
        not_right = ~right[candidate]
        has_outside = _np.bincount(labels[not_right], minlength=n_comp) > 0
        bad = has_outside & ~has_left
        violated |= bad
        keep_state &= ~(bad[labels] & not_right)

    order = _np.argsort(labels, kind="stable")
    bounds = _np.searchsorted(labels[order], _np.arange(n_comp + 1))
    good_masks: list[int] = []
    next_candidates = []
    for comp in _np.flatnonzero(nontrivial):
        members = order[bounds[comp] : bounds[comp + 1]]
        if violated[comp]:
            restricted = members[keep_state[members]]
            if restricted.size:
                next_candidates.append(candidate[restricted])
        else:
            good_masks.append(mask_from_states(candidate[members], num_states))
    return good_masks, next_candidates


def rabin_pair_mask(delta, candidate, left, num_states) -> int:
    """States of ``candidate`` on a cycle meeting ``left`` (a bool array)."""
    labels, n_comp, nontrivial = strong_components(delta, candidate)
    hit = _np.bincount(labels[left[candidate]], minlength=n_comp) > 0
    take = (nontrivial & hit)[labels]
    if not take.any():
        return 0
    return mask_from_states(candidate[take], num_states)


def forward_closure_mask(delta, initial: int, num_states: int) -> int:
    """Forward-reachable set from ``initial``, via one C breadth-first pass."""
    k = delta.shape[1]
    indices = delta.ravel()
    graph = _csr_matrix(
        (
            _np.ones(indices.size, dtype=_np.int32),
            indices,
            _np.arange(num_states + 1, dtype=_np.int64) * k,
        ),
        shape=(num_states, num_states),
    )
    reached = _breadth_first_order(
        graph, initial, directed=True, return_predecessors=False
    )
    return mask_from_states(reached, num_states)


def backward_closure_mask(delta, target_mask: int, num_states: int) -> int:
    """States that can reach ``target_mask``: BFS on the reversed graph from
    a virtual super-source wired to every target state."""
    targets = _np.flatnonzero(bools_from_mask(target_mask, num_states))
    if targets.size == 0:
        return 0
    k = delta.shape[1]
    rows = _np.concatenate(
        [delta.ravel(), _np.full(targets.size, num_states, dtype=_np.int64)]
    )
    cols = _np.concatenate(
        [_np.repeat(_np.arange(num_states), k), targets]
    )
    graph = _csr_matrix(
        (_np.ones(rows.size, dtype=_np.int32), (rows, cols)),
        shape=(num_states + 1, num_states + 1),
    )
    reached = _breadth_first_order(
        graph, num_states, directed=True, return_predecessors=False
    )
    return mask_from_states(reached[reached < num_states], num_states)
