"""Dense GPVW enumeration: valuation-classed symbols, memoized closures.

The reference route (:func:`repro.logic.translate._enumerate_reference`)
re-runs the past tester and re-filters the tableau candidates for every
(state, symbol) pair.  Both computations depend on the symbol only through
the valuation of a small set of *relevant* propositions — the props named
by tableau literals plus the props read by the past tester — so symbols
with equal valuations are interchangeable.  This twin:

* partitions the alphabet by relevant-prop valuation once
  (:class:`repro.fastpath.labels.LabelPartition`), stepping each state once
  per class instead of once per symbol;
* memoizes ``PastTester.advance`` per (class, memory) and the filtered
  candidate tuple per (tableau node, class, memory) across the whole
  enumeration — set-free bookkeeping instead of per-step set churn.

Parity contract (enforced by the qa ``fastpath`` oracle and
``tests/test_fastpath_safra_gpvw.py``): the produced state order,
transition relation, and accepting set are *bit-identical* to the
reference.  Classes are numbered by first symbol occurrence, and targets
are interned at each class's first symbol, so the breadth-first discovery
order is exactly the per-symbol order.
"""

from __future__ import annotations

from repro.fastpath.labels import LabelPartition, ensure_alphabet
from repro.logic.ast import Formula, Not, Prop
from repro.logic.semantics import PastTester, prop_holds
from repro.words.alphabet import Alphabet, Symbol

#: cache-miss sentinel (``None`` marks a computed-empty row).
_MISS = object()


def _relevant_props(literals_of, tester: PastTester, past_atoms) -> list[str]:
    """Prop names whose valuation can influence a step: literal props that
    are not past atoms (those route through the tester), plus every prop the
    tester itself reads."""
    names: set[str] = set()
    for literals in literals_of:
        for literal in literals:
            target = literal.operand if isinstance(literal, Not) else literal
            if isinstance(target, Prop) and target.name not in past_atoms:
                names.add(target.name)
    for node in tester.pure_past:
        if isinstance(node, Prop):
            names.add(node.name)
    return sorted(names)


def valuation_partition(
    alphabet: Alphabet, names: list[str]
) -> LabelPartition:
    """Partition symbols by their valuation over ``names``."""
    columns = [
        tuple(prop_holds(name, symbol) for name in names) for symbol in alphabet
    ]
    return LabelPartition.from_columns(alphabet, columns)


def enumerate_dense(
    alphabet: Alphabet,
    entry_points: list[int],
    successors_of: dict[int, list[int]],
    literals_of: list[list[Formula]],
    acceptance_sets,
    tester: PastTester,
    past_atoms: dict[str, Formula],
) -> tuple[list[object], dict[tuple[int, Symbol], frozenset[int]], list[int]]:
    """Drop-in twin of ``_enumerate_reference`` over valuation classes."""
    from repro.logic.translate import _literal_satisfied

    alphabet = ensure_alphabet(alphabet)
    k = len(acceptance_sets)
    partition = valuation_partition(
        alphabet, _relevant_props(literals_of, tester, past_atoms)
    )
    class_of = partition.class_of
    representatives = partition.representatives()
    symbols = alphabet.symbols

    state_index: dict[object, int] = {"nba-init": 0}
    order: list[object] = ["nba-init"]
    transitions: dict[tuple[int, Symbol], frozenset[int]] = {}
    #: (class, memory) → (new memory, past-atom values).
    advance_cache: dict = {}
    #: (tableau node | -1, class, memory) → passing candidate positions.
    candidate_cache: dict = {}

    head = 0
    while head < len(order):
        state = order[head]
        source = head
        head += 1
        if state == "nba-init":
            memory, owner = PastTester.START, -1
            candidates = entry_points
            new_counter = 0
        else:
            owner, memory, counter = state
            candidates = successors_of[owner]
            new_counter = (
                (counter + 1) % k if owner in acceptance_sets[counter] else counter
            )
        per_class: dict = {}
        for position, symbol in enumerate(symbols):
            cls = class_of[position]
            row = per_class.get(cls, _MISS)
            if row is _MISS:
                advance_key = (cls, memory)
                advanced = advance_cache.get(advance_key)
                if advanced is None:
                    new_memory, values = tester.advance(memory, representatives[cls])
                    advanced = (
                        new_memory,
                        {name: values[past] for name, past in past_atoms.items()},
                    )
                    advance_cache[advance_key] = advanced
                new_memory, past_values = advanced
                candidate_key = (owner, cls, memory)
                passing = candidate_cache.get(candidate_key)
                if passing is None:
                    representative = representatives[cls]
                    passing = tuple(
                        target_position
                        for target_position in candidates
                        if all(
                            _literal_satisfied(lit, representative, past_values)
                            for lit in literals_of[target_position]
                        )
                    )
                    candidate_cache[candidate_key] = passing
                targets = []
                for target_position in passing:
                    target = (target_position, new_memory, new_counter)
                    slot = state_index.get(target)
                    if slot is None:
                        slot = len(order)
                        state_index[target] = slot
                        order.append(target)
                    targets.append(slot)
                row = frozenset(targets) if targets else None
                per_class[cls] = row
            if row is not None:
                transitions[(source, symbol)] = row

    accepting = [
        index
        for index, state in enumerate(order)
        if state != "nba-init" and state[2] == 0 and state[0] in acceptance_sets[0]
    ]
    return order, transitions, accepting
