"""Array-based Hopcroft partition refinement for complete DFAs.

The reference :meth:`repro.finitary.dfa.DFA.minimized` runs Moore
refinement with per-state signature dicts and rebuilds through an ``O(n)``
representative scan per block-symbol — ``O(n²k)`` overall.  This kernel
runs Hopcroft's ``O(nk log n)`` algorithm over bitmask blocks with
precomputed preimage masks, then renumbers blocks breadth-first from the
initial block, which is exactly the reference's canonical numbering: both
routes return *structurally identical* minimal DFAs.
"""

from __future__ import annotations

from repro.fastpath.bitset import bits, mask_of


def hopcroft_blocks(
    num_states: int, k: int, table, accepting_mask: int
) -> list[int]:
    """The coarsest Myhill-Nerode partition, as a list of block masks.

    ``table`` is a flat row-major transition table over ``num_states``
    states already restricted to the reachable part; ``accepting_mask`` is
    the bitmask of accepting states.
    """
    full = (1 << num_states) - 1
    accepting = accepting_mask & full
    rejecting = full & ~accepting
    blocks = [mask for mask in (accepting, rejecting) if mask]
    if len(blocks) < 2:
        return blocks

    inverse = [[0] * num_states for _ in range(k)]
    for state in range(num_states):
        base = state * k
        bit = 1 << state
        for a in range(k):
            inverse[a][table[base + a]] |= bit

    block_of = [0] * num_states
    for block_id, mask in enumerate(blocks):
        for state in bits(mask):
            block_of[state] = block_id

    # The worklist holds block *ids*; a splitter is the snapshot of the
    # block's mask at pop time (splitting by the old set is the classic
    # Hopcroft move and stays correct even if the block splits later).
    worklist = {0 if blocks[0].bit_count() <= blocks[1].bit_count() else 1}
    while worklist:
        splitter = blocks[worklist.pop()]
        for a in range(k):
            inv = inverse[a]
            preimage = 0
            members = splitter
            while members:
                low = members & -members
                preimage |= inv[low.bit_length() - 1]
                members ^= low
            if not preimage:
                continue
            # Only blocks actually containing preimage states are touched —
            # found by walking the preimage bits, never the whole partition.
            touched: dict[int, int] = {}
            members = preimage
            while members:
                low = members & -members
                block_id = block_of[low.bit_length() - 1]
                touched[block_id] = touched.get(block_id, 0) | low
                members ^= low
            for block_id, inside in touched.items():
                outside = blocks[block_id] & ~inside
                if not outside:
                    continue
                new_id = len(blocks)
                blocks[block_id] = outside
                blocks.append(inside)
                for state in bits(inside):
                    block_of[state] = new_id
                if block_id in worklist:
                    worklist.add(new_id)
                else:
                    worklist.add(
                        new_id
                        if inside.bit_count() <= outside.bit_count()
                        else block_id
                    )
    return blocks


def minimized_dense(dfa):
    """The canonical minimal complete DFA, via Hopcroft over bitmask blocks.

    Drops unreachable states first; the result is structurally identical to
    the reference ``DFA.minimized()`` (same canonical BFS numbering).
    """
    from repro.finitary.dfa import DFA

    k = len(dfa.alphabet)
    delta = dfa._delta  # noqa: SLF001 — fastpath is the in-tree twin

    # Reachable restriction, remapped to dense local ids in ascending order
    # (mirrors the reference's ``sorted(reachable_states())``).
    seen = 1 << dfa.initial
    frontier = [dfa.initial]
    while frontier:
        next_frontier = []
        for state in frontier:
            for target in delta[state]:
                bit = 1 << target
                if not seen & bit:
                    seen |= bit
                    next_frontier.append(target)
        frontier = next_frontier
    reachable = list(bits(seen))
    local = {state: i for i, state in enumerate(reachable)}
    r = len(reachable)
    table = [0] * (r * k)
    for i, state in enumerate(reachable):
        row = delta[state]
        base = i * k
        for a in range(k):
            table[base + a] = local[row[a]]
    accepting_mask = mask_of(local[s] for s in dfa.accepting if s in local)

    partition = hopcroft_blocks(r, k, table, accepting_mask)
    block_of = [0] * r
    for block_id, mask in enumerate(partition):
        for state in bits(mask):
            block_of[state] = block_id

    # Canonical rebuild: BFS over blocks from the initial block, symbols in
    # alphabet order — the numbering ``DFA.build`` would produce.
    initial_block = block_of[local[dfa.initial]]
    index = {initial_block: 0}
    order = [initial_block]
    rows: list[list[int]] = []
    head = 0
    while head < len(order):
        block = order[head]
        head += 1
        representative = (partition[block] & -partition[block]).bit_length() - 1
        base = representative * k
        row = []
        for a in range(k):
            successor = block_of[table[base + a]]
            slot = index.get(successor)
            if slot is None:
                slot = len(order)
                index[successor] = slot
                order.append(successor)
            row.append(slot)
        rows.append(row)
    accepting = [
        slot for block, slot in index.items() if partition[block] & accepting_mask
    ]
    return DFA.trusted(dfa.alphabet, rows, 0, accepting)
