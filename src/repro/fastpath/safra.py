"""Dense Safra determinization: flat mask-labelled trees, compressed columns.

The reference route (:mod:`repro.omega.safra`) thaws every macrostate into a
tree of dataclass nodes carrying ``set[int]`` labels, recomputes the NBA
powerset image with frozenset unions, and re-freezes — per state, *per
symbol*.  This twin keeps the identical algorithm but changes the
representation and the stepping granularity:

* node labels are ``int`` bitmasks; the powerset update is an OR-reduction
  over precomputed per-(state, class) successor masks, and the horizontal /
  vertical merges are single mask operations per node;
* trees are mutable ``[name, mask, children]`` lists while stepping and
  intern to flat nested-tuple signatures between steps — no dataclass or
  frozenset churn;
* symbols are compressed through :func:`repro.fastpath.labels.nba_partition`
  first, so each macrostate is stepped **once per label class** instead of
  once per symbol; rows re-expand through the partition.

Parity contract (enforced by the qa ``fastpath`` oracle and
``tests/test_fastpath_safra_gpvw.py``): the produced deterministic Rabin
automaton is *bit-identical* to the reference — same macrostate discovery
order (class order preserves per-symbol first occurrences), same node
names (the fresh-smallest-free-name scan is replicated exactly), hence the
same table, the same Rabin pairs in the same order.
"""

from __future__ import annotations

from repro.errors import AutomatonError
from repro.fastpath.labels import nba_partition
from repro.omega.acceptance import Acceptance, Kind, Pair
from repro.omega.automaton import DetAutomaton

_BUILD_LIMIT = 2_000_000

#: The dead macrostate (empty tree) — reference ``(None, frozenset())``.
_DEAD = (None, 0)


def _thaw(signature):
    """Signature ``(name, mask, (children…))`` → mutable ``[name, mask, [children…]]``."""
    name, mask, children = signature
    return [name, mask, [_thaw(child) for child in children]]


def _freeze(node):
    name, mask, children = node
    return (name, mask, tuple(_freeze(child) for child in children))


def _name_mask(signature) -> int:
    name, _mask, children = signature
    result = 1 << name
    for child in children:
        result |= _name_mask(child)
    return result


def _image(label: int, chunk: dict, post, cls: int, num_classes: int) -> int:
    """OR-reduction of per-state successor masks over ``label``'s members,
    byte-chunked: each (byte offset, byte value) pair of the label resolves
    through a lazily-built 256-entry table, so dense labels cost one dict
    probe per 8 states instead of one table read per state."""
    image = 0
    offset = 0
    while label:
        byte = label & 0xFF
        if byte:
            key = (offset << 8) | byte
            part = chunk.get(key)
            if part is None:
                part = 0
                bits = byte
                base = offset << 3
                while bits:
                    low = bits & -bits
                    part |= post[(base + low.bit_length() - 1) * num_classes + cls]
                    bits ^= low
                chunk[key] = part
            image |= part
        label >>= 8
        offset += 1
    return image


def _remove(node: list, mask: int) -> None:
    node[1] &= ~mask
    for child in node[2]:
        _remove(child, mask)


def _horizontal(node: list) -> None:
    seen = 0
    for child in node[2]:
        if seen:
            _remove(child, seen)
        seen |= child[1]
    for child in node[2]:
        _horizontal(child)


def _prune(node: list) -> None:
    node[2] = [child for child in node[2] if child[1]]
    for child in node[2]:
        _prune(child)


def _vertical(node: list, marked: int) -> int:
    children = node[2]
    union = 0
    for child in children:
        marked = _vertical(child, marked)
        union |= child[1]
    if children and union == node[1]:
        node[2] = []
        marked |= 1 << node[0]
    return marked


def _step(signature, cls: int, post, num_classes: int, accept_mask: int, chunk: dict, cache: dict):
    """One Safra transition on label class ``cls``; mirrors the reference
    ``_safra_step`` move for move.  Returns ``(signature, marked_mask)``."""
    root = _thaw(signature)

    preorder: list[list] = []
    stack = [root]
    while stack:
        node = stack.pop()
        preorder.append(node)
        stack.extend(reversed(node[2]))

    # Step 2: branch on accepting intersections.  The fresh-name scan is the
    # reference's exactly: one cursor over the set of used names, never
    # reset within a step; new children are not themselves branched.
    used = {node[0] for node in preorder}
    next_name = 0
    sprouted: list[list] = []
    for node in preorder:
        hit = node[1] & accept_mask
        if hit:
            while next_name in used:
                next_name += 1
            used.add(next_name)
            child = [next_name, hit, []]
            node[2].append(child)
            sprouted.append(child)

    # Step 3: powerset update of every label (new children included).  Node
    # labels recur heavily across macrostates, so whole-label images are
    # cached per class; misses fall back to the byte-chunked reduction.
    for node in preorder:
        label = node[1]
        image = cache.get(label)
        if image is None:
            image = _image(label, chunk, post, cls, num_classes)
            cache[label] = image
        node[1] = image
    for node in sprouted:
        label = node[1]
        image = cache.get(label)
        if image is None:
            image = _image(label, chunk, post, cls, num_classes)
            cache[label] = image
        node[1] = image

    # Step 4: horizontal merge — keep each state only in the oldest sibling.
    _horizontal(root)

    # Step 5: remove empty nodes (subtrees die with them).
    _prune(root)
    if not root[1]:
        return _DEAD

    # Step 6: vertical merge and marking.
    marked = _vertical(root, 0)
    return _freeze(root), marked


def determinize_dense(nba, *, state_limit: int = _BUILD_LIMIT) -> DetAutomaton:
    """Safra's construction over masks and compressed labels.

    Returns a deterministic Rabin automaton bit-identical to the reference
    :func:`repro.omega.safra.determinize` result.
    """
    partition = nba_partition(nba)
    num_classes = partition.num_classes
    class_of = partition.class_of
    representatives = partition.representatives()
    n = nba.num_states

    # post[s·C + c]: bitmask of the successors of ``s`` on class ``c``.
    post = [0] * (n * num_classes)
    for cls, symbol in enumerate(representatives):
        for state in range(n):
            mask = 0
            for target in nba.transitions.get((state, symbol), ()):
                mask |= 1 << target
            post[state * num_classes + cls] = mask

    accept_mask = 0
    for state in nba.accepting:
        accept_mask |= 1 << state

    if nba.initials:
        initial_mask = 0
        for state in nba.initials:
            initial_mask |= 1 << state
        initial = ((0, initial_mask, ()), 0)
    else:
        initial = _DEAD

    index: dict[tuple, int] = {initial: 0}
    order: list[tuple] = [initial]
    rows: list[list[int]] = []
    chunks = [dict() for _ in range(num_classes)]
    caches = [dict() for _ in range(num_classes)]
    head = 0
    while head < len(order):
        tree, _marks = order[head]
        head += 1
        by_class: list[int] = []
        for cls in range(num_classes):
            successor = _DEAD if tree is None else _step(
                tree, cls, post, num_classes, accept_mask, chunks[cls], caches[cls]
            )
            slot = index.get(successor)
            if slot is None:
                if len(order) >= state_limit:
                    raise AutomatonError(
                        f"automaton construction exceeded {state_limit} states"
                    )
                slot = len(order)
                index[successor] = slot
                order.append(successor)
            by_class.append(slot)
        rows.append([by_class[c] for c in class_of])

    # Rabin pairs, one per node name, exactly as the reference builds them.
    name_masks = [0 if tree is None else _name_mask(tree) for tree, _m in order]
    all_names = 0
    for (tree, marks), names in zip(order, name_masks):
        all_names |= names | marks

    pairs = []
    name = 0
    remaining = all_names
    while remaining:
        if remaining & 1:
            bit = 1 << name
            marked_states = frozenset(
                i for i, (_t, marks) in enumerate(order) if marks & bit
            )
            if marked_states:
                absent_states = frozenset(
                    i for i, names in enumerate(name_masks) if not names & bit
                )
                pairs.append(Pair(marked_states, absent_states))
        remaining >>= 1
        name += 1
    if not pairs:
        pairs.append(Pair(frozenset(), frozenset()))  # empty language
    return DetAutomaton.trusted(
        nba.alphabet, rows, 0, Acceptance(Kind.RABIN, tuple(pairs))
    )
