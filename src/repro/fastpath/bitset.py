"""State sets as Python ``int`` bitmasks.

A set of states ``S ⊆ {0..n-1}`` is the integer ``Σ_{s∈S} 2^s``.  Union,
intersection and difference become single big-int operations executed in C,
membership is a shift-and-test, and the masks double as perfect dict keys —
the representation every dense kernel in this package shares.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


def mask_of(states: Iterable[int]) -> int:
    """The bitmask of an iterable of state indices."""
    mask = 0
    for state in states:
        mask |= 1 << state
    return mask


def bits(mask: int) -> Iterator[int]:
    """The set bits of ``mask``, ascending (lowest-bit extraction)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bit_list(mask: int) -> list[int]:
    """The set bits of ``mask`` as an ascending list."""
    return list(bits(mask))


def to_frozenset(mask: int) -> frozenset[int]:
    """The bitmask decoded back into a ``frozenset`` of state indices."""
    return frozenset(bits(mask))


def popcount(mask: int) -> int:
    return mask.bit_count()


# Byte-level pack/unpack: ``mask |= 1 << s`` copies the whole big int per
# member (O(|S|·n/64) total), while going through a little-endian byte
# buffer costs O(|S| + n/8) — the difference dominates SCC-sized sets.

_BYTE_POSITIONS = tuple(
    tuple(bit for bit in range(8) if byte >> bit & 1) for byte in range(256)
)


def pack_mask(states: Iterable[int], num_states: int) -> int:
    """The bitmask of ``states`` built through one byte buffer."""
    buffer = bytearray(num_states // 8 + 1)
    for state in states:
        buffer[state >> 3] |= 1 << (state & 7)
    return int.from_bytes(buffer, "little")


def unpack_positions(mask: int) -> list[int]:
    """The set bits of ``mask``, ascending, via byte-table lookup."""
    positions: list[int] = []
    extend = positions.extend
    base = 0
    for byte in mask.to_bytes((mask.bit_length() + 7) // 8 or 1, "little"):
        if byte:
            if byte == 255:
                extend(range(base, base + 8))
            else:
                extend(base + bit for bit in _BYTE_POSITIONS[byte])
        base += 8
    return positions
