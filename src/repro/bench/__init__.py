"""Benchmark harness for the dense fastpath kernels and the tracing layer.

``python -m repro bench`` runs :func:`repro.bench.fastpath.run_benchmarks`
and writes ``BENCH_fastpath.json``; the CI ``bench-smoke`` job re-runs a
quick variant and gates on :func:`repro.bench.fastpath.regressions_against`.
``python -m repro bench --obs`` runs
:func:`repro.bench.obs.run_overhead_benchmarks` over the same workloads and
writes ``BENCH_obs.json``, gating tracing overhead below
:data:`repro.bench.obs.MAX_OVERHEAD`.
``python -m repro bench --fleet`` runs
:func:`repro.bench.fleet.run_fleet_benchmarks` (vectorized fleet vs scalar
monitor loop, streams·events/sec) and writes ``BENCH_fleet.json``; the CI
``fleet-smoke`` job gates with
:func:`repro.bench.fleet.regressions_against`.
"""

from repro.bench.fastpath import (
    BENCHMARKS,
    KernelResult,
    regressions_against,
    render_table,
    report_json,
    run_benchmarks,
)
from repro.bench.fleet import FleetResult, run_fleet_benchmarks
from repro.bench.obs import (
    MAX_OVERHEAD,
    ObsResult,
    overhead_failures,
    run_overhead_benchmarks,
)

__all__ = [
    "BENCHMARKS",
    "FleetResult",
    "KernelResult",
    "MAX_OVERHEAD",
    "ObsResult",
    "overhead_failures",
    "run_fleet_benchmarks",
    "regressions_against",
    "render_table",
    "report_json",
    "run_benchmarks",
    "run_overhead_benchmarks",
]
