"""Benchmark harness for the dense fastpath kernels.

``python -m repro bench`` runs :func:`repro.bench.fastpath.run_benchmarks`
and writes ``BENCH_fastpath.json``; the CI ``bench-smoke`` job re-runs a
quick variant and gates on :func:`repro.bench.fastpath.regressions_against`.
"""

from repro.bench.fastpath import (
    BENCHMARKS,
    KernelResult,
    regressions_against,
    render_table,
    report_json,
    run_benchmarks,
)

__all__ = [
    "BENCHMARKS",
    "KernelResult",
    "regressions_against",
    "render_table",
    "report_json",
    "run_benchmarks",
]
