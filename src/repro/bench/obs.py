"""Tracing overhead benchmark: the same kernels, spans off vs spans on.

The observability layer promises that instrumentation is effectively free:
spans wrap *operations* (one determinization, one emptiness check), never
per-state work, and the disabled path costs a single flag check.  This
module proves the promise with numbers, reusing the fastpath benchmark
workloads (:data:`repro.bench.fastpath.BENCHMARKS`) so the measured code is
exactly the code users run.

Methodology mirrors :mod:`repro.bench.fastpath`, with one addition — a
built-in null test:

* every iteration times three interleaved regions — untraced, traced,
  untraced again — with ``gc.collect()`` before each, so one
  configuration's garbage is never billed to the other;
* per-configuration time is the minimum over ``--repeat`` iterations;
  the spread between the two *untraced* minima is an A/A measurement of
  the machine's own noise (identical code on both sides), reported as
  ``noise`` next to each overhead figure;
* both configurations pin the dense route (``forced("on")``) — route
  selection noise must not masquerade as tracing overhead;
* the tracer is cleared between traced runs so span accumulation cannot
  grow the buffer across repeats.

The gate (:func:`overhead_failures`) fails a kernel only when its traced
slowdown exceeds the budget *plus* the run's own null-test spread: a real
span cost shows up on the traced side only, while frequency wander on a
shared runner moves both untraced regions just as far apart.

The JSON report (``BENCH_obs.json`` at the repo root) is the committed
baseline; the CI ``obs-smoke`` job re-runs a quick variant and gates on
:func:`overhead_failures`.
"""

from __future__ import annotations

import gc
import json
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.bench.fastpath import BENCHMARKS
from repro.fastpath.config import forced
from repro.obs.spans import TRACER

SCHEMA = "repro-bench-obs/1"

#: The acceptance gate: tracing may cost at most this fraction on top of
#: the untraced time for every benchmark kernel.
MAX_OVERHEAD = 0.05


@dataclass(frozen=True)
class ObsResult:
    """One kernel's interleaved timing: tracing disabled vs enabled."""

    kernel: str
    workload: str
    untraced_ms: float
    traced_ms: float
    spans: int
    noise: float = 0.0

    @property
    def overhead(self) -> float:
        """Fractional slowdown from tracing (0.02 = 2% slower)."""
        if not self.untraced_ms:
            return 0.0
        return self.traced_ms / self.untraced_ms - 1.0

    def as_json(self) -> dict:
        return {
            "workload": self.workload,
            "untraced_ms": round(self.untraced_ms, 3),
            "traced_ms": round(self.traced_ms, 3),
            "overhead": round(self.overhead, 4),
            "noise": round(self.noise, 4),
            "spans": self.spans,
        }


#: Target duration of one timed region.  The span cost being measured is
#: microseconds; timing single ~10ms runs would let millisecond-scale
#: scheduler noise swamp it, so short workloads are batched up to this.
_REGION_SECONDS = 0.1


def _time_region(workload, inner: int) -> float:
    gc.collect()
    start = time.perf_counter()
    for _ in range(inner):
        workload.run()
    return (time.perf_counter() - start) / inner


def _time_interleaved(
    workload, repeat: int
) -> tuple[float, float, int, float]:
    """Best-of-``repeat`` per configuration, alternating region to region.

    Each timed region executes the workload ``inner`` times back-to-back
    (sized from an untimed calibration run to reach ``_REGION_SECONDS``)
    and bills the region's mean to one run — minima over ``repeat``
    regions then bound the noise from above on both sides identically.

    Every iteration times untraced/traced/untraced, and the relative gap
    between the minima of the two untraced series — identical code,
    interleaved identically with the traced regions — comes back as the
    run's A/A noise estimate.
    """
    best_a = best_b = best_on = float("inf")
    spans = 0
    with forced("on"):
        start = time.perf_counter()
        workload.run()  # warmup doubles as the inner-batch calibration
        single = time.perf_counter() - start
        inner = max(1, round(_REGION_SECONDS / max(single, 1e-9)))
        for _ in range(repeat):
            TRACER.disable()
            best_a = min(best_a, _time_region(workload, inner))

            TRACER.enable()
            TRACER.clear()
            best_on = min(best_on, _time_region(workload, inner))
            spans = len(TRACER.finished()) // inner

            TRACER.disable()
            best_b = min(best_b, _time_region(workload, inner))
    TRACER.disable()
    TRACER.clear()
    noise = abs(best_a - best_b) / min(best_a, best_b)
    return min(best_a, best_b) * 1e3, best_on * 1e3, spans, noise


def run_overhead_benchmarks(
    *, quick: bool = False, repeat: int = 5, kernels: Sequence[str] | None = None
) -> list[ObsResult]:
    """Time every selected kernel with tracing off and on."""
    selected = list(kernels) if kernels else list(BENCHMARKS)
    results = []
    for name in selected:
        workload = BENCHMARKS[name](quick)
        untraced_ms, traced_ms, spans, noise = _time_interleaved(workload, repeat)
        results.append(
            ObsResult(
                name, workload.description, untraced_ms, traced_ms, spans, noise
            )
        )
    return results


def overhead_failures(
    results: Sequence[ObsResult], *, limit: float = MAX_OVERHEAD
) -> list[str]:
    """Kernels whose tracing overhead exceeds ``limit`` — the CI gate.

    The budget is compared against the traced slowdown *beyond* the run's
    own A/A noise: span cost slows only the traced regions, while runner
    frequency wander spreads the two untraced series just as far apart.
    """
    failures = []
    for result in results:
        if result.overhead > limit + result.noise:
            failures.append(
                f"{result.kernel}: tracing overhead {result.overhead:.1%} "
                f"exceeds the {limit:.0%} budget plus the run's "
                f"{result.noise:.1%} A/A noise "
                f"({result.untraced_ms:.2f}ms → {result.traced_ms:.2f}ms)"
            )
    return failures


def report_json(
    results: Sequence[ObsResult],
    *,
    quick: bool,
    repeat: int,
    limit: float = MAX_OVERHEAD,
    serve_telemetry=None,
) -> str:
    """The ``BENCH_obs.json`` payload.

    ``serve_telemetry`` — the optional end-to-end A/B from
    :func:`repro.bench.serve.run_telemetry_overhead` (``bench --obs
    --serve``): the whole telemetry plane measured against the telemetry-off
    server, committed beside the per-kernel tracing figures.
    """
    command = f"python -m repro bench --obs{' --quick' if quick else ''}"
    if serve_telemetry is not None:
        command += " --serve"
    payload = {
        "schema": SCHEMA,
        "command": f"{command} --repeat {repeat}",
        "quick": quick,
        "repeat": repeat,
        "overhead_limit": limit,
        "kernels": {result.kernel: result.as_json() for result in results},
    }
    if serve_telemetry is not None:
        from repro.bench.serve import TELEMETRY_OVERHEAD_LIMIT

        payload["serve_telemetry_limit"] = TELEMETRY_OVERHEAD_LIMIT
        payload["serve_telemetry"] = serve_telemetry.as_json()
    return json.dumps(payload, indent=2) + "\n"


def render_table(results: Sequence[ObsResult]) -> str:
    lines = [
        f"{'kernel':18s} {'untraced':>12s} {'traced':>12s} "
        f"{'overhead':>9s} {'noise':>7s} {'spans':>6s}"
    ]
    for result in results:
        lines.append(
            f"{result.kernel:18s} {result.untraced_ms:>10.2f}ms "
            f"{result.traced_ms:>10.2f}ms {result.overhead:>8.1%} "
            f"{result.noise:>6.1%} {result.spans:>6d}"
        )
    return "\n".join(lines)


def baseline_failures(baseline: Mapping, *, limit: float = MAX_OVERHEAD) -> list[str]:
    """Validate a committed ``BENCH_obs.json`` payload against the budget."""
    failures = []
    for kernel, entry in baseline.get("kernels", {}).items():
        if entry.get("overhead", 0.0) > limit + entry.get("noise", 0.0):
            failures.append(
                f"{kernel}: committed overhead {entry['overhead']:.1%} exceeds {limit:.0%}"
            )
    serve_entry = baseline.get("serve_telemetry")
    if serve_entry is not None:
        serve_limit = baseline.get("serve_telemetry_limit", 0.10)
        allowance = serve_limit + serve_entry.get("noise", 0.0)
        if serve_entry.get("overhead", 0.0) > allowance:
            failures.append(
                f"serve_telemetry: committed overhead"
                f" {serve_entry['overhead']:.1%} exceeds {serve_limit:.0%}"
            )
    return failures
