"""End-to-end service benchmark: requests/sec and latency percentiles.

Unlike :mod:`repro.bench.fastpath` (kernel vs reference — a ratio, immune
to machine speed) this measures the whole serving path: socket framing,
admission, the batching window, engine dispatch and the persistent store.
Per workload the harness starts a fresh server on an ephemeral port with a
temporary store file, runs one untimed warm pass (fills the store and the
bank — the steady state a long-lived server actually operates in), then
times ``repeat`` measured passes and keeps the best.

Two workloads:

* ``classify_warm`` — pipelined ``classify`` over a mixed formula corpus,
  answered from the persistent store (the restart-heavy steady state);
* ``mixed_warm``  — alternating ``classify``/``explain`` over the same
  corpus, the CI smoke's traffic shape.

The committed baseline is ``BENCH_serve.json``; the CI ``serve-smoke`` job
re-runs a quick variant and gates with :func:`regressions_against`.  The
gate factor is 4× (looser than fastpath's 2×) because these are absolute
wall-clock figures on shared runners, not machine-free ratios.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.serve.client import ServeClient
from repro.serve.server import ServerConfig, start_in_thread

SCHEMA = "repro-bench-serve/1"

#: Regression gate: a workload fails if its requests/sec fall below
#: baseline/FACTOR (absolute timings need a wide berth on shared runners).
GATE_FACTOR = 4.0

#: The telemetry plane (tracing + sidecar + recorder) may slow the serving
#: path by at most this fraction versus the identical telemetry-off server.
TELEMETRY_OVERHEAD_LIMIT = 0.10

#: The benchmark corpus: one representative per hierarchy class plus
#: pattern-style properties with shared subterms (cache-friendly traffic).
FORMULAS = (
    "G p",
    "F p",
    "(G p) | (F q)",
    "G F p",
    "F G p",
    "(G F p) | (F G q)",
    "G (p -> F q)",
    "G (p -> X q)",
    "p U q",
    "G (p -> (q S r))",
)


@dataclass(frozen=True)
class ServeResult:
    """One workload's measured serving performance."""

    workload: str
    description: str
    requests: int
    seconds: float
    p50_ms: float
    p99_ms: float
    store_hit_rate: float

    @property
    def rps(self) -> float:
        return self.requests / self.seconds if self.seconds else 0.0

    def as_json(self) -> dict:
        return {
            "description": self.description,
            "requests": self.requests,
            "seconds": round(self.seconds, 4),
            "rps": round(self.rps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "store_hit_rate": round(self.store_hit_rate, 4),
        }


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _requests_for(workload: str, passes: int) -> list[tuple[str, dict]]:
    requests: list[tuple[str, dict]] = []
    for index, formula in enumerate(FORMULAS * passes):
        if workload == "mixed_warm" and index % 2 == 1:
            requests.append(("explain", {"formula": formula}))
        else:
            requests.append(("classify", {"formula": formula}))
    return requests


def _run_workload(
    workload: str, description: str, *, passes: int, repeat: int
) -> ServeResult:
    fd, store_path = tempfile.mkstemp(prefix="repro-bench-serve-", suffix=".db")
    os.close(fd)
    os.unlink(store_path)
    handle = start_in_thread(
        ServerConfig(port=0, store_path=store_path, window_ms=2.0)
    )
    try:
        requests = _requests_for(workload, passes)
        best_seconds = float("inf")
        best_latencies: list[float] = []
        with ServeClient.connect(port=handle.port) as client:
            # Warm pass: fill the store and the bank, untimed.
            for verb, params in requests:
                client.request(verb, **params)
            for _ in range(repeat):
                # Latency pass: one request at a time, per-request timing
                # (each pays the batching window alone — the worst case).
                latencies: list[float] = []
                for verb, params in requests:
                    t0 = time.perf_counter()
                    client.request(verb, **params)
                    latencies.append((time.perf_counter() - t0) * 1e3)
                # Throughput pass: the whole workload pipelined on one
                # connection, so batching windows amortize across requests.
                start = time.perf_counter()
                ids = [client.send(verb, **params) for verb, params in requests]
                for request_id in ids:
                    client.unwrap(client.recv_for(request_id))
                elapsed = time.perf_counter() - start
                if elapsed < best_seconds:
                    best_seconds = elapsed
                    best_latencies = latencies
            stats = client.stats()
        store = stats.get("store") or {}
        hits, misses = store.get("hits", 0), store.get("misses", 0)
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        best_latencies.sort()
        return ServeResult(
            workload=workload,
            description=description,
            requests=len(requests),
            seconds=best_seconds,
            p50_ms=_percentile(best_latencies, 0.50),
            p99_ms=_percentile(best_latencies, 0.99),
            store_hit_rate=hit_rate,
        )
    finally:
        handle.stop()
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(store_path + suffix)
            except OSError:
                pass


def run_serve_benchmarks(*, quick: bool = False, repeat: int = 3) -> list[ServeResult]:
    """Benchmark every serve workload against a fresh in-process server."""
    passes = 2 if quick else 5
    return [
        _run_workload(
            "classify_warm",
            f"pipelined classify × {len(FORMULAS) * passes} over a warm store",
            passes=passes,
            repeat=repeat,
        ),
        _run_workload(
            "mixed_warm",
            f"alternating classify/explain × {len(FORMULAS) * passes} over a warm store",
            passes=passes,
            repeat=repeat,
        ),
    ]


@dataclass(frozen=True)
class TelemetryOverheadResult:
    """The telemetry A/B: the same warm workload, telemetry off vs on.

    ``off``/``on`` compare the *standing* cost of running the service with
    the full telemetry plane (per-request span trees, flight recorder,
    sidecar) against the identical telemetry-off server, as seen by a
    standard untraced client — this is what the 10% gate holds.
    ``traced_seconds`` additionally measures a client that opts into wire
    trace propagation per request (client span, ``trace`` field, server
    echo, adoption) — a per-request diagnostic whose cost is reported for
    transparency but not gated.  ``noise`` is an A/A control: the spread
    between two interleaved telemetry-off series, i.e. what the machine
    does to identical code.
    """

    workload: str
    description: str
    requests: int
    off_seconds: float
    on_seconds: float
    traced_seconds: float
    noise: float

    @property
    def off_rps(self) -> float:
        return self.requests / self.off_seconds if self.off_seconds else 0.0

    @property
    def on_rps(self) -> float:
        return self.requests / self.on_seconds if self.on_seconds else 0.0

    @property
    def traced_rps(self) -> float:
        return self.requests / self.traced_seconds if self.traced_seconds else 0.0

    @property
    def overhead(self) -> float:
        """Fractional slowdown from the telemetry plane (0.03 = 3% slower)."""
        if not self.off_seconds:
            return 0.0
        return self.on_seconds / self.off_seconds - 1.0

    @property
    def traced_overhead(self) -> float:
        """Slowdown of the full traced round trip (informational)."""
        if not self.off_seconds:
            return 0.0
        return self.traced_seconds / self.off_seconds - 1.0

    def as_json(self) -> dict:
        return {
            "description": self.description,
            "requests": self.requests,
            "off_rps": round(self.off_rps, 1),
            "on_rps": round(self.on_rps, 1),
            "overhead": round(self.overhead, 4),
            "noise": round(self.noise, 4),
            "traced_rps": round(self.traced_rps, 1),
            "traced_overhead": round(self.traced_overhead, 4),
        }


def run_telemetry_overhead(
    *, quick: bool = False, repeat: int = 3
) -> TelemetryOverheadResult:
    """Time the warm pipelined workload against two otherwise-identical
    servers: telemetry off, and telemetry fully on (tracing + sidecar +
    recorder).

    Four interleaved series per repeat, best-of-``repeat`` each:

    * ``off_a`` / ``off_b`` — untraced client, telemetry-off server (the
      pair's spread is the A/A noise figure);
    * ``on`` — untraced client, telemetry-on server (the gated number:
      the standing cost every request pays);
    * ``traced`` — traced client against the telemetry-on server (wire
      propagation, span echo, adoption — informational).

    The process tracer is a process-wide switch shared by the in-process
    client, so it is toggled per pass; the untraced passes construct the
    client with ``trace=False`` so client-side span costs cannot leak into
    the off side.

    Garbage collection is handled as in :mod:`repro.bench.obs`:
    ``gc.collect()`` before every timed pass, plus ``gc.freeze()`` around
    the whole measurement so whatever heap the process accrued *before*
    this benchmark (``bench --obs --serve`` runs it after six kernel
    benchmarks) is exempt from collection — otherwise the traced side's
    span allocations trigger full collections that scan megabytes of
    unrelated kernel garbage, and that scan time gets billed as telemetry
    overhead.
    """
    import gc

    from repro.obs.spans import TRACER

    passes = 2 if quick else 5
    requests = _requests_for("classify_warm", passes)
    previously_enabled = TRACER.enabled
    stores: list[str] = []
    handles = []
    best = {"off_a": float("inf"), "off_b": float("inf"),
            "on": float("inf"), "traced": float("inf")}

    def timed_pass(client: ServeClient) -> float:
        gc.collect()
        start = time.perf_counter()
        ids = [client.send(verb, **params) for verb, params in requests]
        for request_id in ids:
            client.unwrap(client.recv_for(request_id))
        return time.perf_counter() - start

    try:
        for telemetry in (False, True):
            fd, store_path = tempfile.mkstemp(
                prefix="repro-bench-telemetry-", suffix=".db"
            )
            os.close(fd)
            os.unlink(store_path)
            stores.append(store_path)
            config = ServerConfig(
                port=0,
                store_path=store_path,
                window_ms=2.0,
                telemetry_port=0 if telemetry else None,
                trace=telemetry,
            )
            handles.append(start_in_thread(config))
        with ServeClient.connect(port=handles[0].port, trace=False) as off_client, \
                ServeClient.connect(port=handles[1].port, trace=False) as on_client, \
                ServeClient.connect(port=handles[1].port) as traced_client:
            TRACER.disable()
            for client in (off_client, on_client):  # warm: fill store + bank
                for verb, params in requests:
                    client.request(verb, **params)
            gc.collect()
            gc.freeze()
            for _ in range(repeat):
                TRACER.disable()
                best["off_a"] = min(best["off_a"], timed_pass(off_client))
                TRACER.enable()
                TRACER.clear()
                best["on"] = min(best["on"], timed_pass(on_client))
                TRACER.disable()
                best["off_b"] = min(best["off_b"], timed_pass(off_client))
                TRACER.enable()
                TRACER.clear()
                best["traced"] = min(best["traced"], timed_pass(traced_client))
                TRACER.clear()
    finally:
        gc.unfreeze()
        if previously_enabled:
            TRACER.enable()
        else:
            TRACER.disable()
        TRACER.clear()
        for handle in handles:
            handle.stop()
        for store_path in stores:
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(store_path + suffix)
                except OSError:
                    pass
    off = min(best["off_a"], best["off_b"])
    noise = abs(best["off_a"] - best["off_b"]) / off if off else 0.0
    return TelemetryOverheadResult(
        workload="classify_warm_telemetry",
        description=(
            f"pipelined classify × {len(requests)} over a warm store:"
            " telemetry off vs tracing + sidecar + recorder on"
            " (traced = client wire propagation too)"
        ),
        requests=len(requests),
        off_seconds=off,
        on_seconds=best["on"],
        traced_seconds=best["traced"],
        noise=noise,
    )


def telemetry_failures(
    result: TelemetryOverheadResult, *, limit: float = TELEMETRY_OVERHEAD_LIMIT
) -> list[str]:
    """The telemetry acceptance gate: overhead must stay under ``limit``.

    Mirrors :func:`repro.bench.obs.overhead_failures`: the budget is
    compared against the slowdown beyond the run's own A/A noise, since
    clock wander on a shared runner moves the two off series just as far
    apart as it moves off against on.
    """
    if result.overhead > limit + result.noise:
        return [
            f"{result.workload}: telemetry overhead {result.overhead:.1%}"
            f" exceeds the {limit:.0%} budget plus the run's"
            f" {result.noise:.1%} A/A noise"
            f" ({result.off_rps:.0f} req/s → {result.on_rps:.0f} req/s)"
        ]
    return []


def regressions_against(
    results: Sequence[ServeResult], baseline: Mapping, *, factor: float = GATE_FACTOR
) -> list[str]:
    """Workloads whose throughput fell below ``baseline/factor`` — the CI gate."""
    failures = []
    workloads = baseline.get("workloads", {})
    for result in results:
        entry = workloads.get(result.workload)
        if entry is None:
            continue
        floor = entry.get("rps", 0.0) / factor
        if result.rps < floor:
            failures.append(
                f"{result.workload}: {result.rps:.0f} req/s fell below"
                f" {floor:.0f} req/s (baseline {entry['rps']:.0f} / {factor:g})"
            )
    return failures


def report_json(results: Sequence[ServeResult], *, quick: bool, repeat: int) -> str:
    payload = {
        "schema": SCHEMA,
        "command": f"python -m repro bench --serve{' --quick' if quick else ''}"
        f" --repeat {repeat}",
        "quick": quick,
        "repeat": repeat,
        "gate_factor": GATE_FACTOR,
        "workloads": {result.workload: result.as_json() for result in results},
    }
    return json.dumps(payload, indent=2) + "\n"


def render_table(results: Sequence[ServeResult]) -> str:
    lines = [
        f"{'workload':16s} {'requests':>8s} {'req/s':>9s} {'p50':>9s}"
        f" {'p99':>9s} {'store hits':>10s}"
    ]
    for result in results:
        lines.append(
            f"{result.workload:16s} {result.requests:>8d} {result.rps:>9.0f}"
            f" {result.p50_ms:>7.2f}ms {result.p99_ms:>7.2f}ms"
            f" {result.store_hit_rate:>9.1%}"
        )
    return "\n".join(lines)
