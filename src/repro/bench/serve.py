"""End-to-end service benchmark: requests/sec and latency percentiles.

Unlike :mod:`repro.bench.fastpath` (kernel vs reference — a ratio, immune
to machine speed) this measures the whole serving path: socket framing,
admission, the batching window, engine dispatch and the persistent store.
Per workload the harness starts a fresh server on an ephemeral port with a
temporary store file, runs one untimed warm pass (fills the store and the
bank — the steady state a long-lived server actually operates in), then
times ``repeat`` measured passes and keeps the best.

Two workloads:

* ``classify_warm`` — pipelined ``classify`` over a mixed formula corpus,
  answered from the persistent store (the restart-heavy steady state);
* ``mixed_warm``  — alternating ``classify``/``explain`` over the same
  corpus, the CI smoke's traffic shape.

The committed baseline is ``BENCH_serve.json``; the CI ``serve-smoke`` job
re-runs a quick variant and gates with :func:`regressions_against`.  The
gate factor is 4× (looser than fastpath's 2×) because these are absolute
wall-clock figures on shared runners, not machine-free ratios.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.serve.client import ServeClient
from repro.serve.server import ServerConfig, start_in_thread

SCHEMA = "repro-bench-serve/1"

#: Regression gate: a workload fails if its requests/sec fall below
#: baseline/FACTOR (absolute timings need a wide berth on shared runners).
GATE_FACTOR = 4.0

#: The benchmark corpus: one representative per hierarchy class plus
#: pattern-style properties with shared subterms (cache-friendly traffic).
FORMULAS = (
    "G p",
    "F p",
    "(G p) | (F q)",
    "G F p",
    "F G p",
    "(G F p) | (F G q)",
    "G (p -> F q)",
    "G (p -> X q)",
    "p U q",
    "G (p -> (q S r))",
)


@dataclass(frozen=True)
class ServeResult:
    """One workload's measured serving performance."""

    workload: str
    description: str
    requests: int
    seconds: float
    p50_ms: float
    p99_ms: float
    store_hit_rate: float

    @property
    def rps(self) -> float:
        return self.requests / self.seconds if self.seconds else 0.0

    def as_json(self) -> dict:
        return {
            "description": self.description,
            "requests": self.requests,
            "seconds": round(self.seconds, 4),
            "rps": round(self.rps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "store_hit_rate": round(self.store_hit_rate, 4),
        }


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _requests_for(workload: str, passes: int) -> list[tuple[str, dict]]:
    requests: list[tuple[str, dict]] = []
    for index, formula in enumerate(FORMULAS * passes):
        if workload == "mixed_warm" and index % 2 == 1:
            requests.append(("explain", {"formula": formula}))
        else:
            requests.append(("classify", {"formula": formula}))
    return requests


def _run_workload(
    workload: str, description: str, *, passes: int, repeat: int
) -> ServeResult:
    fd, store_path = tempfile.mkstemp(prefix="repro-bench-serve-", suffix=".db")
    os.close(fd)
    os.unlink(store_path)
    handle = start_in_thread(
        ServerConfig(port=0, store_path=store_path, window_ms=2.0)
    )
    try:
        requests = _requests_for(workload, passes)
        best_seconds = float("inf")
        best_latencies: list[float] = []
        with ServeClient.connect(port=handle.port) as client:
            # Warm pass: fill the store and the bank, untimed.
            for verb, params in requests:
                client.request(verb, **params)
            for _ in range(repeat):
                # Latency pass: one request at a time, per-request timing
                # (each pays the batching window alone — the worst case).
                latencies: list[float] = []
                for verb, params in requests:
                    t0 = time.perf_counter()
                    client.request(verb, **params)
                    latencies.append((time.perf_counter() - t0) * 1e3)
                # Throughput pass: the whole workload pipelined on one
                # connection, so batching windows amortize across requests.
                start = time.perf_counter()
                ids = [client.send(verb, **params) for verb, params in requests]
                for request_id in ids:
                    client.unwrap(client.recv_for(request_id))
                elapsed = time.perf_counter() - start
                if elapsed < best_seconds:
                    best_seconds = elapsed
                    best_latencies = latencies
            stats = client.stats()
        store = stats.get("store") or {}
        hits, misses = store.get("hits", 0), store.get("misses", 0)
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        best_latencies.sort()
        return ServeResult(
            workload=workload,
            description=description,
            requests=len(requests),
            seconds=best_seconds,
            p50_ms=_percentile(best_latencies, 0.50),
            p99_ms=_percentile(best_latencies, 0.99),
            store_hit_rate=hit_rate,
        )
    finally:
        handle.stop()
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(store_path + suffix)
            except OSError:
                pass


def run_serve_benchmarks(*, quick: bool = False, repeat: int = 3) -> list[ServeResult]:
    """Benchmark every serve workload against a fresh in-process server."""
    passes = 2 if quick else 5
    return [
        _run_workload(
            "classify_warm",
            f"pipelined classify × {len(FORMULAS) * passes} over a warm store",
            passes=passes,
            repeat=repeat,
        ),
        _run_workload(
            "mixed_warm",
            f"alternating classify/explain × {len(FORMULAS) * passes} over a warm store",
            passes=passes,
            repeat=repeat,
        ),
    ]


def regressions_against(
    results: Sequence[ServeResult], baseline: Mapping, *, factor: float = GATE_FACTOR
) -> list[str]:
    """Workloads whose throughput fell below ``baseline/factor`` — the CI gate."""
    failures = []
    workloads = baseline.get("workloads", {})
    for result in results:
        entry = workloads.get(result.workload)
        if entry is None:
            continue
        floor = entry.get("rps", 0.0) / factor
        if result.rps < floor:
            failures.append(
                f"{result.workload}: {result.rps:.0f} req/s fell below"
                f" {floor:.0f} req/s (baseline {entry['rps']:.0f} / {factor:g})"
            )
    return failures


def report_json(results: Sequence[ServeResult], *, quick: bool, repeat: int) -> str:
    payload = {
        "schema": SCHEMA,
        "command": f"python -m repro bench --serve{' --quick' if quick else ''}"
        f" --repeat {repeat}",
        "quick": quick,
        "repeat": repeat,
        "gate_factor": GATE_FACTOR,
        "workloads": {result.workload: result.as_json() for result in results},
    }
    return json.dumps(payload, indent=2) + "\n"


def render_table(results: Sequence[ServeResult]) -> str:
    lines = [
        f"{'workload':16s} {'requests':>8s} {'req/s':>9s} {'p50':>9s}"
        f" {'p99':>9s} {'store hits':>10s}"
    ]
    for result in results:
        lines.append(
            f"{result.workload:16s} {result.requests:>8d} {result.rps:>9.0f}"
            f" {result.p50_ms:>7.2f}ms {result.p99_ms:>7.2f}ms"
            f" {result.store_hit_rate:>9.1%}"
        )
    return "\n".join(lines)
