"""Fleet benchmark: streams·events/sec, vectorized fleet vs scalar loop.

The workload the fleet exists for: one property, N concurrent streams, event
batches arriving for all of them.  Per workload the harness compiles the
property once, builds a :class:`repro.fleet.fleet.MonitorFleet` and a list
of N scalar :class:`repro.core.monitor.PrefixMonitor`\\ s over the *same*
compilation, and times both routes over identical batch sequences —
interleaved, best-of-``repeat``, ``gc.collect()`` before every timed region
(the :mod:`repro.bench.fastpath` methodology).  Every repeat re-checks that
the two routes end with identical verdict vectors and positions before its
timing is accepted.

Two workloads:

* ``aligned_rows``   — one symbol per stream per batch, rows arriving as
  plain strings (the vectorized byte-LUT encode path); N=10 000 streams in
  the full run, the size the ≥10× acceptance gate is stated at;
* ``sparse_events``  — sparse columnar batches (ids + symbol string, the
  JSONL ``{"ids": …, "symbols": …}`` shape) with duplicate stream ids,
  exercising the occurrence-split gather rounds.

The committed baseline is ``BENCH_fleet.json``; the CI ``fleet-smoke`` job
re-runs a quick variant and gates with :func:`regressions_against`.  The
gate gives speedups a 4× berth (like serve, unlike fastpath's 2×): the
ratio is machine-free, but the scalar side is a pure-Python loop whose
relative speed against numpy swings with the interpreter build.
"""

from __future__ import annotations

import gc
import json
import random
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.fleet.compile import CompiledMonitor
from repro.fleet.fleet import MonitorFleet, scalar_monitors
from repro.omega.omega_regex import omega_language
from repro.words.alphabet import Alphabet

SCHEMA = "repro-bench-fleet/1"

#: Regression gate: a workload fails if its fleet/scalar speedup falls
#: below baseline/FACTOR.
GATE_FACTOR = 4.0

#: The benchmark property: "at most one b" over Σ = {a, b} — a safety
#: property whose VIOLATED region is reachable (second b) but not instant,
#: so most streams stay live through the run and every step does real work.
_EXPRESSION = "aw | a*baw"
_LETTERS = "ab"

_CHECKS_MSG = "fleet and scalar routes disagreed on benchmark workload"


@dataclass(frozen=True)
class FleetResult:
    """One workload's interleaved timing: scalar loop vs fleet."""

    workload: str
    description: str
    streams: int
    events: int
    scalar_ms: float
    fleet_ms: float
    backend: str

    @property
    def speedup(self) -> float:
        return self.scalar_ms / self.fleet_ms if self.fleet_ms else 0.0

    @property
    def fleet_events_per_sec(self) -> float:
        return self.events / (self.fleet_ms / 1e3) if self.fleet_ms else 0.0

    @property
    def scalar_events_per_sec(self) -> float:
        return self.events / (self.scalar_ms / 1e3) if self.scalar_ms else 0.0

    def as_json(self) -> dict:
        return {
            "description": self.description,
            "streams": self.streams,
            "events": self.events,
            "backend": self.backend,
            "scalar_ms": round(self.scalar_ms, 3),
            "fleet_ms": round(self.fleet_ms, 3),
            "fleet_events_per_sec": round(self.fleet_events_per_sec),
            "speedup": round(self.speedup, 2),
        }


def _compiled() -> CompiledMonitor:
    return CompiledMonitor(omega_language(_EXPRESSION, Alphabet.from_letters(_LETTERS)))


def _aligned_batches(rng: random.Random, streams: int, batches: int) -> list[str]:
    # b is rare (1 in 8) so a stream needs two hits to die: verdict vectors
    # keep changing through the whole run instead of saturating on batch 1.
    return [
        "".join("b" if rng.random() < 0.125 else "a" for _ in range(streams))
        for _ in range(batches)
    ]


def _sparse_batches(
    rng: random.Random, streams: int, batches: int, events_per_batch: int
) -> list[tuple[list[int], str]]:
    # Columnar, exactly as the JSONL {"ids": …, "symbols": …} shape parses:
    # ids as a plain list of ints, symbols as one string.
    return [
        (
            [rng.randrange(streams) for _ in range(events_per_batch)],
            "".join(
                "b" if rng.random() < 0.125 else "a"
                for _ in range(events_per_batch)
            ),
        )
        for _ in range(batches)
    ]


def _agree(fleet: MonitorFleet, monitors) -> bool:
    return fleet.verdicts() == [m.verdict for m in monitors] and fleet.positions() == [
        m.position for m in monitors
    ]


def _time_routes(
    fleet: MonitorFleet,
    monitors,
    run_fleet,
    run_scalar,
    repeat: int,
    description: str,
) -> tuple[float, float]:
    """Best-of-``repeat`` per route, alternating routes run to run."""
    best_scalar = best_fleet = float("inf")
    for _ in range(repeat):
        for monitor in monitors:
            monitor.reset()
        gc.collect()
        start = time.perf_counter()
        run_scalar()
        best_scalar = min(best_scalar, time.perf_counter() - start)
        fleet.reset()
        gc.collect()
        start = time.perf_counter()
        run_fleet()
        best_fleet = min(best_fleet, time.perf_counter() - start)
        if not _agree(fleet, monitors):
            raise AssertionError(f"{_CHECKS_MSG}: {description}")
    return best_scalar * 1e3, best_fleet * 1e3


def _aligned_workload(quick: bool, repeat: int, backend: str) -> FleetResult:
    streams = 2_000 if quick else 10_000
    batches = 10 if quick else 25
    rows = _aligned_batches(random.Random(7), streams, batches)
    compiled = _compiled()
    fleet = MonitorFleet(compiled, streams, backend=backend)
    monitors = scalar_monitors(compiled, streams)
    description = f"{batches} aligned string rows × {streams} streams"

    def run_fleet() -> None:
        for row in rows:
            fleet.step_aligned(row)

    def run_scalar() -> None:
        for row in rows:
            for monitor, symbol in zip(monitors, row):
                monitor.step(symbol)

    scalar_ms, fleet_ms = _time_routes(
        fleet, monitors, run_fleet, run_scalar, repeat, description
    )
    return FleetResult(
        workload="aligned_rows",
        description=description,
        streams=streams,
        events=streams * batches,
        scalar_ms=scalar_ms,
        fleet_ms=fleet_ms,
        backend=fleet.backend,
    )


def _sparse_workload(quick: bool, repeat: int, backend: str) -> FleetResult:
    streams = 2_000 if quick else 10_000
    batches = 10 if quick else 25
    per_batch = streams // 2  # duplicates are likely; that is the point
    event_batches = _sparse_batches(random.Random(11), streams, batches, per_batch)
    compiled = _compiled()
    fleet = MonitorFleet(compiled, streams, backend=backend)
    monitors = scalar_monitors(compiled, streams)
    description = (
        f"{batches} sparse batches × {per_batch} events over {streams} streams"
    )

    def run_fleet() -> None:
        for ids, symbols in event_batches:
            fleet.step_events_columns(ids, symbols)

    def run_scalar() -> None:
        for ids, symbols in event_batches:
            for stream, symbol in zip(ids, symbols):
                monitors[stream].step(symbol)

    scalar_ms, fleet_ms = _time_routes(
        fleet, monitors, run_fleet, run_scalar, repeat, description
    )
    return FleetResult(
        workload="sparse_events",
        description=description,
        streams=streams,
        events=batches * per_batch,
        scalar_ms=scalar_ms,
        fleet_ms=fleet_ms,
        backend=fleet.backend,
    )


def run_fleet_benchmarks(
    *, quick: bool = False, repeat: int = 3, backend: str = "auto"
) -> list[FleetResult]:
    """Time both fleet workloads against the scalar monitor loop."""
    return [
        _aligned_workload(quick, repeat, backend),
        _sparse_workload(quick, repeat, backend),
    ]


def regressions_against(
    results: Sequence[FleetResult], baseline: Mapping, *, factor: float = GATE_FACTOR
) -> list[str]:
    """Workloads whose speedup fell below ``baseline/factor`` — the CI gate."""
    failures = []
    workloads = baseline.get("workloads", {})
    for result in results:
        entry = workloads.get(result.workload)
        if entry is None:
            continue
        floor = entry.get("speedup", 0.0) / factor
        if result.speedup < floor:
            failures.append(
                f"{result.workload}: speedup {result.speedup:.2f}x fell below"
                f" {floor:.2f}x (baseline {entry['speedup']:.2f}x / {factor:g})"
            )
    return failures


def report_json(results: Sequence[FleetResult], *, quick: bool, repeat: int) -> str:
    payload = {
        "schema": SCHEMA,
        "command": f"python -m repro bench --fleet{' --quick' if quick else ''}"
        f" --repeat {repeat}",
        "quick": quick,
        "repeat": repeat,
        "gate_factor": GATE_FACTOR,
        "property": f"{_EXPRESSION} over {_LETTERS}",
        "workloads": {result.workload: result.as_json() for result in results},
    }
    return json.dumps(payload, indent=2) + "\n"


def render_table(results: Sequence[FleetResult]) -> str:
    lines = [
        f"{'workload':16s} {'streams':>8s} {'events':>9s} {'scalar':>11s}"
        f" {'fleet':>11s} {'speedup':>8s} {'events/s':>12s}"
    ]
    for result in results:
        lines.append(
            f"{result.workload:16s} {result.streams:>8d} {result.events:>9d}"
            f" {result.scalar_ms:>9.2f}ms {result.fleet_ms:>9.2f}ms"
            f" {result.speedup:>7.2f}x {result.fleet_events_per_sec:>12,.0f}"
        )
    return "\n".join(lines)
