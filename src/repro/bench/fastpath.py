"""Fastpath kernel benchmarks: reference route vs dense route, same inputs.

Every workload is deterministic (fixed seeds, fixed sizes) and large enough
to clear the ``auto`` threshold, so the two timed routes differ only in the
kernel that runs.  Methodology:

* reference and dense runs are *interleaved*, with ``gc.collect()`` before
  every timed region — a collection triggered by one route's garbage must
  not be billed to the other (exactly that artifact once produced a bogus
  0.7× "regression" for a kernel that profiles 2× faster);
* the per-route time is the minimum over ``--repeat`` runs (minimum, not
  mean: noise on a quiet machine is strictly additive);
* each run re-checks that the two routes agree (tables equal for the
  construction kernels, verdicts/sets equal for the emptiness kernels)
  before its timing is accepted.

The JSON report (``BENCH_fastpath.json`` at the repo root) is the committed
baseline the CI ``bench-smoke`` job compares against; see
``docs/PERFORMANCE.md`` for the schema.
"""

from __future__ import annotations

import gc
import json
import random
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.fastpath.config import forced

SCHEMA = "repro-bench-fastpath/1"

#: A check failing means the routes disagreed — never report such a timing.
_CHECKS_MSG = "fastpath and reference routes disagreed on benchmark workload"


@dataclass(frozen=True)
class KernelResult:
    """One kernel's interleaved timing: reference vs dense, same input."""

    kernel: str
    workload: str
    reference_ms: float
    fastpath_ms: float

    @property
    def speedup(self) -> float:
        return self.reference_ms / self.fastpath_ms if self.fastpath_ms else 0.0

    def as_json(self) -> dict:
        return {
            "workload": self.workload,
            "reference_ms": round(self.reference_ms, 3),
            "fastpath_ms": round(self.fastpath_ms, 3),
            "speedup": round(self.speedup, 2),
        }


@dataclass(frozen=True)
class _Workload:
    """A prepared benchmark: a thunk to time and an agreement check."""

    description: str
    run: Callable[[], object]
    agree: Callable[[object, object], bool]


def _nth_from_end_nfa(n: int):
    """L = {w : the n-th symbol from the end is 'a'} — determinizes to 2ⁿ
    states; the canonical subset-construction stress shape."""
    from repro.finitary.nfa import NFA
    from repro.words.alphabet import Alphabet

    alphabet = Alphabet(("a", "b"))
    transitions = {(0, "a"): {0, 1}, (0, "b"): {0}}
    for i in range(1, n):
        transitions[(i, "a")] = {i + 1}
        transitions[(i, "b")] = {i + 1}
    return NFA(alphabet, n + 1, transitions, [0], [n])


def _streett_automaton(rng: random.Random, n: int, pairs: int, p_left: float, p_right: float):
    """A complete Streett automaton with sparse left sets — sparse enough
    that emptiness checking has to prune SCCs deeply before concluding."""
    from repro.omega.acceptance import Acceptance
    from repro.omega.automaton import DetAutomaton
    from repro.words.alphabet import Alphabet

    alphabet = Alphabet(("a", "b", "c"))
    rows = [[rng.randrange(n) for _ in alphabet] for _ in range(n)]
    acceptance = Acceptance.streett(
        [
            (
                [s for s in range(n) if rng.random() < p_left],
                [s for s in range(n) if rng.random() < p_right],
            )
            for _ in range(pairs)
        ]
    )
    return DetAutomaton(alphabet, rows, 0, acceptance)


def _tables_equal(a, b) -> bool:
    return (
        a._delta == b._delta  # noqa: SLF001 — structural identity is the contract
        and a.accepting == b.accepting
        and a.initial == b.initial
    )


def _subset_workload(quick: bool) -> _Workload:
    n = 9 if quick else 11
    nfa = _nth_from_end_nfa(n)
    return _Workload(
        description=f"determinize nth-from-end NFA, n={n} ({2 ** n} subset states)",
        run=nfa.determinize,
        agree=_tables_equal,
    )


def _minimize_workload(quick: bool) -> _Workload:
    # The reference minimizer is O(n²k), so its speedup grows quickly with
    # size; the quick workload stays within a factor of two of the full
    # one's speedup only from about 1024 states up.
    n = 10 if quick else 11
    dfa = _nth_from_end_nfa(n).determinize()
    return _Workload(
        description=f"minimize the {dfa.num_states}-state nth-from-end DFA, n={n}",
        run=dfa.minimized,
        agree=_tables_equal,
    )


def _dfa_product_workload(quick: bool) -> _Workload:
    from repro.finitary.dfa import random_dfa
    from repro.words.alphabet import Alphabet

    size = 80 if quick else 150
    alphabet = Alphabet(("a", "b", "c"))
    dfa_a = random_dfa(alphabet, size, random.Random(3))
    dfa_b = random_dfa(alphabet, size, random.Random(4))
    return _Workload(
        description=f"intersection of two random {size}-state DFAs",
        run=lambda: dfa_a.intersection(dfa_b),
        agree=_tables_equal,
    )


def _product_emptiness_workload(quick: bool) -> _Workload:
    from repro.omega.emptiness import ProductCheck

    n = 48 if quick else 64
    rng = random.Random(3)
    left = _streett_automaton(rng, n, 3, 0.03, 0.2)
    right = _streett_automaton(rng, n, 3, 0.03, 0.2)

    def run():
        return ProductCheck([left, right], [False, True]).witness_component()

    return _Workload(
        description=(
            f"A ∩ ¬B emptiness, two {n}-state 3-pair Streett automata "
            "(sparse left sets force deep SCC pruning)"
        ),
        run=run,
        agree=lambda a, b: (a is None) == (b is None),
    )


def _nonempty_workload(quick: bool) -> _Workload:
    from repro.omega.emptiness import nonempty_states

    # Deliberately not scaled down for --quick: the workload is cheap, and
    # at small sizes the SCC pruning resolves before the dense route can
    # amortize its setup, which would make the smoke gate flaky.
    n = 3000
    aut = _streett_automaton(random.Random(5), n, 3, 0.001, 0.3)
    return _Workload(
        description=f"nonempty_states of a {n}-state 3-pair Streett automaton",
        run=lambda: nonempty_states(aut),
        agree=lambda a, b: a == b,
    )


def _classify_workload(quick: bool) -> _Workload:
    from repro.core.classifier import classify_formula
    from repro.logic.parser import parse_formula
    from repro.words.alphabet import Alphabet

    # End-to-end pipeline: GPVW tableau → Safra → quotient → Wagner
    # classification.  Powerset alphabets with an unused proposition are the
    # representative shape: label compression halves the stepped symbols,
    # and every stage crosses its auto threshold.
    texts = ["G (a -> F b) & (G F b -> G F a)"]
    if not quick:
        texts.append("(F a & F b) | G (a -> X b)")
    alphabet = Alphabet.powerset_of_propositions("abc")
    formulas = [parse_formula(text) for text in texts]

    def run():
        return [classify_formula(formula, alphabet) for formula in formulas]

    def view(report):
        return (
            report.semantic,
            report.syntactic,
            report.streett_index,
            report.obligation_degree,
            report.is_uniform_liveness,
            report.automaton._delta,  # noqa: SLF001 — structural identity
            report.automaton.initial,
            report.automaton.acceptance,
        )

    return _Workload(
        description=(
            f"classify_formula on {len(texts)} formula(s) over 2^{{a,b,c}}"
            " (full GPVW→Safra→quotient→Wagner pipeline)"
        ),
        run=run,
        agree=lambda a, b: all(view(x) == view(y) for x, y in zip(a, b)),
    )


#: Kernel name → workload factory, in report order.  The first two named
#: kernels are the acceptance-gated ones.
BENCHMARKS: Mapping[str, Callable[[bool], _Workload]] = {
    "subset": _subset_workload,
    "product_emptiness": _product_emptiness_workload,
    "minimize": _minimize_workload,
    "dfa_product": _dfa_product_workload,
    "nonempty": _nonempty_workload,
    "classify": _classify_workload,
}


def _time_interleaved(workload: _Workload, repeat: int) -> tuple[float, float]:
    """Best-of-``repeat`` per route, alternating routes run to run."""
    best_ref = best_fast = float("inf")
    for _ in range(repeat):
        gc.collect()
        with forced("off"):
            start = time.perf_counter()
            ref_out = workload.run()
            best_ref = min(best_ref, time.perf_counter() - start)
        gc.collect()
        with forced("on"):
            start = time.perf_counter()
            fast_out = workload.run()
            best_fast = min(best_fast, time.perf_counter() - start)
        if not workload.agree(ref_out, fast_out):
            raise AssertionError(f"{_CHECKS_MSG}: {workload.description}")
    return best_ref * 1e3, best_fast * 1e3


def run_benchmarks(
    *, quick: bool = False, repeat: int = 5, kernels: Sequence[str] | None = None
) -> list[KernelResult]:
    """Run the selected kernels (default: all) and return their results."""
    selected = list(kernels) if kernels else list(BENCHMARKS)
    results = []
    for name in selected:
        workload = BENCHMARKS[name](quick)
        reference_ms, fastpath_ms = _time_interleaved(workload, repeat)
        results.append(
            KernelResult(name, workload.description, reference_ms, fastpath_ms)
        )
    return results


def report_json(results: Sequence[KernelResult], *, quick: bool, repeat: int) -> str:
    payload = {
        "schema": SCHEMA,
        "command": f"python -m repro bench{' --quick' if quick else ''} --repeat {repeat}",
        "quick": quick,
        "repeat": repeat,
        "kernels": {result.kernel: result.as_json() for result in results},
    }
    return json.dumps(payload, indent=2) + "\n"


def render_table(results: Sequence[KernelResult]) -> str:
    lines = [f"{'kernel':18s} {'reference':>12s} {'fastpath':>12s} {'speedup':>8s}"]
    for result in results:
        lines.append(
            f"{result.kernel:18s} {result.reference_ms:>10.2f}ms "
            f"{result.fastpath_ms:>10.2f}ms {result.speedup:>7.2f}x"
        )
    return "\n".join(lines)


def regressions_against(
    results: Sequence[KernelResult],
    baseline: Mapping,
    *,
    factor: float = 2.0,
    expect_all: bool = False,
) -> list[str]:
    """Kernels whose speedup fell below ``baseline/factor`` — the CI gate.

    Only kernels present in both runs are compared, so a ``--quick`` run can
    be checked against the committed full baseline: sizes differ but a real
    kernel regression shows up in the ratio long before the 2× gate.  Each
    failure line names the kernel and quantifies the regression (measured
    vs. baseline speedup, plus the measured route timings).  With
    ``expect_all`` — set when the run was not filtered to a kernel subset —
    baseline kernels absent from the results are reported too, so a renamed
    or dropped workload cannot silently stop being gated.
    """
    failures = []
    kernels = baseline.get("kernels", {})
    measured = {result.kernel for result in results}
    for result in results:
        entry = kernels.get(result.kernel)
        if entry is None:
            continue
        floor = entry["speedup"] / factor
        if result.speedup < floor:
            failures.append(
                f"{result.kernel}: speedup {result.speedup:.2f}x fell below "
                f"{floor:.2f}x (baseline {entry['speedup']:.2f}x / {factor:g}; "
                f"measured {result.reference_ms:.2f}ms reference vs "
                f"{result.fastpath_ms:.2f}ms fastpath)"
            )
    if expect_all:
        for name in kernels:
            if name not in measured:
                failures.append(
                    f"{name}: present in the baseline but not measured — "
                    "the kernel is no longer being gated"
                )
    return failures
