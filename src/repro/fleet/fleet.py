"""N concurrent monitored streams stepped as one array operation.

A :class:`MonitorFleet` holds the states of ``num_streams`` independent
prefix monitors for **one** compiled property.  Per event batch it performs
a single gather — ``table[states, symbols]`` on the numpy backend, one flat
list read per stream on the pure-Python fallback — and folds the per-state
verdict codes into a sticky verdict vector: once a stream leaves PENDING
its verdict never changes, exactly matching
:class:`repro.core.monitor.Verdict3` semantics (the qa ``fleet`` oracle
holds the two implementations to identical vectors at every batch
boundary).

Batch shapes
------------

* :meth:`step_broadcast` — one symbol, every stream;
* :meth:`step_aligned` — one symbol **per** stream (a row; a plain string
  over a single-character alphabet is the vectorized fast path);
* :meth:`step_events` — a sparse batch of ``(stream, symbol)`` pairs.  A
  stream may appear several times in one batch; its events apply in list
  order (the batch is split into gather rounds by occurrence index);
* :meth:`step_events_columns` — the same sparse batch as two parallel
  columns (ids + symbols).  This is the high-throughput form: a string of
  symbols encodes with one vectorized gather and no per-event Python
  objects ever exist.

All three validate symbols and stream ids **before** mutating anything, so
a failed batch leaves the fleet untouched (see the unknown-symbol contract
in :mod:`repro.fleet.compile`).

Backends
--------

``backend="auto"`` (the default) picks numpy when importable, else the
pure-Python fallback; ``"numpy"``/``"pure"`` force one (forcing numpy
without numpy installed raises ``ValueError``).  Both backends are
exercised against each other by the differential oracle whenever numpy is
present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.monitor import Verdict3
from repro.engine.metrics import METRICS
from repro.fleet.compile import (
    CODE_TO_VERDICT,
    HAVE_NUMPY,
    PENDING,
    SATISFIED,
    VIOLATED,
    CompiledMonitor,
)
from repro.words.alphabet import Symbol

if HAVE_NUMPY:  # pragma: no branch - module-level constant
    import numpy as _np

_BACKENDS = ("auto", "numpy", "pure")


@dataclass(frozen=True, slots=True)
class FleetCounts:
    """How many streams sit in each verdict region right now."""

    violated: int
    satisfied: int
    pending: int

    @property
    def total(self) -> int:
        return self.violated + self.satisfied + self.pending

    def line(self) -> str:
        return (
            f"violated={self.violated} satisfied={self.satisfied}"
            f" pending={self.pending}"
        )


class MonitorFleet:
    """One compiled property monitoring ``num_streams`` concurrent streams."""

    def __init__(
        self,
        compiled: CompiledMonitor,
        num_streams: int,
        *,
        backend: str = "auto",
    ) -> None:
        if num_streams < 1:
            raise ValueError("a fleet needs at least one stream")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        if backend == "numpy" and not HAVE_NUMPY:
            raise ValueError("numpy backend requested but numpy is not importable")
        self.compiled = compiled
        self.num_streams = num_streams
        self.backend = (
            ("numpy" if HAVE_NUMPY else "pure") if backend == "auto" else backend
        )
        self.batches_seen = 0
        self.events_seen = 0
        self._init_state()
        METRICS.counter("fleet.fleets").inc()

    def _init_state(self) -> None:
        initial = self.compiled.initial
        code = self.compiled.verdict_codes[initial]
        if self.backend == "numpy":
            self._states = _np.full(self.num_streams, initial, dtype=_np.int64)
            self._verdicts = _np.full(self.num_streams, code, dtype=_np.int8)
            self._positions = _np.zeros(self.num_streams, dtype=_np.int64)
        else:
            self._states = [initial] * self.num_streams
            self._verdicts = [code] * self.num_streams
            self._positions = [0] * self.num_streams

    @classmethod
    def for_formula(
        cls,
        formula,
        num_streams: int,
        alphabet=None,
        *,
        backend: str = "auto",
        use_cache: bool = True,
    ) -> MonitorFleet:
        return cls(
            CompiledMonitor.for_formula(formula, alphabet, use_cache=use_cache),
            num_streams,
            backend=backend,
        )

    # ---------------------------------------------------------------- stepping

    def step_broadcast(self, symbol: Symbol) -> None:
        """Feed the same symbol to every stream."""
        column = self.compiled.index_of(symbol)
        if self.backend == "numpy":
            self._states = self.compiled.np_table[self._states, column]
            self._positions += 1
            self._sticky_update_all()
        else:
            table, k = self.compiled.table, self.compiled.num_symbols
            self._states = [table[s * k + column] for s in self._states]
            self._positions = [p + 1 for p in self._positions]
            self._sticky_update_all()
        self._count_batch(self.num_streams)

    def step_aligned(self, row) -> None:
        """Feed one symbol per stream (``len(row) == num_streams``)."""
        if len(row) != self.num_streams:
            raise ValueError(
                f"aligned row has {len(row)} symbols for {self.num_streams} streams"
            )
        columns = self.compiled.encode_row(row)
        if self.backend == "numpy":
            columns = _np.asarray(columns, dtype=_np.int64)
            self._states = self.compiled.np_table[self._states, columns]
            self._positions += 1
            self._sticky_update_all()
        else:
            table, k = self.compiled.table, self.compiled.num_symbols
            self._states = [
                table[s * k + c] for s, c in zip(self._states, columns)
            ]
            self._positions = [p + 1 for p in self._positions]
            self._sticky_update_all()
        self._count_batch(self.num_streams)

    def step_events(self, events: Sequence[tuple[int, Symbol]]) -> None:
        """Apply a sparse batch of ``(stream, symbol)`` events.

        Events for one stream apply in list order; different streams are
        independent.  An empty batch is a no-op that still counts as a
        batch.  Everything is validated before any mutation.
        """
        if not len(events):
            self._count_batch(0)
            return
        # zip(*) unzips at C speed; the columnar path takes it from there.
        raw_ids, symbols = zip(*events)
        self.step_events_columns(raw_ids, symbols)

    def step_events_columns(self, ids, symbols) -> None:
        """Apply a sparse batch given as parallel columns.

        ``ids`` is a sequence of stream indices, ``symbols`` the matching
        sequence of symbols (a plain string over a single-character
        alphabet is the vectorized fast path — this is the high-throughput
        wire format, skipping per-event Python objects entirely).  Same
        ordering and validation semantics as :meth:`step_events`.
        """
        if len(ids) != len(symbols):
            raise ValueError(
                f"columnar batch has {len(ids)} ids for {len(symbols)} symbols"
            )
        if not len(ids):
            self._count_batch(0)
            return
        if self.backend == "numpy":
            try:
                id_array = _np.fromiter(ids, dtype=_np.int64, count=len(ids))
            except (TypeError, ValueError):
                id_array = _np.asarray([int(s) for s in ids], dtype=_np.int64)
            out_of_range = (id_array < 0) | (id_array >= self.num_streams)
            if out_of_range.any():
                bad = int(id_array[int(_np.argmax(out_of_range))])
                raise ValueError(
                    f"stream id {bad} out of range for fleet of {self.num_streams}"
                )
            columns = _np.asarray(
                self.compiled.encode_row(symbols), dtype=_np.int64
            )
            self._apply_events_numpy(id_array, columns)
            self._count_batch(len(ids))
            return
        ids_list: list[int] = []
        columns_list: list[int] = []
        for stream, symbol in zip(ids, symbols):
            if not 0 <= stream < self.num_streams:
                raise ValueError(
                    f"stream id {stream} out of range for fleet of {self.num_streams}"
                )
            ids_list.append(stream)
            columns_list.append(self.compiled.index_of(symbol))
        self._apply_events_pure(ids_list, columns_list)
        self._count_batch(len(ids_list))

    # ------------------------------------------------------------ numpy kernels

    def _sticky_update_all(self) -> None:
        if self.backend == "numpy":
            fresh = self.compiled.np_verdicts[self._states]
            _np.copyto(self._verdicts, fresh, where=self._verdicts == PENDING)
        else:
            codes = self.compiled.verdict_codes
            self._verdicts = [
                v if v != PENDING else codes[s]
                for v, s in zip(self._verdicts, self._states)
            ]

    def _apply_events_numpy(self, ids, columns) -> None:
        # Occurrence split: the r-th event of each stream lands in round r,
        # so one stream's repeated events apply in order while every round
        # remains a single duplicate-free gather.
        order = _np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        arange = _np.arange(ids.size, dtype=_np.int64)
        group_start = _np.empty(ids.size, dtype=bool)
        group_start[0] = True
        group_start[1:] = sorted_ids[1:] != sorted_ids[:-1]
        anchors = _np.maximum.accumulate(_np.where(group_start, arange, 0))
        occurrence = _np.empty(ids.size, dtype=_np.int64)
        occurrence[order] = arange - anchors
        table, verdicts = self.compiled.np_table, self.compiled.np_verdicts
        for round_index in range(int(occurrence.max()) + 1):
            pick = occurrence == round_index
            touched = ids[pick]
            self._states[touched] = table[self._states[touched], columns[pick]]
            fresh = verdicts[self._states[touched]]
            current = self._verdicts[touched]
            self._verdicts[touched] = _np.where(
                current == PENDING, fresh, current
            )
        _np.add.at(self._positions, ids, 1)

    def _apply_events_pure(self, ids: list[int], columns: list[int]) -> None:
        table, k = self.compiled.table, self.compiled.num_symbols
        codes = self.compiled.verdict_codes
        states, verdicts, positions = self._states, self._verdicts, self._positions
        for stream, column in zip(ids, columns):
            state = table[states[stream] * k + column]
            states[stream] = state
            if verdicts[stream] == PENDING:
                verdicts[stream] = codes[state]
            positions[stream] += 1

    def _count_batch(self, events: int) -> None:
        self.batches_seen += 1
        self.events_seen += events
        METRICS.counter("fleet.batches").inc()
        if events:
            METRICS.counter("fleet.events").inc(events)

    # ----------------------------------------------------------------- reading

    def verdict_codes(self) -> list[int]:
        """The sticky verdict vector as raw codes (a fresh list)."""
        return [int(v) for v in self._verdicts]

    def verdicts(self) -> list[Verdict3]:
        """The sticky verdict vector as :class:`Verdict3` values."""
        return [CODE_TO_VERDICT[int(v)] for v in self._verdicts]

    def states(self) -> list[int]:
        return [int(s) for s in self._states]

    def positions(self) -> list[int]:
        """Events consumed per stream (the scalar monitor's ``position``)."""
        return [int(p) for p in self._positions]

    def counts(self) -> FleetCounts:
        if self.backend == "numpy":
            tally = _np.bincount(self._verdicts, minlength=3)
            return FleetCounts(
                violated=int(tally[VIOLATED]),
                satisfied=int(tally[SATISFIED]),
                pending=int(tally[PENDING]),
            )
        return FleetCounts(
            violated=sum(1 for v in self._verdicts if v == VIOLATED),
            satisfied=sum(1 for v in self._verdicts if v == SATISFIED),
            pending=sum(1 for v in self._verdicts if v == PENDING),
        )

    def reset(self) -> None:
        """Return every stream to the initial state and verdict."""
        self.batches_seen = 0
        self.events_seen = 0
        self._init_state()

    def __len__(self) -> int:
        return self.num_streams

    def __repr__(self) -> str:
        return (
            f"MonitorFleet(streams={self.num_streams}, backend={self.backend},"
            f" {self.counts().line()})"
        )


def scalar_monitors(compiled: CompiledMonitor, num_streams: int) -> list:
    """``num_streams`` independent scalar monitors over one compilation.

    The reference route for the differential oracle and the benchmark: the
    per-stream :class:`~repro.core.monitor.PrefixMonitor` loop the fleet
    must agree with (and outrun).
    """
    from repro.core.monitor import PrefixMonitor

    return [
        PrefixMonitor(
            compiled.automaton, live=compiled.live, colive=compiled.colive
        )
        for _ in range(num_streams)
    ]
