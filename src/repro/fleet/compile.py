"""Compile a property once into a dense monitor table.

A :class:`CompiledMonitor` is everything a prefix monitor needs, flattened
into arrays indexed by small ints:

* ``table`` — the complete deterministic transition structure as one flat
  row-major list of ``n·|Σ|`` ints (:func:`repro.fastpath.tables.flat_table`);
* ``verdict_codes`` — one code per state from the residual-language
  analysis: ``VIOLATED`` where the residual is empty (no extension can
  satisfy Π), ``SATISFIED`` where the residual complement is empty (every
  extension satisfies Π), ``PENDING`` elsewhere.  The two decided regions
  are successor-closed, so a verdict read off the current state is
  automatically sticky.

Compilation is the expensive part (formula → NBA → Safra → residual
emptiness twice); stepping is two array reads per event.  One compiled
object therefore serves any number of monitors — the scalar
:class:`repro.core.monitor.PrefixMonitor` holds one stream state over it,
a :class:`repro.fleet.fleet.MonitorFleet` holds a million.

The ``for_formula`` compile cache is a locked
:class:`repro.engine.cache.LRUCache` (the ``monitor_compiled`` bank entry),
so concurrent fleets for the same property share one construction; the
concurrency stress tests in ``tests/test_monitor_concurrency.py`` hammer
exactly this seam.

Unknown-symbol contract
-----------------------

Stepping with a symbol outside the property's alphabet raises
:class:`repro.errors.AlphabetError` naming the symbol, and the monitor or
fleet is left **unchanged** (state, verdicts and positions all keep their
pre-step values).  Symbols are validated before any state mutation; there
is no implicit ``KeyError`` and no partial batch application.
"""

from __future__ import annotations

from repro.core.monitor import Verdict3
from repro.engine.metrics import METRICS
from repro.errors import AlphabetError
from repro.fastpath.tables import flat_table
from repro.obs.spans import span
from repro.omega.automaton import DetAutomaton
from repro.omega.emptiness import nonempty_states
from repro.words.alphabet import Alphabet, Symbol

try:  # pragma: no cover - exercised implicitly by every numpy-backend test
    import numpy as _np
except ImportError:  # pragma: no cover - container without numpy
    _np = None

#: Whether the vectorized fleet backend may be used at all.
HAVE_NUMPY = _np is not None

#: Verdict codes, chosen so a fresh ``zeros`` array means "all pending".
PENDING, VIOLATED, SATISFIED = 0, 1, 2

#: Code → the scalar monitor's enum (index = code).
CODE_TO_VERDICT = (Verdict3.PENDING, Verdict3.VIOLATED, Verdict3.SATISFIED)


class CompiledMonitor:
    """One property, compiled once, ready to step any number of streams."""

    __slots__ = (
        "automaton",
        "live",
        "colive",
        "num_states",
        "num_symbols",
        "table",
        "verdict_codes",
        "np_table",
        "np_verdicts",
        "_byte_lut",
        "_np_byte_lut",
        "_classification",
    )

    def __init__(
        self,
        automaton: DetAutomaton,
        *,
        live: frozenset[int] | None = None,
        colive: frozenset[int] | None = None,
    ) -> None:
        with span("fleet.compile", states=automaton.num_states):
            self.automaton = automaton
            self.live = nonempty_states(automaton) if live is None else live
            self.colive = (
                nonempty_states(automaton.complement()) if colive is None else colive
            )
            self.num_states = automaton.num_states
            self.num_symbols = len(automaton.alphabet)
            self.table: list[int] = flat_table(automaton._delta)  # noqa: SLF001
            # Dead beats codead, matching the scalar verdict order (a state
            # can never be both: the two residuals cannot both be empty).
            self.verdict_codes: list[int] = [
                VIOLATED
                if state not in self.live
                else SATISFIED
                if state not in self.colive
                else PENDING
                for state in range(self.num_states)
            ]
            # Single-character string alphabets (the language-theoretic view)
            # get a 256-entry byte lookup table, so a whole row arriving as a
            # string encodes with one vectorized gather instead of one dict
            # probe per stream.
            lut: list[int] | None = [-1] * 256
            for index, symbol in enumerate(automaton.alphabet):
                if isinstance(symbol, str) and len(symbol) == 1 and ord(symbol) < 256:
                    lut[ord(symbol)] = index
                else:
                    lut = None
                    break
            self._byte_lut = lut
            # The numpy twins are built eagerly: lazy initialization would
            # need its own lock once fleets step from worker threads.
            if HAVE_NUMPY:
                self.np_table = _np.asarray(self.table, dtype=_np.int64).reshape(
                    self.num_states, self.num_symbols
                )
                self.np_verdicts = _np.asarray(self.verdict_codes, dtype=_np.int8)
                self._np_byte_lut = (
                    _np.asarray(lut, dtype=_np.int64) if lut is not None else None
                )
            else:
                self.np_table = None
                self.np_verdicts = None
                self._np_byte_lut = None
            self._classification = None
            METRICS.counter("fleet.compile").inc()

    # ------------------------------------------------------------- construction

    @classmethod
    def for_formula(
        cls,
        formula,
        alphabet: Alphabet | None = None,
        *,
        use_cache: bool = True,
    ) -> CompiledMonitor:
        """Compile a formula, sharing one construction per ``(φ, Σ)``.

        With ``use_cache`` (the default) the automaton, both residual
        analyses and the compiled table itself go through the engine's
        locked caches, so a fleet of monitors for the same property — even
        built concurrently from many threads — shares one compilation.
        """
        if use_cache:
            from repro.engine.cache import (
                CACHES,
                cached_formula_to_automaton,
                cached_nonempty_states,
                formula_key,
            )
            from repro.core.classifier import default_alphabet

            alphabet = alphabet or default_alphabet(formula)
            cache = CACHES.cache("monitor_compiled")

            def compute() -> CompiledMonitor:
                automaton = cached_formula_to_automaton(formula, alphabet)
                return cls(
                    automaton,
                    live=cached_nonempty_states(automaton),
                    colive=cached_nonempty_states(automaton.complement()),
                )

            return cache.get_or_compute(formula_key(formula, alphabet), compute)
        from repro.core.classifier import formula_to_automaton

        return cls(formula_to_automaton(formula, alphabet))

    # ------------------------------------------------------------------ stepping

    @property
    def initial(self) -> int:
        return self.automaton.initial

    @property
    def alphabet(self) -> Alphabet:
        return self.automaton.alphabet

    def index_of(self, symbol: Symbol) -> int:
        """The symbol's column index; :class:`AlphabetError` when unknown."""
        return self.automaton.alphabet.index(symbol)

    def step(self, state: int, symbol: Symbol) -> int:
        """One scalar transition through the flat table."""
        return self.table[state * self.num_symbols + self.index_of(symbol)]

    def verdict_code(self, state: int) -> int:
        return self.verdict_codes[state]

    def verdict_at(self, state: int) -> Verdict3:
        return CODE_TO_VERDICT[self.verdict_codes[state]]

    # ------------------------------------------------------------------ encoding

    def encode_row(self, row):
        """Encode a row of symbols (one per stream) into column indices.

        A plain string over a single-character alphabet is the fast path:
        one vectorized byte-table gather for the whole row.  Any other
        sequence encodes symbol by symbol.  Unknown symbols raise
        :class:`AlphabetError` before anything is mutated.
        """
        if (
            isinstance(row, str)
            and self._byte_lut is not None
            and self._np_byte_lut is not None
        ):
            try:
                raw = _np.frombuffer(row.encode("latin-1"), dtype=_np.uint8)
            except UnicodeEncodeError:
                raw = None  # non-latin-1 char: let the slow path name it
            if raw is not None:
                codes = self._np_byte_lut[raw]
                if (codes < 0).any():
                    bad = row[int(_np.argmax(codes < 0))]
                    raise AlphabetError(
                        f"symbol {bad!r} not in alphabet {self.automaton.alphabet}"
                    )
                return codes
        if (
            isinstance(row, (list, tuple))
            and self._byte_lut is not None
            and self._np_byte_lut is not None
        ):
            # A sequence of single-character symbols joins into a string at
            # C speed; the length check proves every element was exactly one
            # character, so the vectorized string path above applies.
            try:
                joined = "".join(row)
            except TypeError:
                joined = None
            if joined is not None and len(joined) == len(row):
                return self.encode_row(joined)
        if isinstance(row, str) and self._byte_lut is not None:
            lut = self._byte_lut
            codes = []
            for char in row:
                code = lut[ord(char)] if ord(char) < 256 else -1
                if code < 0:
                    raise AlphabetError(
                        f"symbol {char!r} not in alphabet {self.automaton.alphabet}"
                    )
                codes.append(code)
            return codes
        return [self.index_of(symbol) for symbol in row]

    # ------------------------------------------------------------------ analysis

    @property
    def can_violate(self) -> bool:
        """Is a finite VIOLATED witness reachable at all?"""
        return any(s not in self.live for s in self.automaton.reachable)

    @property
    def can_satisfy(self) -> bool:
        """Is a finite SATISFIED witness reachable at all?"""
        return any(s not in self.colive for s in self.automaton.reachable)

    def classification(self):
        """The property's hierarchy verdict (computed lazily, then kept).

        Safety properties can only ever add VIOLATED verdicts, guarantee
        properties only SATISFIED ones, clopen properties always decide;
        see ``docs/MONITORING.md`` for the full table.
        """
        if self._classification is None:
            from repro.omega.classify import classify

            self._classification = classify(self.automaton)
        return self._classification

    def __repr__(self) -> str:
        return (
            f"CompiledMonitor(states={self.num_states},"
            f" symbols={self.num_symbols},"
            f" decided={sum(1 for c in self.verdict_codes if c != PENDING)})"
        )
