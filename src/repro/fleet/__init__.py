"""Vectorized monitor fleets: one property, compiled once, N streams.

The paper decides the lower hierarchy on *prefixes* — a safety violation
and a guarantee satisfaction are both witnessed by a finite prefix — which
is exactly what a runtime monitor exploits.  This package scales that
machinery from one stream to millions:

* :class:`~repro.fleet.compile.CompiledMonitor` — a property (formula or
  deterministic ω-automaton) compiled **once** into a flat dense transition
  table plus a per-state verdict code array (the live/colive analysis baked
  in);
* :class:`~repro.fleet.fleet.MonitorFleet` — N concurrent stream states as
  one integer array, stepped per event batch with a single gather
  (``table[states, symbols]``), verdicts extracted as vectorized sticky
  masks; a pure-Python fallback runs everywhere numpy does not;
* :mod:`~repro.fleet.stream` — the JSONL event-batch format behind
  ``python -m repro monitor`` and the stream driver with obs spans.

:class:`repro.core.monitor.PrefixMonitor` is the N=1 view of the same
compiler — both run the same table and the same verdict codes, and the qa
``fleet`` oracle holds them to bit-identical verdict vectors.

See ``docs/MONITORING.md`` for the API, the stream format, and the verdict
semantics per hierarchy class.
"""

from repro.fleet.compile import (
    CODE_TO_VERDICT,
    HAVE_NUMPY,
    PENDING,
    SATISFIED,
    VIOLATED,
    CompiledMonitor,
)
from repro.fleet.fleet import FleetCounts, MonitorFleet
from repro.fleet.stream import (
    Batch,
    StreamReport,
    apply_batch,
    parse_batch,
    run_stream,
    symbol_from_json,
    symbol_to_json,
)

__all__ = [
    "Batch",
    "CODE_TO_VERDICT",
    "CompiledMonitor",
    "FleetCounts",
    "HAVE_NUMPY",
    "MonitorFleet",
    "PENDING",
    "SATISFIED",
    "StreamReport",
    "VIOLATED",
    "apply_batch",
    "parse_batch",
    "run_stream",
    "symbol_from_json",
    "symbol_to_json",
]
