"""The JSONL event-batch stream format behind ``python -m repro monitor``.

One line = one batch, applied atomically to the fleet.  Three shapes:

``{"all": SYM}``
    broadcast — every stream receives ``SYM``;
``{"row": "abab…"}`` or ``{"row": [SYM, …]}``
    aligned — stream ``i`` receives the ``i``-th symbol; a plain string
    works for single-character alphabets and is the vectorized fast path
    (one million streams = one million characters on one line);
``{"events": [[STREAM, SYM], …]}``
    sparse — only the named streams advance; one stream may appear several
    times (events apply in list order); ``[]`` is a valid empty batch;
``{"ids": [STREAM, …], "symbols": "ab…" | [SYM, …]}``
    sparse, columnar — the same events as two parallel columns.  The
    high-throughput form: with ``symbols`` as a string the whole batch
    encodes with one vectorized gather and no per-event JSON objects.

Symbols are encoded as JSON strings for letter alphabets and as sorted
lists of proposition names for powerset alphabets (``["p","q"]`` ↦ the
frozenset ``{p, q}``).  Blank lines and lines starting with ``#`` are
skipped.

Malformed lines raise :class:`repro.errors.MonitorError` carrying the line
number; unknown symbols and out-of-range stream ids surface as
``AlphabetError``/``ValueError`` *before* the batch mutates anything, so a
stream that dies mid-file leaves the fleet in the state of the last good
batch.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.engine.metrics import METRICS
from repro.errors import MonitorError
from repro.fleet.fleet import FleetCounts, MonitorFleet
from repro.obs.spans import span
from repro.words.alphabet import Symbol


def symbol_to_json(symbol: Symbol) -> Any:
    """The JSON encoding of one symbol (inverse of :func:`symbol_from_json`)."""
    if isinstance(symbol, frozenset):
        return sorted(symbol)
    return symbol


def symbol_from_json(data: Any) -> Symbol:
    """Decode one symbol: strings stay strings, lists become frozensets."""
    if isinstance(data, str):
        return data
    if isinstance(data, list):
        return frozenset(data)
    raise MonitorError(
        f"a symbol must be a string or a list of proposition names, got {data!r}"
    )


@dataclass(frozen=True, slots=True)
class Batch:
    """One parsed stream line: its kind and decoded payload."""

    kind: str  # "all" | "row" | "events" | "columns"
    payload: Any
    line_number: int = 0

    def event_count(self, num_streams: int) -> int:
        if self.kind == "events":
            return len(self.payload)
        if self.kind == "columns":
            return len(self.payload[0])
        return num_streams


def parse_batch(text: str, line_number: int = 0) -> Batch | None:
    """Parse one stream line; ``None`` for blank/comment lines."""
    stripped = text.strip()
    if not stripped or stripped.startswith("#"):
        return None
    try:
        obj = json.loads(stripped)
    except json.JSONDecodeError as error:
        raise MonitorError(f"line {line_number}: not valid JSON: {error}") from None
    if isinstance(obj, dict) and set(obj) == {"ids", "symbols"}:
        ids, symbols = obj["ids"], obj["symbols"]
        if not isinstance(ids, list) or not all(isinstance(i, int) for i in ids):
            raise MonitorError(f'line {line_number}: "ids" must be a list of ints')
        if isinstance(symbols, list):
            symbols = [symbol_from_json(s) for s in symbols]
        elif not isinstance(symbols, str):
            raise MonitorError(
                f'line {line_number}: "symbols" must be a string or a list'
            )
        if len(ids) != len(symbols):
            raise MonitorError(
                f"line {line_number}: {len(ids)} ids for {len(symbols)} symbols"
            )
        return Batch("columns", (ids, symbols), line_number)
    if not isinstance(obj, dict) or len(obj) != 1:
        raise MonitorError(
            f"line {line_number}: a batch is one object with exactly one of"
            f' "all", "row" or "events" (or the columnar "ids" + "symbols" pair)'
        )
    key, value = next(iter(obj.items()))
    if key == "all":
        return Batch("all", symbol_from_json(value), line_number)
    if key == "row":
        if isinstance(value, str):
            return Batch("row", value, line_number)
        if isinstance(value, list):
            return Batch("row", [symbol_from_json(s) for s in value], line_number)
        raise MonitorError(
            f'line {line_number}: "row" must be a string or a list of symbols'
        )
    if key == "events":
        if not isinstance(value, list):
            raise MonitorError(f'line {line_number}: "events" must be a list')
        events = []
        for entry in value:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[0], int)
            ):
                raise MonitorError(
                    f"line {line_number}: each event must be [stream, symbol],"
                    f" got {entry!r}"
                )
            events.append((entry[0], symbol_from_json(entry[1])))
        return Batch("events", events, line_number)
    raise MonitorError(
        f'line {line_number}: unknown batch key {key!r} (want "all", "row" or "events")'
    )


def apply_batch(fleet: MonitorFleet, batch: Batch) -> int:
    """Apply one parsed batch; returns the number of events consumed."""
    if batch.kind == "all":
        fleet.step_broadcast(batch.payload)
    elif batch.kind == "row":
        fleet.step_aligned(batch.payload)
    elif batch.kind == "columns":
        fleet.step_events_columns(*batch.payload)
    else:
        fleet.step_events(batch.payload)
    return batch.event_count(fleet.num_streams)


@dataclass
class StreamReport:
    """What one stream run did, for the CLI summary and the tests."""

    streams: int
    backend: str
    batches: int = 0
    events: int = 0
    wall_seconds: float = 0.0
    counts: FleetCounts = field(
        default_factory=lambda: FleetCounts(violated=0, satisfied=0, pending=0)
    )

    @property
    def events_per_second(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds else 0.0

    def render(self) -> str:
        lines = [
            f"streams:  {self.streams} ({self.backend} backend)",
            f"batches:  {self.batches}",
            f"events:   {self.events} ({self.events_per_second:,.0f} events/s)",
            f"verdicts: {self.counts.line()}",
        ]
        return "\n".join(lines)


def run_stream(
    fleet: MonitorFleet,
    lines: Iterable[str],
    *,
    on_batch=None,
) -> StreamReport:
    """Drive a fleet over an iterable of JSONL lines (a file handle works).

    ``on_batch`` — optional callback ``(batch_index, fleet)`` invoked after
    every applied batch (the CLI's ``--per-batch`` output).
    """
    from repro.obs.telemetry.heartbeat import heartbeat

    report = StreamReport(streams=fleet.num_streams, backend=fleet.backend)
    start = time.perf_counter()
    with span(
        "fleet.stream", streams=fleet.num_streams, backend=fleet.backend
    ) as stream_span, heartbeat("fleet.stream") as beat:
        # Events, not batches: events/s is the fleet's real throughput, and
        # a telemetry sidecar polling /progress sees it live.
        beat.note("streams", fleet.num_streams)
        beat.note("backend", fleet.backend)
        for line_number, text in enumerate(lines, start=1):
            batch = parse_batch(text, line_number)
            if batch is None:
                continue
            consumed = apply_batch(fleet, batch)
            report.events += consumed
            report.batches += 1
            beat.advance(consumed)
            if on_batch is not None:
                on_batch(report.batches, fleet)
        stream_span.set_attribute("batches", report.batches)
        stream_span.set_attribute("events", report.events)
    report.wall_seconds = time.perf_counter() - start
    report.counts = fleet.counts()
    METRICS.timer("fleet.stream").observe(report.wall_seconds)
    return report
