"""Semantics of LTL+Past over ultimately-periodic words and finite words.

Three entry points:

* :func:`holds` — ``(σ, 0) ⊨ φ`` for a lasso word σ;
* :func:`end_satisfies` — the paper's ``σ ⊨̃ p`` for a finite word and a
  past formula (``p`` holds at the last position of σ);
* :func:`esat_language` — ``esat(p)`` as a finitary language, built from
  the deterministic *past tester*: the truth values of all past-operator
  subformulas at position ``j`` are a function of their values at ``j−1``
  and the current state, so they form a DFA state (the [LPZ85]
  construction behind Proposition 5.3).

Evaluation over a lasso proceeds in two phases: a forward pass computes all
pure-past subformulas, pumping the loop until the (loop-offset, tester
state) pair repeats — after which the word *and* every past value are
jointly periodic — and a fixpoint pass evaluates future operators on the
resulting finite cyclic structure (least fixpoints for U/F, greatest for
W/R/G).

Future operators nested *inside* past operators are rejected
(:class:`~repro.errors.UnsupportedFragmentError`); the paper's normal forms
never require them.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import UnsupportedFragmentError
from repro.finitary.dfa import DFA
from repro.finitary.language import FinitaryLanguage
from repro.logic.ast import (
    Always,
    And,
    Eventually,
    FalseConst,
    Formula,
    Historically,
    Next,
    Not,
    Once,
    Or,
    Previous,
    Prop,
    Release,
    Since,
    TrueConst,
    Unless,
    Until,
    WeakPrevious,
)
from repro.words.alphabet import Alphabet, Symbol
from repro.words.finite import FiniteWord
from repro.words.lasso import LassoWord

_PAST_OPERATORS = (Previous, WeakPrevious, Since, Once, Historically)
_FUTURE_OPERATORS = (Next, Until, Unless, Release, Eventually, Always)


def prop_holds(name: str, symbol: Symbol) -> bool:
    """Interpretation of a basic proposition on a state.

    Over the powerset alphabet ``2^AP`` a symbol is the set of propositions
    holding in the state; over an abstract alphabet (the paper's
    ``Σ = {a, b, …}``) the states themselves serve as propositions, true
    exactly on themselves.
    """
    if isinstance(symbol, (frozenset, set)):
        return name in symbol
    return symbol == name


class PastTester:
    """The deterministic transducer computing all pure-past subformula values.

    ``advance(state, symbol)`` returns the successor tester state; ``values``
    of a state give the truth of every pure-past subformula at the current
    position.  ``START`` is the state before any input.
    """

    START = None

    def __init__(self, formula: Formula) -> None:
        self.formula = formula
        subformulas = formula.subformulas()
        self.pure_past: list[Formula] = [n for n in subformulas if n.is_past_formula()]
        self.memory_nodes: list[Formula] = [
            n for n in self.pure_past if isinstance(n, _PAST_OPERATORS)
        ]
        for node in subformulas:
            if isinstance(node, _PAST_OPERATORS) and not node.is_past_formula():
                raise UnsupportedFragmentError(
                    f"future operator nested inside past operator in {node!r}"
                )

    def advance(
        self, state: tuple[bool, ...] | None, symbol: Symbol
    ) -> tuple[tuple[bool, ...], dict[Formula, bool]]:
        """One step: previous memory (or ``START``) plus the current state
        symbol give the new memory and all pure-past values here."""
        at_start = state is None
        previous = dict(zip(self.memory_nodes, state)) if state is not None else {}
        values: dict[Formula, bool] = {}
        for node in self.pure_past:
            if isinstance(node, Prop):
                values[node] = prop_holds(node.name, symbol)
            elif isinstance(node, TrueConst):
                values[node] = True
            elif isinstance(node, FalseConst):
                values[node] = False
            elif isinstance(node, Not):
                values[node] = not values[node.operand]
            elif isinstance(node, And):
                values[node] = all(values[op] for op in node.operands)
            elif isinstance(node, Or):
                values[node] = any(values[op] for op in node.operands)
            elif isinstance(node, Previous):
                values[node] = (not at_start) and previous[node]
            elif isinstance(node, WeakPrevious):
                values[node] = at_start or previous[node]
            elif isinstance(node, Since):
                held = False if at_start else previous[node]
                values[node] = values[node.right] or (values[node.left] and held)
            elif isinstance(node, Once):
                held = False if at_start else previous[node]
                values[node] = values[node.operand] or held
            elif isinstance(node, Historically):
                held = True if at_start else previous[node]
                values[node] = values[node.operand] and held
            else:  # a future node inside pure_past is impossible by selection
                raise AssertionError(f"unexpected node in past closure: {node!r}")
        # Memory for the next position: for Y/Z the operand's value now, for
        # S/O/H the operator's own value now.
        memory = tuple(
            values[n.operand] if isinstance(n, (Previous, WeakPrevious)) else values[n]
            for n in self.memory_nodes
        )
        return memory, values


def _stabilized_past_values(
    formula: Formula, lasso: LassoWord
) -> tuple[list[dict[Formula, bool]], int, int]:
    """Forward pass: pure-past values per position for ``j ∈ [0, T+C)`` such
    that position ``j ≥ T`` behaves like ``j + C``.  Returns (values, T, C)."""
    tester = PastTester(formula)
    state: tuple[bool, ...] | None = PastTester.START
    per_position: list[dict[Formula, bool]] = []
    seen: dict[tuple[int, tuple[bool, ...] | None], int] = {}
    position = 0
    stem_length = len(lasso.stem)
    loop_length = len(lasso.loop)
    while True:
        if position >= stem_length:
            key = ((position - stem_length) % loop_length, state)
            if key in seen:
                start = seen[key]
                return per_position[:position], start, position - start
            seen[key] = position
        state, values = tester.advance(state, lasso[position])
        per_position.append(values)
        position += 1


class EvaluationTable:
    """Truth values of every subformula at every position of the folded lasso.

    Positions ``0..horizon-1`` cover the transient part plus one cycle;
    ``fold(j)`` maps an arbitrary position into that window.  Used by
    :func:`holds` and by the witness explanations of
    :mod:`repro.logic.explain`.
    """

    def __init__(self, formula: Formula, lasso: LassoWord) -> None:
        self.formula = formula
        self.lasso = lasso
        values, transient, cycle = _stabilized_past_values(formula, lasso)
        self.transient = transient
        self.cycle = cycle
        self.horizon = transient + cycle
        self.arrays = _future_pass(formula, values, transient, cycle)

    def fold(self, position: int) -> int:
        if position < self.horizon:
            return position
        return self.transient + (position - self.transient) % self.cycle

    def value(self, subformula: Formula, position: int) -> bool:
        return self.arrays[subformula][self.fold(position)]

    def successor(self, position: int) -> int:
        folded = self.fold(position)
        return folded + 1 if folded + 1 < self.horizon else self.transient

    def positions_where(self, subformula: Formula, *, truth: bool = True) -> list[int]:
        return [j for j in range(self.horizon) if self.arrays[subformula][j] == truth]


def evaluation_table(formula: Formula, lasso: LassoWord) -> EvaluationTable:
    """Evaluate every subformula at every (folded) position."""
    return EvaluationTable(formula, lasso)


def holds(formula: Formula, lasso: LassoWord, position: int = 0) -> bool:
    """``(σ, position) ⊨ φ`` for an ultimately-periodic σ.

    Past operators look below ``position``, so the evaluation always runs
    from the word's origin; ``position`` only selects where to read off the
    answer (folded into the cycle when beyond the stabilization horizon).
    """
    table = EvaluationTable(formula, lasso)
    return table.value(formula, position)


def _future_pass(
    formula: Formula,
    values: list[dict[Formula, bool]],
    transient: int,
    cycle: int,
) -> dict[Formula, list[bool]]:
    horizon = transient + cycle

    def successor(j: int) -> int:
        return j + 1 if j + 1 < horizon else transient

    arrays: dict[Formula, list[bool]] = {}
    for node in formula.subformulas():
        if node.is_past_formula():
            arrays[node] = [values[j][node] for j in range(horizon)]
            continue
        if isinstance(node, Not):
            arrays[node] = [not v for v in arrays[node.operand]]
        elif isinstance(node, And):
            arrays[node] = [all(arrays[op][j] for op in node.operands) for j in range(horizon)]
        elif isinstance(node, Or):
            arrays[node] = [any(arrays[op][j] for op in node.operands) for j in range(horizon)]
        elif isinstance(node, Next):
            child = arrays[node.operand]
            arrays[node] = [child[successor(j)] for j in range(horizon)]
        elif isinstance(node, (Until, Eventually)):
            left = arrays[node.left] if isinstance(node, Until) else [True] * horizon
            right = arrays[node.right if isinstance(node, Until) else node.operand]
            arrays[node] = _fixpoint(
                horizon, successor, seed=False,
                step=lambda j, nxt: right[j] or (left[j] and nxt),
            )
        elif isinstance(node, (Unless, Always)):
            left = arrays[node.left] if isinstance(node, Unless) else arrays[node.operand]
            right = arrays[node.right] if isinstance(node, Unless) else [False] * horizon
            arrays[node] = _fixpoint(
                horizon, successor, seed=True,
                step=lambda j, nxt: right[j] or (left[j] and nxt),
            )
        elif isinstance(node, Release):
            left, right = arrays[node.left], arrays[node.right]
            arrays[node] = _fixpoint(
                horizon, successor, seed=True,
                step=lambda j, nxt: right[j] and (left[j] or nxt),
            )
        else:
            raise AssertionError(f"unhandled node {node!r}")
    return arrays


def _fixpoint(horizon, successor, *, seed, step) -> list[bool]:
    current = [seed] * horizon
    while True:
        updated = [step(j, current[successor(j)]) for j in range(horizon)]
        if updated == current:
            return current
        current = updated


def satisfies(lasso: LassoWord, formula: Formula) -> bool:
    """``σ ⊨ φ`` — the paper's satisfaction at position 0."""
    return holds(formula, lasso, 0)


def end_satisfies(word: FiniteWord | Sequence[Symbol], formula: Formula) -> bool:
    """``σ ⊨̃ p`` — the past formula p holds at σ's last position (σ non-empty)."""
    if not formula.is_past_formula():
        raise UnsupportedFragmentError(f"end-satisfaction needs a past formula, got {formula!r}")
    symbols: Iterable[Symbol] = word.symbols if isinstance(word, FiniteWord) else word
    symbols = tuple(symbols)
    if not symbols:
        raise ValueError("end-satisfaction is defined on non-empty words only")
    tester = PastTester(formula)
    state: tuple[bool, ...] | None = PastTester.START
    values: dict[Formula, bool] = {}
    for symbol in symbols:
        state, values = tester.advance(state, symbol)
    return values[formula]


def esat_language(formula: Formula, alphabet: Alphabet) -> FinitaryLanguage:
    """``esat(p)``: the finitary property defined by the past formula p,
    materialized as a (minimized) DFA via the deterministic past tester."""
    if not formula.is_past_formula():
        raise UnsupportedFragmentError(f"esat needs a past formula, got {formula!r}")
    tester = PastTester(formula)

    def successor(state, symbol):
        memory = None if state == "start" else state[0]
        new_memory, values = tester.advance(memory, symbol)
        return (new_memory, values[formula])

    def accepting(state) -> bool:
        return state != "start" and state[1]

    return FinitaryLanguage(DFA.build(alphabet, "start", successor, accepting))
