"""Syntactic classification of formulae (§4).

Two layers:

* **Normal forms** — exact recognizers for the paper's canonical shapes
  ``□p``, ``◇p``, ``⋀(□pᵢ ∨ ◇qᵢ)``, ``□◇p``, ``◇□p``, ``⋀(□◇pᵢ ∨ ◇□qᵢ)``
  with pure-past bodies, including the conjunct counts that grade the
  obligation and reactivity subhierarchies.
* **Syntactic fragments** — a sound, compositional grammar assigning every
  formula the set of classes it *syntactically* guarantees (the standard
  future-fragment rules: safety is closed under ∧,∨,X,W,R,G; guarantee
  under ∧,∨,X,U,F; recurrence additionally under G, W, R and □◇ of
  guarantee; persistence dually under F, U and ◇□ of safety; pure-past
  subformulae belong to every class).  Membership is sound but not
  complete — the semantic classifier (``repro.core``) is authoritative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classes import TemporalClass
from repro.logic.ast import (
    Always,
    And,
    Eventually,
    FalseConst,
    Formula,
    Next,
    Not,
    Or,
    Prop,
    Release,
    TrueConst,
    Unless,
    Until,
)

# ---------------------------------------------------------------------------
# Normal forms
# ---------------------------------------------------------------------------


def is_safety_formula(formula: Formula) -> bool:
    """``□p`` with p a past formula."""
    return isinstance(formula, Always) and formula.operand.is_past_formula()


def is_guarantee_formula(formula: Formula) -> bool:
    """``◇p`` with p a past formula."""
    return isinstance(formula, Eventually) and formula.operand.is_past_formula()


def is_simple_obligation_formula(formula: Formula) -> bool:
    """``□p ∨ ◇q`` (either disjunct may be missing)."""
    if is_safety_formula(formula) or is_guarantee_formula(formula):
        return True
    if not isinstance(formula, Or):
        return False
    return all(is_safety_formula(op) or is_guarantee_formula(op) for op in formula.operands)


def obligation_form_degree(formula: Formula) -> int | None:
    """``n`` when the formula is literally ``⋀ᵢ₌₁ⁿ (□pᵢ ∨ ◇qᵢ)``, else None."""
    conjuncts = formula.operands if isinstance(formula, And) else (formula,)
    if all(is_simple_obligation_formula(c) for c in conjuncts):
        return len(conjuncts)
    return None


def is_obligation_formula(formula: Formula) -> bool:
    return obligation_form_degree(formula) is not None


def is_recurrence_formula(formula: Formula) -> bool:
    """``□◇p`` with p a past formula."""
    return (
        isinstance(formula, Always)
        and isinstance(formula.operand, Eventually)
        and formula.operand.operand.is_past_formula()
    )


def is_persistence_formula(formula: Formula) -> bool:
    """``◇□p`` with p a past formula."""
    return (
        isinstance(formula, Eventually)
        and isinstance(formula.operand, Always)
        and formula.operand.operand.is_past_formula()
    )


def is_simple_reactivity_formula(formula: Formula) -> bool:
    """``□◇p ∨ ◇□q`` (either disjunct may be missing)."""
    if is_recurrence_formula(formula) or is_persistence_formula(formula):
        return True
    if not isinstance(formula, Or):
        return False
    return all(
        is_recurrence_formula(op) or is_persistence_formula(op) for op in formula.operands
    )


def reactivity_form_degree(formula: Formula) -> int | None:
    """``n`` when the formula is literally ``⋀ᵢ₌₁ⁿ (□◇pᵢ ∨ ◇□qᵢ)``, else None."""
    conjuncts = formula.operands if isinstance(formula, And) else (formula,)
    if all(is_simple_reactivity_formula(c) for c in conjuncts):
        return len(conjuncts)
    return None


def is_reactivity_formula(formula: Formula) -> bool:
    return reactivity_form_degree(formula) is not None


def normal_form_class(formula: Formula) -> TemporalClass | None:
    """The lowest class whose *normal form* the formula literally matches."""
    if is_safety_formula(formula):
        return TemporalClass.SAFETY
    if is_guarantee_formula(formula):
        return TemporalClass.GUARANTEE
    if is_obligation_formula(formula):
        return TemporalClass.OBLIGATION
    if is_recurrence_formula(formula):
        return TemporalClass.RECURRENCE
    if is_persistence_formula(formula):
        return TemporalClass.PERSISTENCE
    if is_reactivity_formula(formula):
        return TemporalClass.REACTIVITY
    return None


# ---------------------------------------------------------------------------
# Syntactic fragments
# ---------------------------------------------------------------------------

_S = TemporalClass.SAFETY
_G = TemporalClass.GUARANTEE
_O = TemporalClass.OBLIGATION
_R = TemporalClass.RECURRENCE
_P = TemporalClass.PERSISTENCE
_X = TemporalClass.REACTIVITY

_ALL = frozenset(TemporalClass)


def _up(classes: frozenset[TemporalClass]) -> frozenset[TemporalClass]:
    """Upward closure in the Figure-1 lattice, with reactivity as baseline."""
    result = {_X}
    for held in classes:
        for candidate in TemporalClass:
            if candidate.includes(held):
                result.add(candidate)
    return frozenset(result)


def syntactic_classes(formula: Formula) -> frozenset[TemporalClass]:
    """The set of classes the formula syntactically belongs to (sound)."""
    if formula.is_past_formula():
        return _ALL

    def combine_positive(parts: list[frozenset[TemporalClass]]) -> frozenset[TemporalClass]:
        # every class is closed under finite ∧ and ∨
        shared = _ALL
        for part in parts:
            shared &= part
        return _up(shared)

    if isinstance(formula, (And, Or)):
        return combine_positive([syntactic_classes(op) for op in formula.operands])
    if isinstance(formula, Not):
        inner = syntactic_classes(formula.operand)
        return _up(frozenset(c.dual() for c in inner))
    if isinstance(formula, Next):
        return syntactic_classes(formula.operand)
    if isinstance(formula, Eventually):
        inner = syntactic_classes(formula.operand)
        result = set()
        if _G in inner:
            result.add(_G)
        if _P in inner:
            result.add(_P)
        return _up(frozenset(result))
    if isinstance(formula, Always):
        inner = syntactic_classes(formula.operand)
        result = set()
        if _S in inner:
            result.add(_S)
        if _R in inner:
            result.add(_R)
        return _up(frozenset(result))
    if isinstance(formula, Until):
        left, right = syntactic_classes(formula.left), syntactic_classes(formula.right)
        result = set()
        if _G in left and _G in right:
            result.add(_G)
        if _P in left and _P in right:
            result.add(_P)
        return _up(frozenset(result))
    if isinstance(formula, (Unless, Release)):
        left, right = syntactic_classes(formula.left), syntactic_classes(formula.right)
        result = set()
        if _S in left and _S in right:
            result.add(_S)
        if _R in left and _R in right:
            result.add(_R)
        return _up(frozenset(result))
    if isinstance(formula, (Prop, TrueConst, FalseConst)):
        return _ALL
    # A past operator with future inside: no syntactic guarantee beyond ω-regularity.
    return _up(frozenset())


def syntactic_class(formula: Formula) -> TemporalClass:
    """The canonical lowest syntactic class (safety before guarantee, then up)."""
    held = syntactic_classes(formula)
    for candidate in (
        TemporalClass.SAFETY,
        TemporalClass.GUARANTEE,
        TemporalClass.OBLIGATION,
        TemporalClass.RECURRENCE,
        TemporalClass.PERSISTENCE,
        TemporalClass.REACTIVITY,
    ):
        if candidate in held:
            return candidate
    raise AssertionError("reactivity is always present")


@dataclass(frozen=True, slots=True)
class SyntacticVerdict:
    """Bundle of the two syntactic layers for one formula."""

    normal_form: TemporalClass | None
    fragment_classes: frozenset[TemporalClass]

    @property
    def fragment_class(self) -> TemporalClass:
        for candidate in (
            TemporalClass.SAFETY,
            TemporalClass.GUARANTEE,
            TemporalClass.OBLIGATION,
            TemporalClass.RECURRENCE,
            TemporalClass.PERSISTENCE,
            TemporalClass.REACTIVITY,
        ):
            if candidate in self.fragment_classes:
                return candidate
        raise AssertionError("reactivity is always present")


def analyze_syntax(formula: Formula) -> SyntacticVerdict:
    return SyntacticVerdict(
        normal_form=normal_form_class(formula),
        fragment_classes=syntactic_classes(formula),
    )
