"""Witness explanations: *why* a formula holds or fails on a word.

Built on the full evaluation table, :func:`explain` produces a recursive
explanation tree whose leaves point at concrete positions — the witness of
an ◇/U, the counterexample of a □, the failing operand of an ∧.  The tree
renders as an indented report, the natural companion of a model-checking
counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.ast import (
    Always,
    And,
    Eventually,
    FalseConst,
    Formula,
    Next,
    Not,
    Or,
    Release,
    TrueConst,
    Unless,
    Until,
)
from repro.logic.semantics import EvaluationTable, evaluation_table
from repro.words.lasso import LassoWord


@dataclass(frozen=True)
class Explanation:
    """One node of the explanation tree."""

    formula: Formula
    position: int
    holds: bool
    reason: str
    children: tuple["Explanation", ...] = field(default=())

    def render(self, indent: int = 0) -> str:
        mark = "✓" if self.holds else "✗"
        lines = [f"{'  ' * indent}{mark} @{self.position}  {self.formula!r} — {self.reason}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def explain(formula: Formula, lasso: LassoWord, position: int = 0, *, depth: int = 4) -> Explanation:
    """An explanation of ``(σ, position) ⊨ φ`` (or its failure)."""
    table = evaluation_table(formula, lasso)
    return _explain(table, formula, table.fold(position), depth)


def _scan_positions(table: EvaluationTable, start: int) -> list[int]:
    """The folded positions reachable from ``start`` (start, …, then cycle)."""
    positions = []
    current = start
    seen = set()
    while current not in seen:
        seen.add(current)
        positions.append(current)
        current = table.successor(current)
    return positions


def _explain(table: EvaluationTable, formula: Formula, position: int, depth: int) -> Explanation:
    value = table.value(formula, position)
    if depth == 0 or formula.is_past_formula():
        reason = "holds here" if value else "fails here"
        if formula.is_past_formula() and not formula.is_state_formula():
            reason += " (past-determined by the prefix)"
        return Explanation(formula, position, value, reason)

    def sub(node: Formula, at: int) -> Explanation:
        return _explain(table, node, at, depth - 1)

    if isinstance(formula, Not):
        child = sub(formula.operand, position)
        return Explanation(formula, position, value, "negation", (child,))
    if isinstance(formula, And):
        if value:
            return Explanation(formula, position, True, "all conjuncts hold",
                               tuple(sub(op, position) for op in formula.operands))
        failing = next(op for op in formula.operands if not table.value(op, position))
        return Explanation(formula, position, False, "a conjunct fails", (sub(failing, position),))
    if isinstance(formula, Or):
        if value:
            witness = next(op for op in formula.operands if table.value(op, position))
            return Explanation(formula, position, True, "a disjunct holds", (sub(witness, position),))
        return Explanation(formula, position, False, "every disjunct fails",
                           tuple(sub(op, position) for op in formula.operands))
    if isinstance(formula, Next):
        target = table.successor(position)
        return Explanation(formula, position, value, f"looks at position {target}",
                           (sub(formula.operand, target),))
    if isinstance(formula, (Eventually, Until)):
        operand = formula.operand if isinstance(formula, Eventually) else formula.right
        if value:
            witness = next(
                j for j in _scan_positions(table, position) if table.value(operand, j)
            )
            reason = f"witness at position {witness}"
            children = [sub(operand, witness)]
            if isinstance(formula, Until):
                reason += f" (left operand holds on the way)"
            return Explanation(formula, position, True, reason, tuple(children))
        if isinstance(formula, Until):
            # failure: either the left breaks before any right, or no right.
            for j in _scan_positions(table, position):
                if table.value(formula.right, j):
                    break
                if not table.value(formula.left, j):
                    return Explanation(formula, position, False,
                                       f"left operand breaks at {j} before any witness",
                                       (sub(formula.left, j),))
            return Explanation(formula, position, False, "no witness ever", ())
        return Explanation(formula, position, False, "no witness ever (incl. the loop)", ())
    if isinstance(formula, (Always, Unless, Release)):
        operand = formula.operand if isinstance(formula, Always) else formula.right
        if isinstance(formula, Always):
            if value:
                return Explanation(formula, position, True, "holds at every position onward", ())
            violation = next(
                j for j in _scan_positions(table, position) if not table.value(operand, j)
            )
            return Explanation(formula, position, False,
                               f"violated at position {violation}", (sub(operand, violation),))
        # weak forms: report the overall verdict with the governing operand.
        reason = "holds (weak obligation met)" if value else "fails"
        return Explanation(formula, position, value, reason, (sub(operand, position),))
    if isinstance(formula, (TrueConst, FalseConst)):
        return Explanation(formula, position, value, "constant", ())
    return Explanation(formula, position, value, "holds here" if value else "fails here", ())
