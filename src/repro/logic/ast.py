"""Abstract syntax of linear temporal logic with past (§4).

Future operators: ``X`` (next), ``U`` (until), ``W`` (unless / weak until),
``R`` (release), ``F`` (eventually), ``G`` (henceforth).
Past operators: ``Y`` (previous), ``Z`` (weak previous), ``S`` (since),
``O`` (once), ``H`` (historically).

Nodes are immutable and hashable; helper constructors build the derived
operators the paper lists (entailment, weak since, ``first``).
"""

from __future__ import annotations

from dataclasses import dataclass


class Formula:
    """Base class for all temporal formulae."""

    __slots__ = ()

    # Convenience operator overloading for building formulae in code.
    def __and__(self, other: Formula) -> Formula:
        return And((self, other))

    def __or__(self, other: Formula) -> Formula:
        return Or((self, other))

    def __invert__(self) -> Formula:
        return Not(self)

    def implies(self, other: Formula) -> Formula:
        return Or((Not(self), other))

    # ------------------------------------------------------------- structure

    def children(self) -> tuple[Formula, ...]:
        if isinstance(self, (Prop, TrueConst, FalseConst)):
            return ()
        if isinstance(self, (And, Or)):
            return self.operands
        if isinstance(self, (Not, Next, Eventually, Always, Previous, WeakPrevious, Once, Historically)):
            return (self.operand,)
        if isinstance(self, (Until, Unless, Release, Since)):
            return (self.left, self.right)
        raise TypeError(f"unknown formula node {type(self).__name__}")

    def subformulas(self) -> list[Formula]:
        """All distinct subformulas, children before parents."""
        seen: dict[Formula, None] = {}

        def walk(node: Formula) -> None:
            if node in seen:
                return
            for child in node.children():
                walk(child)
            seen[node] = None

        walk(self)
        return list(seen)

    def propositions(self) -> frozenset[str]:
        return frozenset(n.name for n in self.subformulas() if isinstance(n, Prop))

    # ------------------------------------------------------ fragment queries

    def is_state_formula(self) -> bool:
        """No temporal operators at all (an assertion)."""
        return all(
            isinstance(n, (Prop, TrueConst, FalseConst, Not, And, Or)) for n in self.subformulas()
        )

    def is_past_formula(self) -> bool:
        """No future operators (state formulae count as past formulae)."""
        return not any(
            isinstance(n, (Next, Until, Unless, Release, Eventually, Always))
            for n in self.subformulas()
        )

    def is_future_formula(self) -> bool:
        """No past operators."""
        return not any(
            isinstance(n, (Previous, WeakPrevious, Since, Once, Historically))
            for n in self.subformulas()
        )

    def has_future_inside_past(self) -> bool:
        """Does a past operator govern a future operator?  (Unsupported by
        the translators; the paper's normal forms never need it.)"""
        past_nodes = (Previous, WeakPrevious, Since, Once, Historically)
        for node in self.subformulas():
            if isinstance(node, past_nodes):
                if not node.is_past_formula():
                    return True
        return False


@dataclass(frozen=True, slots=True)
class Prop(Formula):
    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class TrueConst(Formula):
    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class FalseConst(Formula):
    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True, slots=True)
class Not(Formula):
    operand: Formula

    def __repr__(self) -> str:
        return f"!{_wrap(self.operand)}"


@dataclass(frozen=True, slots=True)
class And(Formula):
    operands: tuple[Formula, ...]

    def __repr__(self) -> str:
        return " & ".join(_wrap(op) for op in self.operands)


@dataclass(frozen=True, slots=True)
class Or(Formula):
    operands: tuple[Formula, ...]

    def __repr__(self) -> str:
        return " | ".join(_wrap(op) for op in self.operands)


# ------------------------------------------------------------------- future


@dataclass(frozen=True, slots=True)
class Next(Formula):
    operand: Formula

    def __repr__(self) -> str:
        return f"X {_wrap(self.operand)}"


@dataclass(frozen=True, slots=True)
class Until(Formula):
    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({_wrap(self.left)} U {_wrap(self.right)})"


@dataclass(frozen=True, slots=True)
class Unless(Formula):
    """Weak until: ``p W q = □p ∨ (p U q)`` (the paper's *unless*)."""

    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({_wrap(self.left)} W {_wrap(self.right)})"


@dataclass(frozen=True, slots=True)
class Release(Formula):
    """``p R q`` — the dual of until: q holds up to and including the first p."""

    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({_wrap(self.left)} R {_wrap(self.right)})"


@dataclass(frozen=True, slots=True)
class Eventually(Formula):
    operand: Formula

    def __repr__(self) -> str:
        return f"F {_wrap(self.operand)}"


@dataclass(frozen=True, slots=True)
class Always(Formula):
    operand: Formula

    def __repr__(self) -> str:
        return f"G {_wrap(self.operand)}"


# --------------------------------------------------------------------- past


@dataclass(frozen=True, slots=True)
class Previous(Formula):
    """``⊖p``: there is a previous position and p held there."""

    operand: Formula

    def __repr__(self) -> str:
        return f"Y {_wrap(self.operand)}"


@dataclass(frozen=True, slots=True)
class WeakPrevious(Formula):
    """``~⊖p``: if there is a previous position then p held there."""

    operand: Formula

    def __repr__(self) -> str:
        return f"Z {_wrap(self.operand)}"


@dataclass(frozen=True, slots=True)
class Since(Formula):
    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({_wrap(self.left)} S {_wrap(self.right)})"


@dataclass(frozen=True, slots=True)
class Once(Formula):
    operand: Formula

    def __repr__(self) -> str:
        return f"O {_wrap(self.operand)}"


@dataclass(frozen=True, slots=True)
class Historically(Formula):
    operand: Formula

    def __repr__(self) -> str:
        return f"H {_wrap(self.operand)}"


def _wrap(node: Formula) -> str:
    if isinstance(node, (Prop, TrueConst, FalseConst, Not, Next, Eventually, Always,
                         Previous, WeakPrevious, Once, Historically)):
        return repr(node)
    return f"({node!r})"


# -------------------------------------------------------- derived operators

TRUE = TrueConst()
FALSE = FalseConst()


def prop(name: str) -> Prop:
    return Prop(name)


def weak_since(left: Formula, right: Formula) -> Formula:
    """``p S̃ q = ■p ∨ (p S q)`` — the paper's weak since."""
    return Or((Historically(left), Since(left, right)))


def first() -> Formula:
    """``¬⊖true`` — holds exactly at the initial position."""
    return Not(Previous(TRUE))


def entails(left: Formula, right: Formula) -> Formula:
    """``p ⇒ q  ≡  □(p → q)`` — the paper's entailment."""
    return Always(left.implies(right))
