"""Negation normal form and basic simplification of LTL+Past formulae."""

from __future__ import annotations

from repro.logic.ast import (
    FALSE,
    TRUE,
    Always,
    And,
    Eventually,
    FalseConst,
    Formula,
    Historically,
    Next,
    Not,
    Once,
    Or,
    Previous,
    Prop,
    Release,
    Since,
    TrueConst,
    Unless,
    Until,
    WeakPrevious,
)


def negate(formula: Formula) -> Formula:
    """``¬formula`` pushed one level (used by :func:`nnf`)."""
    if isinstance(formula, TrueConst):
        return FALSE
    if isinstance(formula, FalseConst):
        return TRUE
    if isinstance(formula, Not):
        return formula.operand
    return Not(formula)


def nnf(formula: Formula) -> Formula:
    """Negation normal form: negations apply only to propositions.

    Dualities used (all standard; past duals via the *trigger* identity
    ``¬(p S q) = H¬q ∨ (¬q S (¬p ∧ ¬q))``):

    * ``¬Xp = X¬p`` (ω-words have a next position everywhere),
    * ``¬(pUq) = ¬q W (¬p ∧ ¬q)``, ``¬(pWq) = ¬q U (¬p ∧ ¬q)``,
    * ``¬(pRq) = ¬p U ¬q``, ``¬Fp = G¬p``, ``¬Gp = F¬p``,
    * ``¬Yp = Z¬p``, ``¬Zp = Y¬p``, ``¬Op = H¬p``, ``¬Hp = O¬p``.
    """
    return _nnf(formula, negated=False)


def _nnf(formula: Formula, *, negated: bool) -> Formula:
    if isinstance(formula, Not):
        return _nnf(formula.operand, negated=not negated)
    if isinstance(formula, TrueConst):
        return FALSE if negated else TRUE
    if isinstance(formula, FalseConst):
        return TRUE if negated else FALSE
    if isinstance(formula, Prop):
        return Not(formula) if negated else formula
    if isinstance(formula, And):
        parts = tuple(_nnf(op, negated=negated) for op in formula.operands)
        return Or(parts) if negated else And(parts)
    if isinstance(formula, Or):
        parts = tuple(_nnf(op, negated=negated) for op in formula.operands)
        return And(parts) if negated else Or(parts)
    if isinstance(formula, Next):
        return Next(_nnf(formula.operand, negated=negated))
    if isinstance(formula, Eventually):
        inner = _nnf(formula.operand, negated=negated)
        return Always(inner) if negated else Eventually(inner)
    if isinstance(formula, Always):
        inner = _nnf(formula.operand, negated=negated)
        return Eventually(inner) if negated else Always(inner)
    if isinstance(formula, Until):
        left = _nnf(formula.left, negated=negated)
        right = _nnf(formula.right, negated=negated)
        if negated:
            return Unless(right, And((left, right)))
        return Until(left, right)
    if isinstance(formula, Unless):
        left = _nnf(formula.left, negated=negated)
        right = _nnf(formula.right, negated=negated)
        if negated:
            return Until(right, And((left, right)))
        return Unless(left, right)
    if isinstance(formula, Release):
        left = _nnf(formula.left, negated=negated)
        right = _nnf(formula.right, negated=negated)
        if negated:
            return Until(left, right)
        return Release(left, right)
    if isinstance(formula, Previous):
        inner = _nnf(formula.operand, negated=negated)
        return WeakPrevious(inner) if negated else Previous(inner)
    if isinstance(formula, WeakPrevious):
        inner = _nnf(formula.operand, negated=negated)
        return Previous(inner) if negated else WeakPrevious(inner)
    if isinstance(formula, Once):
        inner = _nnf(formula.operand, negated=negated)
        return Historically(inner) if negated else Once(inner)
    if isinstance(formula, Historically):
        inner = _nnf(formula.operand, negated=negated)
        return Once(inner) if negated else Historically(inner)
    if isinstance(formula, Since):
        left = _nnf(formula.left, negated=negated)
        right = _nnf(formula.right, negated=negated)
        if negated:
            # trigger identity: ¬(p S q) = H ¬q ∨ (¬q S (¬p ∧ ¬q))
            return Or((Historically(right), Since(right, And((left, right)))))
        return Since(left, right)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def simplify(formula: Formula) -> Formula:
    """Cheap constant folding, flattening and deduplication (not semantic
    minimization — just enough to keep tableaux small and output readable)."""
    if isinstance(formula, (Prop, TrueConst, FalseConst)):
        return formula
    if isinstance(formula, Not):
        inner = simplify(formula.operand)
        if isinstance(inner, TrueConst):
            return FALSE
        if isinstance(inner, FalseConst):
            return TRUE
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(formula, (And, Or)):
        is_and = isinstance(formula, And)
        absorbing, neutral = (FalseConst, TrueConst) if is_and else (TrueConst, FalseConst)
        flattened: list[Formula] = []
        for operand in formula.operands:
            part = simplify(operand)
            if isinstance(part, absorbing):
                return FALSE if is_and else TRUE
            if isinstance(part, neutral):
                continue
            nested = part.operands if isinstance(part, type(formula)) else (part,)
            for piece in nested:
                if piece not in flattened:
                    flattened.append(piece)
        if not flattened:
            return TRUE if is_and else FALSE
        if len(flattened) == 1:
            return flattened[0]
        return And(tuple(flattened)) if is_and else Or(tuple(flattened))
    if isinstance(formula, (Next, Eventually, Always, Previous, WeakPrevious, Once, Historically)):
        inner = simplify(formula.operand)
        if isinstance(formula, (Eventually, Always)) and isinstance(inner, (TrueConst, FalseConst)):
            return inner
        if isinstance(formula, (Eventually, Always)) and type(formula) is type(inner):
            return inner  # FF = F, GG = G
        return type(formula)(inner)
    if isinstance(formula, (Until, Unless, Release, Since)):
        left, right = simplify(formula.left), simplify(formula.right)
        if isinstance(formula, Until):
            if isinstance(right, TrueConst):
                return TRUE
            if isinstance(right, FalseConst):
                return FALSE
            if isinstance(left, TrueConst):
                return simplify(Eventually(right))
        if isinstance(formula, Unless) and isinstance(left, TrueConst):
            return TRUE
        return type(formula)(left, right)
    raise TypeError(f"unknown formula node {type(formula).__name__}")
