"""The syntactic characterization of liveness (§4).

A *liveness formula* is ``◇(⋁ᵢ (pᵢ ∧ ◇qᵢ))`` where each ``pᵢ`` is a past
formula, each ``qᵢ`` is a *satisfiable* future formula, and ``□(⋁ᵢ pᵢ)`` is
valid.  The paper's theorem: a specifiable property is a liveness property
iff it is specifiable by a liveness formula.  The two semantic side
conditions are discharged by the library's own automata (satisfiability =
non-emptiness; validity of ``□p`` for past p = ``esat(p) = Σ⁺``).

The alternative characterization ``◇(⋀ᵢ (pᵢ → ◇qᵢ))`` with pairwise
disjoint ``pᵢ`` is recognized as well.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.finitary.language import FinitaryLanguage
from repro.logic.ast import And, Eventually, Formula, Not, Or
from repro.logic.semantics import esat_language
from repro.words.alphabet import Alphabet


@dataclass(frozen=True, slots=True)
class LivenessShape:
    """The decomposed pairs ``(pᵢ, qᵢ)`` of a liveness normal form."""

    pairs: tuple[tuple[Formula, Formula], ...]


def _split_pair(disjunct: Formula) -> tuple[Formula, Formula] | None:
    """Match ``p ∧ ◇q`` (in either operand order)."""
    if not isinstance(disjunct, And) or len(disjunct.operands) != 2:
        return None
    for first, second in (disjunct.operands, tuple(reversed(disjunct.operands))):
        if (
            first.is_past_formula()
            and isinstance(second, Eventually)
            and second.operand.is_future_formula()
        ):
            return first, second.operand
    return None


def liveness_shape(formula: Formula) -> LivenessShape | None:
    """The purely syntactic part: ``◇(⋁ᵢ (pᵢ ∧ ◇qᵢ))`` or ``None``."""
    if not isinstance(formula, Eventually):
        return None
    body = formula.operand
    disjuncts = body.operands if isinstance(body, Or) else (body,)
    pairs = []
    for disjunct in disjuncts:
        pair = _split_pair(disjunct)
        if pair is None:
            return None
        pairs.append(pair)
    return LivenessShape(tuple(pairs))


def is_liveness_formula(formula: Formula, alphabet: Alphabet | None = None) -> bool:
    """Shape plus the two semantic side conditions of §4."""
    shape = liveness_shape(formula)
    if shape is None:
        return False
    from repro.core.classifier import default_alphabet, formula_to_automaton

    alphabet = alphabet or default_alphabet(formula)
    # each qᵢ satisfiable
    for _past, future in shape.pairs:
        if formula_to_automaton(future, alphabet).is_empty():
            return False
    # □(⋁ pᵢ) valid ⟺ every non-empty finite word end-satisfies ⋁ pᵢ
    disjunction: Formula = (
        shape.pairs[0][0]
        if len(shape.pairs) == 1
        else Or(tuple(past for past, _future in shape.pairs))
    )
    return esat_language(disjunction, alphabet) == FinitaryLanguage.everything(alphabet)


def alternative_liveness_shape(formula: Formula) -> LivenessShape | None:
    """The alternative form ``◇(⋀ᵢ (pᵢ → ◇qᵢ))`` (pᵢ → ◇qᵢ ≡ ¬pᵢ ∨ ◇qᵢ)."""
    if not isinstance(formula, Eventually):
        return None
    body = formula.operand
    conjuncts = body.operands if isinstance(body, And) else (body,)
    pairs = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, Or) or len(conjunct.operands) != 2:
            return None
        matched = None
        for first, second in (conjunct.operands, tuple(reversed(conjunct.operands))):
            if (
                isinstance(first, Not)
                and first.operand.is_past_formula()
                and isinstance(second, Eventually)
                and second.operand.is_future_formula()
            ):
                matched = (first.operand, second.operand)
        if matched is None:
            return None
        pairs.append(matched)
    return LivenessShape(tuple(pairs))


def is_alternative_liveness_formula(
    formula: Formula, alphabet: Alphabet | None = None
) -> bool:
    """Shape plus §4's side conditions: each ``qᵢ`` satisfiable and the
    ``pᵢ`` pairwise disjoint (``□¬(pᵢ ∧ pⱼ)`` valid for i ≠ j)."""
    shape = alternative_liveness_shape(formula)
    if shape is None:
        return False
    from repro.core.classifier import default_alphabet, formula_to_automaton

    alphabet = alphabet or default_alphabet(formula)
    for _past, future in shape.pairs:
        if formula_to_automaton(future, alphabet).is_empty():
            return False
    for i, (past_i, _qi) in enumerate(shape.pairs):
        for past_j, _qj in shape.pairs[i + 1 :]:
            overlap = esat_language(And((past_i, past_j)), alphabet)
            if not overlap.is_empty():
                return False
    return True
