"""Parser for LTL+Past formulae.

Grammar (loosest binding first)::

    formula  := iff
    iff      := implies ('<->' implies)*
    implies  := or ('->' implies)?            # right associative
    or       := and ('|' and)*
    and      := binary ('&' binary)*
    binary   := unary (('U'|'W'|'R'|'S') binary)?   # right associative
    unary    := ('!'|'X'|'F'|'G'|'Y'|'Z'|'O'|'H')* atom
    atom     := 'true' | 'false' | identifier | '(' formula ')'

Identifiers are lowercase (``[a-z_][a-zA-Z0-9_]*``); the single capital
letters are operators: ``X`` next, ``F`` eventually, ``G`` always, ``U``
until, ``W`` unless, ``R`` release, ``Y`` previous, ``Z`` weak previous,
``S`` since, ``O`` once, ``H`` historically.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.logic.ast import (
    FALSE,
    TRUE,
    Always,
    And,
    Eventually,
    Formula,
    Historically,
    Next,
    Not,
    Once,
    Or,
    Previous,
    Prop,
    Release,
    Since,
    Unless,
    Until,
    WeakPrevious,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<arrow2><->)|(?P<arrow>->)|(?P<punct>[()&|!])"
    r"|(?P<op>[XFGUWRSYZOH])(?![a-zA-Z0-9_])"
    r"|(?P<ident>[a-z_][a-zA-Z0-9_]*))"
)

_UNARY = {
    "!": Not,
    "X": Next,
    "F": Eventually,
    "G": Always,
    "Y": Previous,
    "Z": WeakPrevious,
    "O": Once,
    "H": Historically,
}

_BINARY = {"U": Until, "W": Unless, "R": Release, "S": Since}


def _tokenize(text: str) -> list[tuple[str, int]]:
    """``(token, start)`` pairs; ``start`` is the token's character offset.

    Offsets travel with the tokens so every later parse error can point at
    a position in the *text* — token indices never leak into diagnostics.
    """
    tokens: list[tuple[str, int]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remaining = text[position:].lstrip()
            if not remaining:
                break
            offset = len(text) - len(remaining)
            raise ParseError(
                f"unexpected character {remaining[0]!r}", offset, source=text
            )
        tokens.append((match.group(match.lastgroup), match.start(match.lastgroup)))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str, spans: list[tuple[str, int]]) -> None:
        self.text = text
        self.tokens = [token for token, _ in spans]
        self.offsets = [offset for _, offset in spans]
        self.pos = 0

    def _error(self, message: str) -> ParseError:
        """A ParseError at the current token's character offset (or at
        end-of-input, one past the last character)."""
        if self.pos < len(self.offsets):
            offset = self.offsets[self.pos]
        else:
            offset = len(self.text)
        return ParseError(message, offset, source=self.text)

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        if self.peek() != token:
            found = "end of formula" if self.peek() is None else repr(self.peek())
            raise self._error(f"expected {token!r}, found {found}")
        self.take()

    def parse(self) -> Formula:
        node = self.iff()
        if self.pos != len(self.tokens):
            raise self._error(f"unexpected trailing {self.peek()!r}")
        return node

    def iff(self) -> Formula:
        node = self.implies()
        while self.peek() == "<->":
            self.take()
            other = self.implies()
            node = And((node.implies(other), other.implies(node)))
        return node

    def implies(self) -> Formula:
        node = self.disjunction()
        if self.peek() == "->":
            self.take()
            return node.implies(self.implies())
        return node

    def disjunction(self) -> Formula:
        parts = [self.conjunction()]
        while self.peek() == "|":
            self.take()
            parts.append(self.conjunction())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def conjunction(self) -> Formula:
        parts = [self.binary()]
        while self.peek() == "&":
            self.take()
            parts.append(self.binary())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def binary(self) -> Formula:
        node = self.unary()
        token = self.peek()
        if token in _BINARY:
            self.take()
            return _BINARY[token](node, self.binary())
        return node

    def unary(self) -> Formula:
        token = self.peek()
        if token in _UNARY:
            self.take()
            return _UNARY[token](self.unary())
        return self.atom()

    def atom(self) -> Formula:
        token = self.peek()
        if token is None:
            raise self._error("unexpected end of formula")
        if token == "(":
            self.take()
            node = self.iff()
            self.expect(")")
            return node
        if token == "true":
            self.take()
            return TRUE
        if token == "false":
            self.take()
            return FALSE
        if re.fullmatch(r"[a-z_][a-zA-Z0-9_]*", token):
            self.take()
            return Prop(token)
        raise self._error(f"unexpected token {token!r}")


def parse_formula(text: str) -> Formula:
    """Parse the LTL+Past syntax described in the module docstring.

    Parse errors raise :class:`~repro.errors.ParseError` with a character
    offset into ``text`` and a caret snippet.
    """
    return _Parser(text, _tokenize(text)).parse()
