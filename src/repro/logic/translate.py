"""LTL+Past → nondeterministic Büchi automata (the GPVW tableau).

Pipeline:

1. maximal pure-past subformulas become fresh *past atoms*, evaluated by the
   deterministic past tester (Prop 5.3's construction);
2. the remaining pure-future skeleton is normalized (NNF, ``F/G/W`` reduced
   to ``U/R``) and expanded by the classic Gerth–Peled–Vardi–Wolper node
   construction into a generalized Büchi automaton (one acceptance set per
   Until subformula);
3. the counter degeneralization and the synchronous composition with the
   past tester happen in one pass, yielding a plain :class:`NBA` over the
   concrete alphabet.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import UnsupportedFragmentError
from repro.logic.ast import (
    FALSE,
    TRUE,
    Always,
    And,
    Eventually,
    FalseConst,
    Formula,
    Next,
    Not,
    Or,
    Prop,
    Release,
    TrueConst,
    Unless,
    Until,
)
from repro.logic.rewrite import nnf, simplify
from repro.logic.semantics import PastTester, prop_holds
from repro.omega.buchi import NBA
from repro.words.alphabet import Alphabet, Symbol

_PAST_ATOM_PREFIX = "past_atom_"


def _extract_past_atoms(formula: Formula) -> tuple[Formula, dict[str, Formula]]:
    """Replace maximal pure-past, non-state subformulas by fresh atoms."""
    if formula.has_future_inside_past():
        raise UnsupportedFragmentError(
            "future operators nested inside past operators are not translatable"
        )
    table: dict[Formula, str] = {}

    def rewrite(node: Formula) -> Formula:
        if node.is_past_formula() and not node.is_state_formula():
            if node not in table:
                table[node] = f"{_PAST_ATOM_PREFIX}{len(table)}"
            return Prop(table[node])
        if isinstance(node, (Prop, TrueConst, FalseConst)):
            return node
        if isinstance(node, (And, Or)):
            return type(node)(tuple(rewrite(op) for op in node.operands))
        if isinstance(node, Not):
            return Not(rewrite(node.operand))
        if isinstance(node, (Next, Eventually, Always)):
            return type(node)(rewrite(node.operand))
        if isinstance(node, (Until, Unless, Release)):
            return type(node)(rewrite(node.left), rewrite(node.right))
        raise AssertionError(f"unexpected node {node!r}")

    skeleton = rewrite(formula)
    return skeleton, {name: past for past, name in table.items()}


def _to_core_operators(formula: Formula) -> Formula:
    """Rewrite F, G, W into U and R so the tableau handles four cases only."""
    if isinstance(formula, (Prop, TrueConst, FalseConst)):
        return formula
    if isinstance(formula, Not):
        return Not(_to_core_operators(formula.operand))
    if isinstance(formula, (And, Or)):
        return type(formula)(tuple(_to_core_operators(op) for op in formula.operands))
    if isinstance(formula, Next):
        return Next(_to_core_operators(formula.operand))
    if isinstance(formula, Eventually):
        return Until(TRUE, _to_core_operators(formula.operand))
    if isinstance(formula, Always):
        return Release(FALSE, _to_core_operators(formula.operand))
    if isinstance(formula, Unless):
        left = _to_core_operators(formula.left)
        right = _to_core_operators(formula.right)
        return Release(right, Or((left, right)))
    if isinstance(formula, (Until, Release)):
        return type(formula)(
            _to_core_operators(formula.left), _to_core_operators(formula.right)
        )
    raise AssertionError(f"unexpected node {formula!r}")


@dataclass
class _Node:
    name: int
    incoming: set[int] = field(default_factory=set)
    new: set[Formula] = field(default_factory=set)
    old: set[Formula] = field(default_factory=set)
    nxt: set[Formula] = field(default_factory=set)

_INIT = -1


class _Tableau:
    """The GPVW node-splitting construction."""

    def __init__(self, formula: Formula) -> None:
        self.counter = itertools.count()
        self.nodes: list[_Node] = []
        # (old, nxt) → the node that owns the pair; a completed node's old
        # and nxt sets never change afterwards, so the index stays valid.
        self._by_sets: dict[tuple[frozenset, frozenset], _Node] = {}
        seed = _Node(name=next(self.counter), incoming={_INIT}, new={formula})
        self.expand(seed)

    def fresh(self, incoming: set[int], new: set[Formula], old: set[Formula], nxt: set[Formula]) -> _Node:
        return _Node(next(self.counter), set(incoming), set(new), set(old), set(nxt))

    def expand(self, node: _Node) -> None:
        if not node.new:
            key = (frozenset(node.old), frozenset(node.nxt))
            existing = self._by_sets.get(key)
            if existing is not None:
                existing.incoming |= node.incoming
                return
            self._by_sets[key] = node
            self.nodes.append(node)
            successor = self.fresh({node.name}, node.nxt, set(), set())
            self.expand(successor)
            return
        eta = node.new.pop()
        if eta in node.old:
            self.expand(node)
            return
        if isinstance(eta, FalseConst):
            return  # contradiction: drop the node
        if isinstance(eta, (Prop, TrueConst)) or (
            isinstance(eta, Not) and isinstance(eta.operand, Prop)
        ):
            negation = eta.operand if isinstance(eta, Not) else Not(eta)
            if negation in node.old:
                return  # contradiction
            node.old.add(eta)
            self.expand(node)
            return
        if isinstance(eta, And):
            node.old.add(eta)
            node.new |= {op for op in eta.operands if op not in node.old}
            self.expand(node)
            return
        if isinstance(eta, Or):
            node.old.add(eta)
            for operand in eta.operands:
                branch = self.fresh(node.incoming, node.new | {operand}, node.old, node.nxt)
                self.expand(branch)
            return
        if isinstance(eta, Next):
            node.old.add(eta)
            node.nxt.add(eta.operand)
            self.expand(node)
            return
        if isinstance(eta, Until):
            node.old.add(eta)
            left_branch = self.fresh(
                node.incoming, node.new | {eta.left}, node.old, node.nxt | {eta}
            )
            right_branch = self.fresh(node.incoming, node.new | {eta.right}, node.old, node.nxt)
            self.expand(left_branch)
            self.expand(right_branch)
            return
        if isinstance(eta, Release):
            node.old.add(eta)
            hold_branch = self.fresh(
                node.incoming, node.new | {eta.right}, node.old, node.nxt | {eta}
            )
            fire_branch = self.fresh(
                node.incoming, node.new | {eta.left, eta.right}, node.old, node.nxt
            )
            self.expand(hold_branch)
            self.expand(fire_branch)
            return
        raise AssertionError(f"tableau met unexpected node {eta!r}")


def _literal_satisfied(literal: Formula, symbol: Symbol, past_values: dict[str, bool]) -> bool:
    if isinstance(literal, TrueConst):
        return True
    if isinstance(literal, Prop):
        if literal.name in past_values:
            return past_values[literal.name]
        return prop_holds(literal.name, symbol)
    if isinstance(literal, Not) and isinstance(literal.operand, Prop):
        return not _literal_satisfied(literal.operand, symbol, past_values)
    raise AssertionError(f"non-literal in old-set: {literal!r}")


def formula_to_nba(formula: Formula, alphabet: Alphabet) -> NBA:
    """Compile an LTL+Past formula to an NBA over ``alphabet``.

    The result's language is ``Sat(φ)`` restricted to the alphabet; past
    subformulas are handled by composing with the deterministic past tester.
    """
    import time

    from repro.engine.metrics import METRICS, trace
    from repro.obs.spans import span

    with span("gpvw.translate") as obs_span:
        result = _formula_to_nba(formula, alphabet, obs_span)
    return result


def _formula_to_nba(formula: Formula, alphabet: Alphabet, obs_span) -> NBA:
    import time

    from repro.engine.metrics import METRICS, trace

    start = time.perf_counter()
    skeleton, past_atoms = _extract_past_atoms(simplify(formula))
    core = _to_core_operators(nnf(skeleton))
    tableau = _Tableau(core)
    nodes = tableau.nodes
    node_index = {node.name: position for position, node in enumerate(nodes)}

    # Generalized acceptance: one set per Until subformula of the core.
    untils = [n for n in core.subformulas() if isinstance(n, Until)]
    acceptance_sets: list[frozenset[int]] = []
    for until in untils:
        acceptance_sets.append(
            frozenset(
                position
                for position, node in enumerate(nodes)
                if until not in node.old or until.right in node.old
            )
        )
    if not acceptance_sets:
        acceptance_sets = [frozenset(range(len(nodes)))]

    # The past tester shared by all past atoms: track the conjunction of
    # individual testers via a combined formula.
    monitor = And(tuple(past_atoms.values())) if past_atoms else TRUE
    tester = PastTester(monitor)

    literals_of = [
        [lit for lit in node.old if isinstance(lit, (Prop, TrueConst))
         or (isinstance(lit, Not) and isinstance(lit.operand, Prop))]
        for node in nodes
    ]
    entry_points = [
        position for position, node in enumerate(nodes) if _INIT in node.incoming
    ]
    successors_of: dict[int, list[int]] = {position: [] for position in range(len(nodes))}
    for position, node in enumerate(nodes):
        for source in node.incoming:
            if source != _INIT:
                successors_of[node_index[source]].append(position)

    # Concrete NBA states: (tableau node, tester memory, counter) plus a
    # pseudo-initial state.  Enumerated lazily breadth-first; the dense twin
    # (repro.fastpath.gpvw) produces a bit-identical enumeration stepping
    # once per symbol-valuation class instead of once per symbol.
    from repro.fastpath.config import kernel_selected

    if kernel_selected("gpvw", len(nodes) * len(alphabet)):
        from repro.fastpath.gpvw import enumerate_dense

        order, transitions, accepting = enumerate_dense(
            alphabet, entry_points, successors_of, literals_of,
            acceptance_sets, tester, past_atoms,
        )
    else:
        order, transitions, accepting = _enumerate_reference(
            alphabet, entry_points, successors_of, literals_of,
            acceptance_sets, tester, past_atoms,
        )
    initial = 0
    elapsed = time.perf_counter() - start
    METRICS.timer("gpvw.translate").observe(elapsed)
    obs_span.set_attribute("tableau_nodes", len(nodes))
    obs_span.set_attribute("nba_states", len(order))
    trace(
        "gpvw.translate",
        tableau_nodes=len(nodes),
        nba_states=len(order),
        past_atoms=len(past_atoms),
        seconds=elapsed,
    )
    return NBA(alphabet, len(order), transitions, [initial], accepting)


def _enumerate_reference(
    alphabet: Alphabet,
    entry_points: list[int],
    successors_of: dict[int, list[int]],
    literals_of: list[list[Formula]],
    acceptance_sets: list[frozenset[int]],
    tester: PastTester,
    past_atoms: dict[str, Formula],
) -> tuple[list[object], dict[tuple[int, Symbol], frozenset[int]], list[int]]:
    """Breadth-first enumeration of the concrete NBA states.

    Returns the state order (``"nba-init"`` first), the transition relation,
    and the accepting state indices.
    """
    from collections import deque

    k = len(acceptance_sets)
    state_index: dict[object, int] = {}
    order: list[object] = []
    transitions: dict[tuple[int, Symbol], set[int]] = {}

    def intern(state: object) -> int:
        if state not in state_index:
            state_index[state] = len(order)
            order.append(state)
        return state_index[state]

    intern("nba-init")
    queue: deque[object] = deque(["nba-init"])
    explored = {"nba-init"}
    while queue:
        state = queue.popleft()
        source = state_index[state]
        if state == "nba-init":
            memory, counter = PastTester.START, 0
            candidates = entry_points
            new_counter = 0
        else:
            node_position, memory, counter = state
            candidates = successors_of[node_position]
            # Source-based round-robin (Baier–Katoen): leaving a state whose
            # tableau node lies in the counter's acceptance set advances it.
            new_counter = (
                (counter + 1) % k if node_position in acceptance_sets[counter] else counter
            )
        for symbol in alphabet:
            new_memory, values = tester.advance(memory, symbol)
            past_values = {name: values[past] for name, past in past_atoms.items()}
            for target_position in candidates:
                if not all(
                    _literal_satisfied(lit, symbol, past_values)
                    for lit in literals_of[target_position]
                ):
                    continue
                target = (target_position, new_memory, new_counter)
                transitions.setdefault((source, symbol), set()).add(intern(target))
                if target not in explored:
                    explored.add(target)
                    queue.append(target)

    # Accepting: counter 0 at a node of the first acceptance set — visited
    # infinitely often iff the counter completes rounds infinitely often.
    accepting = [
        index
        for index, state in enumerate(order)
        if state != "nba-init" and state[2] == 0 and state[0] in acceptance_sets[0]
    ]
    return (
        order,
        {key: frozenset(value) for key, value in transitions.items()},
        accepting,
    )
