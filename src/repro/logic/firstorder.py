"""The first-order view of the four operators (§2, "Expression by a First
Order Language").

The paper characterizes ``O(Φ)`` for ``O ∈ {A, E, R, P}`` by first-order
formulas over the prefix order with one unary predicate::

    χ_A(σ):  ∀σ′ ≺ σ . Φ(σ′)
    χ_E(σ):  ∃σ′ ≺ σ . Φ(σ′)
    χ_R(σ):  ∀σ′ ≺ σ . ∃σ″ (σ′ ≺ σ″ ≺ σ) . Φ(σ″)
    χ_P(σ):  ∃σ′ ≺ σ . ∀σ″ (σ′ ≺ σ″ ≺ σ) . Φ(σ″)

On an ultimately-periodic word the predicate profile ``k ↦ [σ[0..k] ∈ Φ]``
is itself ultimately periodic (it is computed by Φ's DFA), so the
quantifiers are decided exactly from the profile's transient part and one
cycle.  :func:`satisfies_chi` evaluates the four formulas; the test suite
verifies the paper's equivalence ``σ ∈ O(Φ) ⟺ ⊨ χ_O^Φ(σ)`` against the
automaton constructions of :mod:`repro.omega.linguistic`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.finitary.language import FinitaryLanguage
from repro.words.lasso import LassoWord


@dataclass(frozen=True, slots=True)
class PrefixProfile:
    """The ultimately periodic membership sequence of σ's prefixes in Φ.

    ``transient[i]`` is the verdict for the prefix of length ``i+1`` for
    ``i < len(transient)``; afterwards the verdicts repeat ``cycle``.
    """

    transient: tuple[bool, ...]
    cycle: tuple[bool, ...]

    def value(self, index: int) -> bool:
        """Verdict for the prefix of length ``index + 1``."""
        if index < len(self.transient):
            return self.transient[index]
        return self.cycle[(index - len(self.transient)) % len(self.cycle)]

    def always(self) -> bool:
        return all(self.transient) and all(self.cycle)

    def eventually(self) -> bool:
        return any(self.transient) or any(self.cycle)

    def infinitely_often(self) -> bool:
        return any(self.cycle)

    def almost_always(self) -> bool:
        return all(self.cycle)


def prefix_profile(phi: FinitaryLanguage, lasso: LassoWord) -> PrefixProfile:
    """Run Φ's DFA over the lasso until the (loop offset, state) pair repeats."""
    dfa = phi.dfa
    state = dfa.initial
    flags: list[bool] = []
    seen: dict[tuple[int, int], int] = {}
    position = 0
    stem, loop = len(lasso.stem), len(lasso.loop)
    while True:
        if position >= stem:
            key = ((position - stem) % loop, state)
            if key in seen:
                start = seen[key]
                return PrefixProfile(tuple(flags[:start]), tuple(flags[start:]))
            seen[key] = position
        state = dfa.step(state, lasso[position])
        flags.append(state in dfa.accepting)
        position += 1


def satisfies_chi(operator: str, phi: FinitaryLanguage, lasso: LassoWord) -> bool:
    """Evaluate ``χ_O^Φ(σ)`` for ``O ∈ {'A','E','R','P'}``.

    The two-quantifier formulas reduce exactly on the profile:

    * ``χ_R``: every prefix has a later Φ-prefix ⟺ Φ-prefixes recur in the
      cycle (a transient witness can only serve finitely many σ′);
    * ``χ_P``: some prefix is followed only by Φ-prefixes ⟺ the whole cycle
      (hence everything beyond some point) lies in Φ.
    """
    profile = prefix_profile(phi, lasso)
    table = {
        "A": profile.always,
        "E": profile.eventually,
        "R": profile.infinitely_often,
        "P": profile.almost_always,
    }
    try:
        return table[operator.upper()]()
    except KeyError:
        raise ValueError(f"unknown operator {operator!r}; expected A, E, R or P") from None
