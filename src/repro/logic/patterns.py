"""Specification patterns, placed in the hierarchy.

The property-specification patterns of Dwyer, Avrunin & Corbett (absence,
existence, universality, precedence, response) under the common scopes
(globally, before r, after q, after q until r) — the practical vocabulary
that the paper's check-list methodology (§1) calls for.  Each pattern
builder returns an LTL+Past formula, and :func:`expected_class` records the
hierarchy class the pattern lands in, which the test suite verifies against
the semantic classifier.

The past operators keep several scoped patterns in *lower* classes than
their pure-future renderings — e.g. globally-scoped precedence is a safety
property when written with ◆ (`□(s → ◆p)`) — exactly the pay-off of the
paper's past-augmented logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.classes import TemporalClass
from repro.logic.ast import (
    Always,
    And,
    Eventually,
    Formula,
    Not,
    Once,
    Or,
    Since,
    Unless,
)


class Scope(Enum):
    GLOBALLY = "globally"
    BEFORE_R = "before r"
    AFTER_Q = "after q"
    AFTER_Q_UNTIL_R = "after q until r"


@dataclass(frozen=True)
class Pattern:
    """A named pattern instance: formula plus its expected class."""

    name: str
    scope: Scope
    formula: Formula
    expected: TemporalClass
    gloss: str


def absence(p: Formula, *, scope: Scope = Scope.GLOBALLY, q: Formula | None = None,
            r: Formula | None = None) -> Pattern:
    """``p`` never holds (within the scope)."""
    if scope is Scope.GLOBALLY:
        formula: Formula = Always(Not(p))
        expected = TemporalClass.SAFETY
        gloss = "p never occurs"
    elif scope is Scope.BEFORE_R:
        # no p strictly before the first r: □(p → ◆r) in past form keeps it
        # safety: at any p-position, r must already have happened.
        formula = Always(p.implies(Once(r)))
        expected = TemporalClass.SAFETY
        gloss = "no p before the first r"
    elif scope is Scope.AFTER_Q:
        formula = Always(Or((Not(Once(q)), Not(p))))
        expected = TemporalClass.SAFETY
        gloss = "no p after the first q"
    else:  # AFTER_Q_UNTIL_R
        # inside an open q…r window, no p: the window is open at a position
        # iff ¬r since q.
        window = Since(Not(r), And((q, Not(r))))
        formula = Always(window.implies(Not(p)))
        expected = TemporalClass.SAFETY
        gloss = "no p inside any q…r window"
    return Pattern("absence", scope, formula, expected, gloss)


def universality(p: Formula, *, scope: Scope = Scope.GLOBALLY, q: Formula | None = None,
                 r: Formula | None = None) -> Pattern:
    """``p`` holds everywhere (within the scope)."""
    inner = absence(Not(p), scope=scope, q=q, r=r)
    return Pattern("universality", scope, inner.formula, TemporalClass.SAFETY,
                   "p holds throughout the scope")


def existence(p: Formula, *, scope: Scope = Scope.GLOBALLY, q: Formula | None = None,
              r: Formula | None = None) -> Pattern:
    """``p`` holds somewhere (within the scope)."""
    if scope is Scope.GLOBALLY:
        return Pattern("existence", scope, Eventually(p), TemporalClass.GUARANTEE,
                       "p eventually occurs")
    if scope is Scope.BEFORE_R:
        # At the first r-position (r now, never before), ◆p must hold: a
        # past-bodied invariance — safety, vacuous when r never occurs.
        from repro.logic.ast import Previous

        first_r = And((r, Not(Previous(Once(r)))))
        formula = Always(first_r.implies(Once(p)))
        return Pattern("existence", scope, formula, TemporalClass.SAFETY,
                       "some p at or before the first r (vacuous if r never comes)")
    if scope is Scope.AFTER_Q:
        formula = Always(q.implies(Eventually(p)))
        return Pattern("existence", scope, formula, TemporalClass.RECURRENCE,
                       "after any q, some p follows")
    # AFTER_Q_UNTIL_R: every q-opened window sees a p before it closes —
    # response-like; rendered with until.
    formula = Always(q.implies(Or((Eventually(p), Always(Not(r))))))
    return Pattern("existence", scope, formula, TemporalClass.RECURRENCE,
                   "every q…(r) window contains a p unless it never closes")


def response(p: Formula, s: Formula, *, scope: Scope = Scope.GLOBALLY,
             q: Formula | None = None, r: Formula | None = None) -> Pattern:
    """Every stimulus ``p`` is followed by a response ``s``."""
    if scope is Scope.GLOBALLY:
        formula: Formula = Always(p.implies(Eventually(s)))
        gloss = "every p is eventually answered by s"
    elif scope is Scope.AFTER_Q:
        formula = Always(And((Once(q), p)).implies(Eventually(s)))
        gloss = "after the first q, every p is answered"
    elif scope is Scope.BEFORE_R:
        # Answered before the scope closes: while no r yet, s must arrive
        # before (or with) the first r — the weak until keeps this SAFETY
        # (the "chance is never lost" reading of §2's aUb discussion).
        formula = Always(p.implies(Unless(Not(r), s)))
        return Pattern("response", scope, formula, TemporalClass.SAFETY,
                       "every p answered before the scope closes")
    else:
        window = Since(Not(r), And((q, Not(r))))
        formula = Always(And((window, p)).implies(Or((Eventually(s), Always(Not(r))))))
        gloss = "every in-window p is answered unless the window never closes"
    return Pattern("response", scope, formula, TemporalClass.RECURRENCE, gloss)


def precedence(p: Formula, s: Formula, *, scope: Scope = Scope.GLOBALLY,
               q: Formula | None = None) -> Pattern:
    """``s`` may only occur after an enabling ``p`` (causality, §4's example)."""
    if scope is Scope.GLOBALLY:
        formula: Formula = Always(s.implies(Once(p)))
        gloss = "s never occurs without a prior p"
    else:  # AFTER_Q
        formula = Always(And((Once(q), s)).implies(Once(p)))
        gloss = "after q, s requires a prior p"
    return Pattern("precedence", scope, formula, TemporalClass.SAFETY, gloss)


def stabilization(p: Formula) -> Pattern:
    """``p`` eventually holds forever (§4's persistence usage)."""
    return Pattern("stabilization", Scope.GLOBALLY, Eventually(Always(p)),
                   TemporalClass.PERSISTENCE, "p eventually stabilizes")


def recurrence_pattern(p: Formula) -> Pattern:
    """``p`` holds infinitely often."""
    return Pattern("recurrence", Scope.GLOBALLY, Always(Eventually(p)),
                   TemporalClass.RECURRENCE, "p recurs forever")


def fair_response(p: Formula, s: Formula) -> Pattern:
    """Infinitely many stimuli get infinitely many responses (§4)."""
    return Pattern("fair response", Scope.GLOBALLY,
                   Always(Eventually(p)).implies(Always(Eventually(s))),
                   TemporalClass.REACTIVITY,
                   "infinitely many p's are answered by infinitely many s's")


def catalog(p: Formula, s: Formula, q: Formula, r: Formula) -> list[Pattern]:
    """One instance of every supported pattern/scope combination."""
    return [
        absence(p),
        absence(p, scope=Scope.BEFORE_R, r=r),
        absence(p, scope=Scope.AFTER_Q, q=q),
        absence(p, scope=Scope.AFTER_Q_UNTIL_R, q=q, r=r),
        universality(p),
        universality(p, scope=Scope.AFTER_Q, q=q),
        existence(p),
        existence(p, scope=Scope.BEFORE_R, r=r),
        existence(p, scope=Scope.AFTER_Q, q=q),
        existence(p, scope=Scope.AFTER_Q_UNTIL_R, q=q, r=r),
        response(p, s),
        response(p, s, scope=Scope.BEFORE_R, r=r),
        response(p, s, scope=Scope.AFTER_Q, q=q),
        response(p, s, scope=Scope.AFTER_Q_UNTIL_R, q=q, r=r),
        precedence(p, s),
        precedence(p, s, scope=Scope.AFTER_Q, q=q),
        stabilization(p),
        recurrence_pattern(p),
        fair_response(p, s),
    ]
