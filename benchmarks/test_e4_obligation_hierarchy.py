"""E4 — the strict Obl_k subhierarchy inside the obligation class (§2).

Two families are graded by the alternation analysis:

* the difference-hierarchy witnesses ("number of c's is odd and < 2k") climb
  the ladder exactly: degree(k-th member) = k;
* the paper's printed family ``[(Π+a*)d]^{k-1}·Π`` collapses to degree 1
  for every k — an erratum: closed sets are closed under finite unions, so
  its k safety slices merge into one (see EXPERIMENTS.md).
"""

from conftest import report

from repro.core.canonical import obligation_chain_family, paper_obligation_family
from repro.omega.classify import is_obligation, obligation_degree

LEVELS = [1, 2, 3, 4]


def grade_families():
    chain = {k: obligation_degree(obligation_chain_family(k)) for k in LEVELS}
    paper = {k: obligation_degree(paper_obligation_family(k)) for k in LEVELS[:3]}
    return chain, paper


def test_obligation_hierarchy(benchmark):
    chain, paper = benchmark(grade_families)
    rows = [f"{'k':>2s}  {'difference family':>18s}  {'paper family':>14s}"]
    for k in LEVELS:
        paper_cell = str(paper.get(k, "—"))
        rows.append(f"{k:2d}  degree {chain[k]:>11d}  degree {paper_cell:>7s}")
    report("E4: the Obl_k subhierarchy (§2)", rows)

    for k in LEVELS:
        assert chain[k] == k, f"difference family level {k}"
    for k in paper:
        assert paper[k] == 1, "paper family collapses (erratum)"


def test_families_are_obligation(benchmark):
    def verify():
        return [is_obligation(obligation_chain_family(k)) for k in LEVELS] + [
            is_obligation(paper_obligation_family(k)) for k in LEVELS[:3]
        ]

    assert all(benchmark(verify))


def test_degree_monotone_under_union(benchmark):
    # Obl_k ⊆ Obl_{k+1}: padding with a trivial conjunct cannot drop levels;
    # here we check the union of consecutive witnesses is still obligation
    # and at least as high as the larger component.
    def union_grade():
        lower = obligation_chain_family(1)
        higher = obligation_chain_family(2)
        joined = lower.union(higher)
        return is_obligation(joined), obligation_degree(joined)

    ok, degree = benchmark(union_grade)
    assert ok
    assert degree is not None and degree >= 1
