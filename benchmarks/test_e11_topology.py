"""E11 — the topological view (§3): Borel levels coincide with the classes,
G_δ approximants, convergence, density."""

from fractions import Fraction

from conftest import AB, report

from repro.core.canonical import figure_1_zoo
from repro.finitary import FinitaryLanguage
from repro.omega import r_of
from repro.topology import (
    borel_level,
    converges_to,
    distance,
    g_delta_approximants,
    is_dense,
    is_open,
)
from repro.words import LassoWord

EXPECTED_LEVELS = {
    "safety": "closed (F)",
    "guarantee": "open (G)",
    "obligation": "BC(F) — boolean combination of closed sets",
    "recurrence": "G_δ",
    "persistence": "F_σ",
    "reactivity": "BC(G_δ) — boolean combination of G_δ sets",
}


def levels_of_zoo():
    return {
        example.expected_class.value: borel_level(example.automaton)
        for example in figure_1_zoo()
    }


def test_borel_correspondence(benchmark):
    levels = benchmark(levels_of_zoo)
    rows = [f"{cls:12s} -> {level}" for cls, level in levels.items()]
    report("E11: class ↔ Borel level on the canonical zoo (§3)", rows)
    assert levels == EXPECTED_LEVELS


def test_g_delta_decomposition(benchmark):
    def approximate():
        automaton = r_of(FinitaryLanguage.from_regex(".*b", AB))
        return automaton, g_delta_approximants(automaton, 5)

    automaton, approximants = benchmark(approximate)
    rows = []
    for k, g_k in enumerate(approximants, start=1):
        rows.append(
            f"G_{k}: open {'✓' if is_open(g_k) else '✗'}, Π ⊆ G_{k} "
            f"{'✓' if automaton.is_subset_of(g_k) else '✗'}"
        )
    report("E11: (a*b)^ω = ⋂ₖ Gₖ (§3's G_δ witness)", rows)
    for g_k in approximants:
        assert is_open(g_k)
        assert automaton.is_subset_of(g_k)
    for tighter, looser in zip(approximants[1:], approximants):
        assert tighter.is_subset_of(looser)


def test_metric_and_convergence(benchmark):
    def converge():
        limit = LassoWord.from_letters("", "a")
        family = lambda k: LassoWord(("a",) * k, ("b",))
        gaps = [distance(family(k), limit) for k in range(1, 8)]
        return converges_to(family, limit), gaps

    converged, gaps = benchmark(converge)
    rows = [f"μ(a^{k}b^ω, a^ω) = {gap}" for k, gap in enumerate(gaps, start=1)]
    report("E11: the convergence example b^ω, ab^ω, aab^ω, … → a^ω", rows)
    assert converged
    assert gaps == [Fraction(1, 2**k) for k in range(1, 8)]


def test_density_is_liveness(benchmark):
    def survey():
        return {
            example.expected_class.value: is_dense(example.automaton)
            for example in figure_1_zoo()
        }

    density = benchmark(survey)
    assert density["safety"] is False
    for live_class in ("guarantee", "obligation", "recurrence", "persistence", "reactivity"):
        assert density[live_class] is True
