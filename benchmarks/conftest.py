"""Shared fixtures and helpers for the experiment benchmarks.

Every experiment Eⁿ regenerates one claim-group of the paper (see DESIGN.md
and EXPERIMENTS.md); the benchmark fixture times the computation and the
assertions pin the *shape* of the result to the paper's statement.
"""

import sys
from pathlib import Path

import random

import pytest

SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.finitary import FinitaryLanguage  # noqa: E402
from repro.finitary.dfa import random_dfa  # noqa: E402
from repro.words import Alphabet  # noqa: E402

AB = Alphabet.from_letters("ab")

REGEX_SAMPLES = ["a+b*", "(ab)+", ".*b", "a|b", "b+", "(a|b)+", "a.a*", ".*aa"]


@pytest.fixture(scope="session")
def sample_languages():
    return [FinitaryLanguage.from_regex(text, AB) for text in REGEX_SAMPLES]


@pytest.fixture(scope="session")
def random_languages():
    rng = random.Random(20260707)
    return [FinitaryLanguage(random_dfa(AB, rng.randrange(2, 5), rng)) for _ in range(8)]


def report(title: str, rows: list[str]) -> None:
    """Print a regenerated paper artifact (visible with ``pytest -s``)."""
    print(f"\n── {title} " + "─" * max(0, 60 - len(title)))
    for row in rows:
        print(f"   {row}")
