"""PERF — throughput of the core algorithmic pipeline.

Not a paper artifact: wall-clock baselines for the classification pipeline
(tester fast path vs GPVW+Safra), Streett emptiness, automaton equivalence,
and DFA minimization, so regressions are visible.
"""

import random

import pytest
from conftest import AB

pytestmark = pytest.mark.perf

from repro.core import classify_formula, formula_to_automaton
from repro.finitary import FinitaryLanguage
from repro.finitary.dfa import random_dfa
from repro.logic import parse_formula
from repro.logic.translate import formula_to_nba
from repro.omega import r_of
from repro.omega.emptiness import nonempty_states
from repro.omega.safra import determinize
from repro.words import Alphabet

PQ = Alphabet.powerset_of_propositions(["p", "q"])


def test_classify_normal_form_fast_path(benchmark):
    formula = parse_formula("G (p -> O q)")
    result = benchmark(classify_formula, formula, PQ)
    assert result.canonical_class.value == "safety"


def test_classify_general_pipeline(benchmark):
    formula = parse_formula("G (p -> F q)")
    result = benchmark(classify_formula, formula, PQ)
    assert result.canonical_class.value == "recurrence"


def test_gpvw_translation(benchmark):
    formula = parse_formula("(G F p -> G F q) & G (p -> X !p)")
    nba = benchmark(formula_to_nba, formula, PQ)
    assert nba.num_states > 0


def test_safra_determinization(benchmark):
    nba = formula_to_nba(parse_formula("G (p -> F q)"), PQ)
    dra = benchmark(determinize, nba)
    assert dra.num_states > 0


def test_streett_emptiness(benchmark):
    rng = random.Random(5)
    from repro.omega import Acceptance, DetAutomaton

    n = 40
    rows = [[rng.randrange(n) for _ in AB] for _ in range(n)]
    pairs = [
        ([s for s in range(n) if rng.random() < 0.3], [s for s in range(n) if rng.random() < 0.5])
        for _ in range(3)
    ]
    automaton = DetAutomaton(AB, rows, 0, Acceptance.streett(pairs))
    live = benchmark(nonempty_states, automaton)
    assert isinstance(live, frozenset)


def test_equivalence_check(benchmark):
    left = r_of(FinitaryLanguage.from_regex(".*b", AB))
    right = r_of(FinitaryLanguage.from_regex("(a|b)*b", AB))
    assert benchmark(left.equivalent_to, right)


def test_dfa_minimization(benchmark):
    rng = random.Random(11)
    dfa = random_dfa(AB, 60, rng)
    minimal = benchmark(dfa.minimized)
    assert minimal.equivalent_to(dfa)


def test_formula_to_automaton_reactivity_conjunction(benchmark):
    formula = parse_formula("(G F p | F G q) & (G F q | F G p)")
    automaton = benchmark(formula_to_automaton, formula, PQ)
    assert automaton.acceptance.kind.value == "streett"
    assert len(automaton.acceptance.pairs) == 2


def test_brzozowski_derivative_dfa(benchmark):
    from repro.finitary.derivatives import derivative_dfa
    from repro.finitary import parse_regex

    regex = parse_regex("(a*b)+a*((a|b)(a|b))*")
    dfa = benchmark(derivative_dfa, regex, AB)
    assert dfa.equivalent_to(regex.to_dfa(AB))


def test_quotient_reduction(benchmark):
    from repro.omega.reduce import quotient_reduce
    from repro.omega.safra import determinize

    nba = formula_to_nba(parse_formula("(G F a) -> (G F b)"), AB)
    dra = determinize(nba)
    reduced = benchmark(quotient_reduce, dra)
    assert reduced.num_states <= dra.num_states


def test_omega_regex_compilation(benchmark):
    from repro.omega.omega_regex import omega_language

    automaton = benchmark(omega_language, ".*b(ab)w | aw", AB)
    assert automaton.num_states > 0


def test_weak_minimization(benchmark):
    from repro.omega import a_of, e_of
    from repro.omega.weakmin import minimal_weak_automaton

    automaton = a_of(FinitaryLanguage.from_regex("a+b*", AB)).union(
        e_of(FinitaryLanguage.from_regex(".*b.*b.*b", AB))
    )
    minimal = benchmark(minimal_weak_automaton, automaton)
    assert minimal.equivalent_to(automaton)
