"""E1 — the §2 closure equalities of the four basic classes.

All eight laws, as automata equivalences over sampled finitary languages:

    A(Φ₁)∩A(Φ₂) = A(Φ₁∩Φ₂)          A(Φ₁)∪A(Φ₂) = A(A_f(Φ₁)∪A_f(Φ₂))
    E(Φ₁)∪E(Φ₂) = E(Φ₁∪Φ₂)          E(Φ₁)∩E(Φ₂) = E(E_f(Φ₁)∩E_f(Φ₂))
    R(Φ₁)∪R(Φ₂) = R(Φ₁∪Φ₂)          R(Φ₁)∩R(Φ₂) = R(minex(Φ₁,Φ₂))
    P(Φ₁)∩P(Φ₂) = P(Φ₁∩Φ₂)          P(Φ₁)∪P(Φ₂) = P(¬minex(¬Φ₁,¬Φ₂))

(the last law corrects the paper's display, which omits the inner
complements — see EXPERIMENTS.md).
"""

import itertools

from conftest import report

from repro.omega import a_of, e_of, p_of, r_of


def law_battery(languages):
    results = []
    for phi1, phi2 in itertools.combinations(languages, 2):
        checks = {
            "A∩": a_of(phi1).intersection(a_of(phi2)).equivalent_to(a_of(phi1 & phi2)),
            "A∪": a_of(phi1).union(a_of(phi2)).equivalent_to(a_of(phi1.af() | phi2.af())),
            "E∪": e_of(phi1).union(e_of(phi2)).equivalent_to(e_of(phi1 | phi2)),
            "E∩": e_of(phi1).intersection(e_of(phi2)).equivalent_to(e_of(phi1.ef() & phi2.ef())),
            "R∪": r_of(phi1).union(r_of(phi2)).equivalent_to(r_of(phi1 | phi2)),
            "R∩": r_of(phi1).intersection(r_of(phi2)).equivalent_to(r_of(phi1.minex(phi2))),
            "P∩": p_of(phi1).intersection(p_of(phi2)).equivalent_to(p_of(phi1 & phi2)),
            "P∪": p_of(phi1).union(p_of(phi2)).equivalent_to(
                p_of(phi1.complement().minex(phi2.complement()).complement())
            ),
        }
        results.append(checks)
    return results


def test_closure_laws_on_samples(benchmark, sample_languages):
    results = benchmark(law_battery, sample_languages[:5])
    laws = sorted(results[0])
    rows = [f"{'law':4s} pairs-verified"]
    for law in laws:
        verified = sum(1 for checks in results if checks[law])
        rows.append(f"{law:4s} {verified}/{len(results)}")
        assert verified == len(results), law
    report("E1: closure laws of the basic classes (§2)", rows)


def test_closure_laws_on_random_languages(benchmark, random_languages):
    results = benchmark(law_battery, random_languages[:4])
    for checks in results:
        for law, verified in checks.items():
            assert verified, law
