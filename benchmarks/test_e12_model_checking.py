"""E12 — the verification narrative of §1/§4 on real transition systems.

The underspecification table: which system satisfies which property under
which fairness — regenerating the paper's motivating discussion.
"""

from conftest import report

from repro.logic import parse_formula
from repro.systems import check, lint_specification, peterson, semaphore_mutex, trivial_mutex
from repro.systems.mutex import ACCESSIBILITY_1, ACCESSIBILITY_2, MUTUAL_EXCLUSION


def verify_all():
    systems = {
        "trivial": trivial_mutex(),
        "peterson": peterson(),
        "semaphore(strong)": semaphore_mutex(strong=True),
        "semaphore(weak)": semaphore_mutex(strong=False),
    }
    properties = {
        "mutual exclusion": MUTUAL_EXCLUSION,
        "accessibility 1": ACCESSIBILITY_1,
        "accessibility 2": ACCESSIBILITY_2,
    }
    table = {}
    for system_name, system in systems.items():
        for property_name, text in properties.items():
            table[(system_name, property_name)] = check(system, parse_formula(text)).holds
    return table


EXPECTED = {
    ("trivial", "mutual exclusion"): True,
    ("trivial", "accessibility 1"): False,
    ("trivial", "accessibility 2"): False,
    ("peterson", "mutual exclusion"): True,
    ("peterson", "accessibility 1"): True,
    ("peterson", "accessibility 2"): True,
    ("semaphore(strong)", "mutual exclusion"): True,
    ("semaphore(strong)", "accessibility 1"): True,
    ("semaphore(strong)", "accessibility 2"): True,
    ("semaphore(weak)", "mutual exclusion"): True,
    ("semaphore(weak)", "accessibility 1"): False,
    ("semaphore(weak)", "accessibility 2"): False,
}


def test_verification_table(benchmark):
    table = benchmark(verify_all)
    systems = sorted({key[0] for key in table})
    properties = sorted({key[1] for key in table})
    rows = [f"{'system':20s}" + "".join(f"{p:>18s}" for p in properties)]
    for system_name in systems:
        cells = "".join(
            f"{'holds' if table[(system_name, p)] else 'FAILS':>18s}" for p in properties
        )
        rows.append(f"{system_name:20s}{cells}")
    report("E12: the mutual-exclusion verification table (§1)", rows)
    assert table == EXPECTED


def test_specification_lint(benchmark):
    def lint_both():
        incomplete = lint_specification([MUTUAL_EXCLUSION])
        complete = lint_specification([MUTUAL_EXCLUSION, ACCESSIBILITY_1, ACCESSIBILITY_2])
        return incomplete, complete

    incomplete, complete = benchmark(lint_both)
    assert incomplete.warnings() and not complete.warnings()
    report(
        "E12: specification lint",
        [f"safety-only spec warnings: {len(incomplete.warnings())}",
         "completed spec warnings:   0"],
    )


def test_counterexample_is_replayable(benchmark):
    def starve():
        system = trivial_mutex()
        return system, check(system, parse_formula(ACCESSIBILITY_1))

    system, result = benchmark(starve)
    assert not result.holds
    from repro.logic import satisfies
    from repro.words import LassoWord

    word = LassoWord(
        tuple(system.label(s) for s in result.counterexample_stem),
        tuple(system.label(s) for s in result.counterexample_loop),
    )
    assert not satisfies(word, parse_formula(ACCESSIBILITY_1))
