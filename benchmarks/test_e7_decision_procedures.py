"""E7 — §5.1's decision procedures and Prop 5.1's normalizations.

On a corpus of random deterministic automata:

* the class checks respect the lattice and the complement dualities;
* every automaton whose property is κ normalizes into a κ-shaped automaton
  with the *same language* (Prop 5.1);
* the syntactic shape recognizers are sound certificates.
"""

import random

from conftest import AB, report

from repro.omega import Acceptance, DetAutomaton
from repro.omega.classify import (
    classify,
    is_guarantee,
    is_guarantee_shaped,
    is_persistence,
    is_persistence_shaped,
    is_recurrence,
    is_recurrence_shaped,
    is_safety,
    is_safety_shaped,
)
from repro.omega.transform import normalize, to_recurrence_automaton
from repro.core import TemporalClass


def corpus(count: int, seed: int = 42):
    rng = random.Random(seed)
    automata = []
    for _ in range(count):
        n = rng.randrange(1, 6)
        rows = [[rng.randrange(n) for _ in AB] for _ in range(n)]
        subset = lambda: [s for s in range(n) if rng.random() < 0.5]
        kind = rng.choice(["streett", "rabin", "buchi", "cobuchi"])
        if kind == "buchi":
            acc = Acceptance.buchi(subset())
        elif kind == "cobuchi":
            acc = Acceptance.cobuchi(subset())
        elif kind == "streett":
            acc = Acceptance.streett([(subset(), subset()) for _ in range(rng.randrange(1, 3))])
        else:
            acc = Acceptance.rabin([(subset(), subset()) for _ in range(rng.randrange(1, 3))])
        automata.append(DetAutomaton(AB, rows, 0, acc))
    return automata


def run_decision_procedures(automata):
    class_counts = {cls: 0 for cls in TemporalClass}
    duality_ok = normalization_ok = certificates_ok = 0
    for automaton in automata:
        verdict = classify(automaton)
        class_counts[verdict.canonical] += 1
        comp = automaton.complement()
        if (
            is_safety(automaton) == is_guarantee(comp)
            and is_recurrence(automaton) == is_persistence(comp)
        ):
            duality_ok += 1
        normal = normalize(automaton)
        if normal.equivalent_to(automaton):
            normalization_ok += 1
        sound = True
        if is_safety_shaped(normal) and not is_safety(normal):
            sound = False
        if is_guarantee_shaped(normal) and not is_guarantee(normal):
            sound = False
        if is_recurrence_shaped(normal) and not is_recurrence(normal):
            sound = False
        if is_persistence_shaped(normal) and not is_persistence(normal):
            sound = False
        certificates_ok += sound
    return class_counts, duality_ok, normalization_ok, certificates_ok


def test_decision_procedures_on_corpus(benchmark):
    automata = corpus(30)
    class_counts, duality_ok, normalization_ok, certificates_ok = benchmark(
        run_decision_procedures, automata
    )
    rows = [f"{cls.value:12s}: {count}" for cls, count in class_counts.items()]
    rows += [
        f"duality consistent:      {duality_ok}/{len(automata)}",
        f"normalization preserves: {normalization_ok}/{len(automata)}",
        f"shapes are certificates: {certificates_ok}/{len(automata)}",
    ]
    report("E7: §5.1 procedures on a random-automata corpus", rows)
    assert duality_ok == len(automata)
    assert normalization_ok == len(automata)
    assert certificates_ok == len(automata)


def test_persistent_cycle_absorption(benchmark):
    """The core step of Prop 5.1's recurrence construction on an automaton
    that genuinely needs it (its Streett pair hides a persistent cycle)."""

    def build_and_normalize():
        aut = DetAutomaton(AB, [[1, 0], [1, 0]], 0, Acceptance.streett([({1}, {0})]))
        assert is_recurrence(aut)
        normal = to_recurrence_automaton(aut)
        return aut, normal

    aut, normal = benchmark(build_and_normalize)
    assert is_recurrence_shaped(normal)
    assert normal.equivalent_to(aut)
