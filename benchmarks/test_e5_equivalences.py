"""E5 — the displayed temporal equivalences of §4, as language equalities.

Each pair is compiled to deterministic automata and compared exactly.
Two displays needed a corrected reading (noted inline and in
EXPERIMENTS.md): the conditional guarantee and the response formula.
"""

from conftest import report

from repro.core import formula_to_automaton
from repro.logic import parse_formula
from repro.words import Alphabet

PQ = Alphabet.powerset_of_propositions(["p", "q"])

EQUIVALENCES = [
    ("conditional safety", "p -> G q", "G ((O (p & !Y true)) -> q)"),
    ("conditional guarantee*", "p -> F q", "F ((O (!Y true & p)) -> q)"),
    ("response*", "G (p -> F q)", "G F (q | !(!q S (p & !q)))"),
    ("conditional persistence", "G (p -> F G q)", "F G ((O p) -> q)"),
    ("safety ∧", "G p & G q", "G (p & q)"),
    ("safety ∨", "G p | G q", "G (H p | H q)"),
    ("guarantee ∨", "F p | F q", "F (p | q)"),
    ("guarantee ∧", "F p & F q", "F (O p & O q)"),
    ("recurrence ∨", "G F p | G F q", "G F (p | q)"),
    ("recurrence ∧ (minex)", "G F p & G F q", "G F (q & Y (!q S p))"),
    ("persistence ∧", "F G p & F G q", "F G (p & q)"),
    ("persistence ∨", "F G p | F G q", "F G (q | Y (p S (p & !q)))"),
    ("□ into □◇", "G p", "G F (H p)"),
    ("◇ into □◇", "F p", "G F (O p)"),
    ("□ into ◇□", "G p", "F G (H p)"),
    ("◇ into ◇□", "F p", "F G (O p)"),
    ("¬◇ = □¬", "!(F p)", "G !p"),
    ("¬□ = ◇¬", "!(G p)", "F !p"),
    ("¬□◇ = ◇□¬", "!(G F p)", "F G !p"),
    ("¬◇□ = □◇¬", "!(F G p)", "G F !p"),
    ("obligation ∨", "(G p | F q) | (G q | F p)", "(G (H p | H q)) | (F (q | p))"),
]


def verify_equivalences():
    verdicts = []
    for name, left, right in EQUIVALENCES:
        la = formula_to_automaton(parse_formula(left), PQ)
        ra = formula_to_automaton(parse_formula(right), PQ)
        verdicts.append((name, la.equivalent_to(ra)))
    return verdicts


def test_section4_equivalences(benchmark):
    verdicts = benchmark(verify_equivalences)
    rows = [f"{name:24s} {'✓' if ok else '✗ MISMATCH'}" for name, ok in verdicts]
    report("E5: the §4 equivalence battery (* = corrected reading)", rows)
    for name, ok in verdicts:
        assert ok, name
