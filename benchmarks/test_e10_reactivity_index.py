"""E10 — the strict reactivity subhierarchy (§4) and Wagner's indices (§5.1).

* the parity staircase needs exactly n Streett pairs at level n;
* the Rabin-1 / Streett-2 separation (``◇□p ∧ □◇q``-style);
* every formula of the catalog fits inside reactivity, with the syntactic
  conjunct count bounding the semantic index (the CNF normal-form theorem's
  observable shadow).
"""

from conftest import report

from repro.core import classify_formula, formula_to_automaton
from repro.core.canonical import parity_staircase
from repro.logic import parse_formula
from repro.logic.classes import reactivity_form_degree
from repro.omega.classify import rabin_index, streett_index
from repro.words import Alphabet

PQ = Alphabet.powerset_of_propositions(["p", "q"])

REACTIVITY_FORMS = [
    "G F p | F G q",
    "(G F p | F G q) & (G F q | F G p)",
    "(G F p) & (G F q)",
    "G F p",
    "F G q",
]


def staircase_indices(levels):
    return {n: streett_index(parity_staircase(n)) for n in levels}


def test_staircase(benchmark):
    indices = benchmark(staircase_indices, [1, 2, 3])
    rows = [f"level {n}: streett index {idx}" for n, idx in indices.items()]
    report("E10: the parity staircase (strict reactivity hierarchy)", rows)
    for n, idx in indices.items():
        assert idx == n


def test_rabin_streett_separation(benchmark):
    def separation():
        letters = Alphabet.from_letters("123")
        from repro.omega import Acceptance, DetAutomaton

        rows = [[0, 1, 2]] * 3
        aut = DetAutomaton(letters, rows, 0, Acceptance.rabin([({1}, {2})]))
        return rabin_index(aut), streett_index(aut)

    rabin, streett = benchmark(separation)
    report(
        "E10: Rabin/Streett separation (max-even parity on 3 colors)",
        [f"rabin index {rabin} vs streett index {streett}"],
    )
    assert rabin == 1 and streett == 2


def test_syntactic_count_bounds_semantic_index(benchmark):
    def measure():
        results = []
        for text in REACTIVITY_FORMS:
            formula = parse_formula(text)
            automaton = formula_to_automaton(formula, PQ)
            results.append((text, reactivity_form_degree(formula), streett_index(automaton)))
        return results

    results = benchmark(measure)
    rows = [
        f"{text:38s} syntactic pairs {syntactic}, semantic index {semantic}"
        for text, syntactic, semantic in results
    ]
    report("E10: normal-form conjunct count vs Wagner index", rows)
    for text, syntactic, semantic in results:
        assert syntactic is not None
        assert semantic <= syntactic, text


def test_every_formula_is_reactivity(benchmark):
    # The normal-form theorem's semantic content: any formula's automaton
    # has a finite Streett index (trivially true for deterministic automata,
    # measured here for the catalog).
    def measure():
        return [
            classify_formula(parse_formula(text), PQ).streett_index
            for text in ["p U q", "G (p -> F q)", "!(p W q)", "F (p & X (p U q))"]
        ]

    indices = benchmark(measure)
    assert all(index <= 2 for index in indices)
