"""E8 — counter-freedom (Prop 5.4, [Zuc86], [MP71]).

The boundary of temporal expressibility: formula-derived (tester-based)
automata are counter-free; modular-counting automata are flagged with a
concrete (state, period) witness.
"""

from conftest import AB, report

from repro.core import formula_to_automaton
from repro.finitary import parse_regex
from repro.logic import parse_formula
from repro.omega import Acceptance, DetAutomaton
from repro.omega.counterfree import counting_witness, is_counter_free, transition_monoid

STAR_FREE = ["G p", "F p", "G F p", "F G p", "(G p) | (F q)", "(G F p) | (F G q)",
             "G (p -> O q)", "F (p & Y q)"]


def analyze():
    free = [(text, is_counter_free(formula_to_automaton(parse_formula(text)))) for text in STAR_FREE]
    mod2 = DetAutomaton(AB, [[1, 0], [0, 1]], 0, Acceptance.buchi([0]))
    even_dfa = parse_regex("((a|b)(a|b))*").to_dfa(AB)
    return free, counting_witness(mod2), counting_witness(even_dfa)


def test_counter_freedom(benchmark):
    free, mod2_witness, even_witness = benchmark(analyze)
    rows = [f"{text:22s} counter-free: {'yes' if ok else 'NO'}" for text, ok in free]
    rows.append(f"mod-2 'a' counter:      witness period {mod2_witness[1]}")
    rows.append(f"even-length language:   witness period {even_witness[1]}")
    report("E8: counter-freedom (Prop 5.4)", rows)
    assert all(ok for _t, ok in free)
    assert mod2_witness is not None and mod2_witness[1] == 2
    assert even_witness is not None and even_witness[1] == 2


def test_monoid_construction(benchmark):
    dfa = parse_regex("(a|b)*a(a|b)(a|b)", ).to_dfa(AB)
    monoid = benchmark(transition_monoid, dfa)
    assert len(monoid) >= len(AB)
