"""E2 — the duality structure of §2.

Operator duality (``¬A(Φ) = E(¬Φ)``, ``¬R(Φ) = P(¬Φ)``, finitary versions)
and class duality (Π safety ⟺ ¬Π guarantee; Π recurrence ⟺ ¬Π persistence).
"""

from conftest import report

from repro.finitary import af, ef
from repro.omega import a_of, e_of, p_of, r_of
from repro.omega.classify import is_guarantee, is_persistence, is_recurrence, is_safety


def duality_battery(languages):
    outcomes = []
    for phi in languages:
        comp = phi.complement()
        outcomes.append(
            {
                "¬A(Φ)=E(¬Φ)": a_of(phi).complement().equivalent_to(e_of(comp)),
                "¬E(Φ)=A(¬Φ)": e_of(phi).complement().equivalent_to(a_of(comp)),
                "¬R(Φ)=P(¬Φ)": r_of(phi).complement().equivalent_to(p_of(comp)),
                "¬P(Φ)=R(¬Φ)": p_of(phi).complement().equivalent_to(r_of(comp)),
                "¬A_f(Φ)=E_f(¬Φ)": af(phi).complement() == ef(comp),
                "¬E_f(Φ)=A_f(¬Φ)": ef(phi).complement() == af(comp),
                "safety↔guarantee": is_safety(a_of(phi)) == is_guarantee(a_of(phi).complement()),
                "recurrence↔persistence": is_recurrence(r_of(phi))
                == is_persistence(r_of(phi).complement()),
            }
        )
    return outcomes


def test_duality_laws(benchmark, sample_languages):
    outcomes = benchmark(duality_battery, sample_languages)
    laws = sorted(outcomes[0])
    rows = []
    for law in laws:
        verified = sum(1 for checks in outcomes if checks[law])
        rows.append(f"{law:24s} {verified}/{len(outcomes)}")
        assert verified == len(outcomes), law
    report("E2: operator and class duality (§2)", rows)


def test_duality_on_random_languages(benchmark, random_languages):
    outcomes = benchmark(duality_battery, random_languages)
    for checks in outcomes:
        assert all(checks.values()), checks
