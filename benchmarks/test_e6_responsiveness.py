"""E6 — the responsiveness summary of §4.

Five formalizations of "the system responds", landing in five different
classes — the paper's showcase for why the finer hierarchy matters.
"""

from conftest import report

from repro.core import TemporalClass, classify_formula
from repro.logic import parse_formula
from repro.words import Alphabet

PQ = Alphabet.powerset_of_propositions(["p", "q"])

CATALOG = [
    ("p -> F q", TemporalClass.GUARANTEE),
    ("F p -> F (q & O p)", TemporalClass.OBLIGATION),
    ("G (p -> F q)", TemporalClass.RECURRENCE),
    ("p -> F G q", TemporalClass.PERSISTENCE),
    ("G F p -> G F q", TemporalClass.REACTIVITY),
]


def classify_catalog():
    return [
        (text, classify_formula(parse_formula(text), PQ), expected)
        for text, expected in CATALOG
    ]


def test_responsiveness_catalog(benchmark):
    results = benchmark(classify_catalog)
    rows = [f"{'formula':22s} {'paper says':12s} {'measured':12s} idx"]
    for text, reprt, expected in results:
        rows.append(
            f"{text:22s} {expected.value:12s} {reprt.canonical_class.value:12s} "
            f"{reprt.streett_index}"
        )
    report("E6: the responsiveness spectrum (§4 summary)", rows)
    for text, reprt, expected in results:
        assert reprt.canonical_class is expected, text


def test_strong_fairness_is_simple_reactivity(benchmark):
    def classify_fairness():
        weak = classify_formula(parse_formula("G F (!p | q)"), PQ)
        strong = classify_formula(parse_formula("G F p -> G F q"), PQ)
        return weak, strong

    weak, strong = benchmark(classify_fairness)
    assert weak.canonical_class is TemporalClass.RECURRENCE
    assert strong.canonical_class is TemporalClass.REACTIVITY
    assert strong.streett_index == 1  # simple reactivity: one Streett pair
