"""FIG1 — regenerate Figure 1 (the inclusion diagram) empirically.

One canonical witness per class is classified by the §5.1 decision
procedures; the resulting membership matrix must reproduce exactly the
paper's inclusion lattice: each witness belongs to its own class and to
every class above it, and to no class below or beside it.
"""

from conftest import report

from repro.core import FIGURE_1_EDGES, TemporalClass
from repro.core.canonical import figure_1_zoo
from repro.omega.classify import classify


def run_figure_1():
    zoo = figure_1_zoo()
    verdicts = {example.expected_class: classify(example.automaton) for example in zoo}
    matrix = {
        owner: {cls: verdict.membership[cls] for cls in TemporalClass}
        for owner, verdict in verdicts.items()
    }
    return zoo, matrix


def test_figure_1(benchmark):
    zoo, matrix = benchmark(run_figure_1)

    rows = [f"{'witness class':12s} " + " ".join(f"{c.value[:6]:>6s}" for c in TemporalClass)]
    for owner in TemporalClass:
        cells = " ".join("  yes " if matrix[owner][c] else "   .  " for c in TemporalClass)
        rows.append(f"{owner.value:12s} {cells}")
    report("Figure 1: membership matrix of the canonical witnesses", rows)

    for owner, memberships in matrix.items():
        for cls in TemporalClass:
            expected = cls.includes(owner)
            assert memberships[cls] == expected, (owner, cls)

    # The derived covering edges coincide with the paper's diagram.
    derived = []
    for lower in TemporalClass:
        for upper in TemporalClass:
            if not upper.strictly_includes(lower):
                continue
            if any(
                upper.strictly_includes(mid) and mid.strictly_includes(lower)
                for mid in TemporalClass
            ):
                continue
            derived.append((lower, upper))
    assert sorted(derived, key=str) == sorted(FIGURE_1_EDGES, key=str)

    # Liveness is orthogonal: non-safety witnesses here are all live, the
    # safety witness is not (cf. §2's orthogonality discussion).
    for example in zoo:
        verdict = classify(example.automaton)
        assert verdict.is_liveness == example.expected_liveness
