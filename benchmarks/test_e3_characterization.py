"""E3 — the §2 characterization claims.

* Π is safety iff Π = A(Pref(Π))  (equality with the safety closure);
* the worked example: Pref((a*b)^ω) = (a+b)⁺, so A(Pref((a*b)^ω)) = (a+b)^ω
  ≠ (a*b)^ω — hence (a*b)^ω is not safety;
* the guarantee characterization Π = E(¬Pref(¬Π));
* (a*b)^ω is not a guarantee property either (E(∅) = ∅ in the worked
  calculation).
"""

from conftest import AB, report

from repro.finitary import FinitaryLanguage
from repro.omega import a_of, e_of, pref_language, r_of, safety_closure
from repro.omega.classify import is_guarantee, is_safety


def characterize(languages):
    closure_iff_safety = []
    guarantee_iff = []
    for phi in languages:
        for automaton in (a_of(phi), e_of(phi), r_of(phi)):
            closure_iff_safety.append(
                is_safety(automaton) == automaton.equivalent_to(safety_closure(automaton))
            )
            rebuilt_guarantee = e_of(
                pref_language(automaton.complement()).complement()
            )
            guarantee_iff.append(
                is_guarantee(automaton) == automaton.equivalent_to(rebuilt_guarantee)
            )
    return closure_iff_safety, guarantee_iff


def test_characterization_claims(benchmark, sample_languages):
    closure_iff, guarantee_iff = benchmark(characterize, sample_languages[:6])
    rows = [
        f"safety ⟺ Π = A(Pref(Π)):     {sum(closure_iff)}/{len(closure_iff)}",
        f"guarantee ⟺ Π = E(¬Pref(¬Π)): {sum(guarantee_iff)}/{len(guarantee_iff)}",
    ]
    report("E3: characterization of safety and guarantee (§2)", rows)
    assert all(closure_iff)
    assert all(guarantee_iff)


def test_worked_example_astar_b_omega(benchmark):
    def worked_example():
        automaton = r_of(FinitaryLanguage.from_regex(".*b", AB))
        pref = pref_language(automaton)
        closure = safety_closure(automaton)
        co_pref = pref_language(automaton.complement())
        guarantee_rebuild = e_of(co_pref.complement())
        return automaton, pref, closure, guarantee_rebuild

    automaton, pref, closure, guarantee_rebuild = benchmark(worked_example)
    # Pref((a*b)^ω) = (a+b)⁺.
    assert pref == FinitaryLanguage.everything(AB)
    # A(Pref(Π)) = (a+b)^ω ≠ (a*b)^ω.
    assert closure.is_universal()
    assert not automaton.equivalent_to(closure)
    assert not is_safety(automaton)
    # The guarantee calculation collapses to E(∅) = ∅ ≠ (a*b)^ω.
    assert guarantee_rebuild.is_empty()
    assert not is_guarantee(automaton)
    report(
        "E3: the (a*b)^ω worked example",
        [
            "Pref((a*b)^ω) = Σ⁺            ✓",
            "A(Pref(Π)) = Σ^ω ≠ Π ⇒ not safety   ✓",
            "E(¬Pref(¬Π)) = ∅ ≠ Π ⇒ not guarantee ✓",
        ],
    )
