"""E13 — the proof-principle claims of §1.

"To prove safety properties one uses computational induction … liveness
properties are proven using well-founded arguments."  The INV and RESP
rules certify the paper's flagship properties deductively, and the model
checker confirms the conclusions operationally.
"""

from conftest import report

from repro.logic import parse_formula
from repro.systems import check, peterson
from repro.systems.proofrules import invariance_rule, response_rule
from repro.systems.program import ProgramBuilder
from repro.systems.fts import Fairness


def peterson_invariant(state) -> bool:
    loc1, loc2, flag1, flag2, turn = state
    if (loc1 in ("t", "c")) != flag1 or (loc2 in ("t", "c")) != flag2:
        return False
    if loc1 == "c" and loc2 == "c":
        return False
    if loc1 == "c" and loc2 == "t" and turn != 0:
        return False
    if loc2 == "c" and loc1 == "t" and turn != 1:
        return False
    return True


PETERSON_UNIVERSE = [
    (loc1, loc2, flag1, flag2, turn)
    for loc1 in ("n", "w", "t", "c")
    for loc2 in ("n", "w", "t", "c")
    for flag1 in (False, True)
    for flag2 in (False, True)
    for turn in (0, 1)
]


def run_deductive_proofs():
    system = peterson()
    safety_proof = invariance_rule(
        system,
        peterson_invariant,
        goal=lambda s: not (s[0] == "c" and s[1] == "c"),
        name="¬(C₁ ∧ C₂)",
        universe=PETERSON_UNIVERSE,
    )
    safety_checked = check(system, parse_formula("G !(in_c1 & in_c2)")).holds

    terminator = (
        ProgramBuilder("countdown")
        .declare("x", 5)
        .rule(
            "step",
            guard=lambda env: env["x"] > 0,
            update=lambda env: {"x": env["x"] - 1},
            fairness=Fairness.WEAK,
        )
        .observe("zero", lambda env: env["x"] == 0)
        .build()
    )
    liveness_proof = response_rule(
        terminator,
        trigger=lambda s: True,
        goal=lambda s: s[0] == 0,
        ranking=lambda s: s[0],
        helpful=lambda s: "step",
        name="true → ◇zero",
    )
    liveness_checked = check(terminator, parse_formula("F zero")).holds
    return safety_proof, safety_checked, liveness_proof, liveness_checked


def test_proof_principles(benchmark):
    safety_proof, safety_checked, liveness_proof, liveness_checked = benchmark(
        run_deductive_proofs
    )
    rows = [
        f"INV  □¬(C₁∧C₂) on Peterson : {'certified' if safety_proof else 'failed'} "
        f"(model checker agrees: {safety_checked})",
        f"RESP true→◇zero on countdown: {'certified' if liveness_proof else 'failed'} "
        f"(model checker agrees: {liveness_checked})",
        "safety proof: implicit induction, no ranking needed",
        "liveness proof: explicit well-founded ranking δ(s) = x",
    ]
    report("E13: §1's proof principles (INV vs RESP)", rows)
    assert safety_proof.certified and safety_checked
    assert liveness_proof.certified and liveness_checked


def test_rules_are_sound_not_complete(benchmark):
    def attempt_weak_invariant():
        system = peterson()
        # Over the full state space the goal itself is not inductive: INV
        # refuses, even though the property holds — the completeness gap
        # that motivates invariant strengthening.
        return invariance_rule(
            system,
            lambda s: not (s[0] == "c" and s[1] == "c"),
            universe=PETERSON_UNIVERSE,
        )

    result = benchmark(attempt_weak_invariant)
    assert not result.certified
    report(
        "E13: soundness vs completeness",
        ["the raw goal ¬(C₁∧C₂) is not inductive on Peterson — strengthening required"],
    )
