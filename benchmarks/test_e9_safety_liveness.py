"""E9 — the safety–liveness classification and its orthogonality to the
Borel hierarchy (§2, [AS85]).

* decomposition: Π = cl(Π) ∩ L(Π) with cl(Π) safety and L(Π) liveness,
  on the canonical zoo and a random corpus;
* liveness = topological density;
* the aUb worked example;
* uniform liveness: the correct §4 witness vs the §2 erratum.
"""

from conftest import AB, report

from repro.core.canonical import (
    doubled_first_letter,
    figure_1_zoo,
    first_letter_stabilizes,
)
from repro.finitary import FinitaryLanguage
from repro.omega import (
    e_of,
    equals_intersection,
    is_liveness,
    is_safety_closed,
    is_uniform_liveness,
    safety_liveness_decomposition,
)


def decompose_zoo():
    outcomes = []
    for example in figure_1_zoo():
        pi_s, pi_l = safety_liveness_decomposition(example.automaton)
        outcomes.append(
            (
                example.name,
                is_safety_closed(pi_s),
                is_liveness(pi_l),
                equals_intersection(example.automaton, [pi_s, pi_l]),
            )
        )
    return outcomes


def test_decomposition_theorem(benchmark):
    outcomes = benchmark(decompose_zoo)
    rows = [
        f"{name:26s} Π_S safety: {'✓' if s else '✗'}  Π_L live: {'✓' if l else '✗'}  "
        f"Π = Π_S∩Π_L: {'✓' if eq else '✗'}"
        for name, s, l, eq in outcomes
    ]
    report("E9: Π = Π_S ∩ Π_L on the canonical zoo", rows)
    for name, s, l, eq in outcomes:
        assert s and l and eq, name


def test_aUb_worked_example(benchmark):
    def decompose():
        automaton = e_of(FinitaryLanguage.from_regex("a*b", AB))  # aUb
        pi_s, pi_l = safety_liveness_decomposition(automaton)
        return automaton, pi_s, pi_l

    automaton, pi_s, pi_l = benchmark(decompose)
    # The safety part is a W b (= a^ω ∪ a*bΣ^ω); the liveness part ⊇ ◇b.
    from repro.words import LassoWord

    assert pi_s.accepts(LassoWord.from_letters("", "a"))  # a^ω: chance not lost
    assert not automaton.accepts(LassoWord.from_letters("", "a"))
    assert is_liveness(pi_l)
    assert equals_intersection(automaton, [pi_s, pi_l])
    report(
        "E9: aUb = (a W b) ∩ ◇b",
        ["safety part admits a^ω (the 'chance not yet lost' reading)  ✓",
         "liveness part is dense  ✓", "intersection restores aUb  ✓"],
    )


def test_uniform_liveness(benchmark):
    def analyze():
        good = first_letter_stabilizes()
        erratum = doubled_first_letter()
        return (
            is_liveness(good),
            is_uniform_liveness(good),
            is_liveness(erratum),
            is_uniform_liveness(erratum),
        )

    good_live, good_uniform, erratum_live, erratum_uniform = benchmark(analyze)
    rows = [
        f"§4 stabilization property: live={good_live}, uniform={good_uniform} (paper: live, not uniform) ✓",
        f"§2 doubled-letter example: live={erratum_live}, uniform={erratum_uniform} "
        "(paper claims not uniform — erratum: σ' = aabb^ω works)",
    ]
    report("E9: uniform liveness", rows)
    assert good_live and not good_uniform
    assert erratum_live and erratum_uniform
